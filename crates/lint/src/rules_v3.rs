//! mp-lint v3: inter-procedural rule families on top of [`crate::callgraph`].
//!
//! * **R8 — worker-pool blocking discipline.** Nothing reachable from a
//!   pool worker entry point (`impl Service for ..` `handle`/`shed`)
//!   may spawn a thread, perform an unbounded read/accept, or fsync
//!   while holding a lock — outside the audited `mp_gsi::net`
//!   substrate, which owns the pool mechanism itself.
//! * **R9 — durability ordering.** On every mutating store path that
//!   writes a response the order must be WAL-append → fsync → ack: an
//!   ack with an unfsynced append behind it is a finding, as is a
//!   store mutation after the final ack, as is a `rename` on a
//!   persistence path with no directory fsync behind it.
//! * **R10 — atomic-ordering discipline.** The mp-obs/stats counters
//!   are documented as a `Relaxed`-only regime: any other ordering in
//!   scope is a finding, and so are mixed orderings on the same atomic
//!   (grouped by receiver identifier across files).
//! * **R11 — deadline coverage.** Every socket read/write reachable
//!   from a serve-loop entry point must be dominated by a deadline
//!   arm/re-arm. Pool workers enter *armed* (the accept loop arms the
//!   handshake deadline before dispatch); functions that spawn their
//!   own handler thread enter *unarmed* and must arm before I/O.
//!
//! Findings anchor at the first call hop inside the checked function
//! (so a `lint:allow` waiver sits at the call site) and carry the full
//! inter-procedural trace down to the primitive, R5-taint-path style.

use std::collections::{HashMap, HashSet};

use crate::callgraph::{CallGraph, Effect, EffectKind};
use crate::parser::ParsedFile;
use crate::rules::{Diagnostic, RuleSet, TaintStep};

/// One file handed to the v3 pass: workspace-relative path, its parse,
/// and which rules apply to it.
pub struct V3Input<'a> {
    pub rel: String,
    pub parsed: &'a ParsedFile,
    pub rules: RuleSet,
}

/// Run R8–R11 across the workspace. Waivers are applied by the caller
/// (`check_files`), mirroring the R7 cross-file pass. The call graph
/// is built once by the caller and shared with the v4 pass
/// (`rules_v4`); `None` means no graph-scoped file was present.
pub fn run_v3(inputs: &[V3Input<'_>], graph: Option<&CallGraph>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if let Some(graph) = graph {
        let rules_of: HashMap<&str, RuleSet> =
            inputs.iter().map(|f| (f.rel.as_str(), f.rules)).collect();
        diags.extend(r8_pool_blocking(graph, &rules_of));
        diags.extend(r9_durability(graph, &rules_of));
        diags.extend(r11_deadlines(graph, &rules_of));
    }

    diags.extend(r10_atomics(inputs));

    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    diags.dedup();
    diags
}

/// Pool worker entry points: `handle`/`shed` inside `impl Service`.
fn is_pool_root(g: &CallGraph, i: usize) -> bool {
    let f = &g.fns[i];
    f.impl_trait.as_deref() == Some("Service") && matches!(f.name.as_str(), "handle" | "shed")
}

/// Anchor line for an effect inside the checked function's file: the
/// first call hop if the effect was spliced in, else the effect site.
pub(crate) fn anchor_line(e: &Effect) -> u32 {
    e.trace.first().map(|s| s.line).unwrap_or(e.line)
}

/// Render an effect's call path plus a terminal step at the primitive.
pub(crate) fn path_of(e: &Effect, what: &str) -> Vec<TaintStep> {
    let mut steps = e.trace.clone();
    steps.push(TaintStep {
        line: e.line,
        note: format!("{what}: {} [{}:{}]", e.note, e.file, e.line),
    });
    steps
}

fn r8_pool_blocking(g: &CallGraph, rules_of: &HashMap<&str, RuleSet>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen: HashSet<(String, u32, EffectKind, String, u32)> = HashSet::new();
    for i in 0..g.fns.len() {
        let f = &g.fns[i];
        if !rules_of.get(f.file.as_str()).map(|r| r.r8).unwrap_or(false) {
            continue;
        }
        if !is_pool_root(g, i) || f.is_substrate() {
            continue;
        }
        for e in g.summary(i) {
            if !matches!(
                e.kind,
                EffectKind::Spawn | EffectKind::UnboundedRead | EffectKind::FsyncUnderLock
            ) {
                continue;
            }
            let line = anchor_line(e);
            if !seen.insert((f.file.clone(), line, e.kind, e.file.clone(), e.line)) {
                continue;
            }
            out.push(Diagnostic {
                file: f.file.clone(),
                line,
                rule: "R8",
                message: format!(
                    "pool worker `{}::{}` reaches a {} at {}:{} — blocking work must \
                     stay off pool worker threads (mp_gsi::net substrate excepted)",
                    f.impl_trait.as_deref().unwrap_or("?"),
                    f.name,
                    e.kind.label(),
                    e.file,
                    e.line
                ),
                path: path_of(e, "blocking operation"),
            });
        }
    }
    out
}

fn r9_durability(g: &CallGraph, rules_of: &HashMap<&str, RuleSet>) -> Vec<Diagnostic> {
    // Candidates keyed for global dedup (the same underlying violation
    // shows up in every caller whose summary contains both events);
    // the shortest path wins.
    let mut cands: HashMap<(u8, String, u32, String, u32), Diagnostic> = HashMap::new();
    let mut keep = |key: (u8, String, u32, String, u32), d: Diagnostic| {
        match cands.get(&key) {
            Some(old) if old.path.len() <= d.path.len() => {}
            _ => {
                cands.insert(key, d);
            }
        }
    };
    for i in 0..g.fns.len() {
        let f = &g.fns[i];
        if !rules_of.get(f.file.as_str()).map(|r| r.r9).unwrap_or(false) {
            continue;
        }
        if f.is_substrate() {
            continue;
        }
        let s = g.summary(i);

        // (a) a WAL append followed by an ack with no fsync between:
        // the response acknowledges state that is not yet durable.
        // Appends covered by a later fsync were already fused to
        // `DurableAppend` on the *uncompressed* stream (callgraph), so
        // a raw `WalAppend` here genuinely has no covering fsync
        // before the next ack — any later ack is the violation.
        for (ai, append) in s.iter().enumerate().filter(|(_, e)| e.kind == EffectKind::WalAppend) {
            let Some(ack) = s[ai + 1..].iter().find(|e| e.kind == EffectKind::Ack) else {
                continue;
            };
            let mut path = path_of(append, "WAL append");
            path.extend(path_of(ack, "acknowledged before fsync"));
            keep(
                (b'a', append.file.clone(), append.line, ack.file.clone(), ack.line),
                Diagnostic {
                    file: f.file.clone(),
                    line: anchor_line(ack),
                    rule: "R9",
                    message: format!(
                        "response acknowledged before the WAL append at {}:{} is fsynced \
                         — durability order must be append → fsync → ack",
                        append.file, append.line
                    ),
                    path,
                },
            );
        }

        // (b) a store mutation after the final ack: a crash between
        // them leaves the client holding an ack for unapplied state.
        if let Some(ki) = s.iter().rposition(|e| e.kind == EffectKind::Ack) {
            let ack = &s[ki];
            for m in s[ki + 1..].iter().filter(|e| e.kind == EffectKind::Mutate) {
                let mut path = path_of(ack, "final response ack");
                path.extend(path_of(m, "mutation after ack"));
                keep(
                    (b'b', m.file.clone(), m.line, ack.file.clone(), ack.line),
                    Diagnostic {
                        file: f.file.clone(),
                        line: anchor_line(m),
                        rule: "R9",
                        message: format!(
                            "store mutation at {}:{} happens after the response was \
                             acknowledged at {}:{} — mutate and make durable first, ack last",
                            m.file, m.line, ack.file, ack.line
                        ),
                        path,
                    },
                );
            }
        }

        // (c) a local rename on a persistence path with no directory
        // fsync behind it: the new directory entry may not survive a
        // crash. Checked where the rename is *local* so the one
        // responsible function is flagged, not every caller.
        for (ri, ren) in s
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == EffectKind::Rename && e.trace.is_empty())
        {
            if s[ri + 1..].iter().any(|e| e.kind == EffectKind::DirFsync) {
                continue;
            }
            keep(
                (b'c', ren.file.clone(), ren.line, String::new(), 0),
                Diagnostic {
                    file: f.file.clone(),
                    line: ren.line,
                    rule: "R9",
                    message: format!(
                        "`rename` in `{}` has no directory fsync after it — the new \
                         directory entry is not durable until the directory is synced",
                        f.name
                    ),
                    path: path_of(ren, "rename"),
                },
            );
        }
    }
    cands.into_values().collect()
}

/// Atomic-ordering variants (whitelist keeps `cmp::Ordering::Less`
/// and friends out of scope).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

fn r10_atomics(inputs: &[V3Input<'_>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // receiver ident -> [(variant, file, line)] across all files.
    let mut by_recv: HashMap<String, Vec<(String, String, u32)>> = HashMap::new();
    for f in inputs.iter().filter(|f| f.rules.r10) {
        let toks = &f.parsed.lexed.tokens;
        let mask = &f.parsed.test_mask;
        for i in 0..toks.len() {
            if mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            // `Ordering :: <Variant>`
            if !(toks[i].is_ident("Ordering")
                && toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                && toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false))
            {
                continue;
            }
            let Some(var) = toks.get(i + 3) else { continue };
            if !ATOMIC_ORDERINGS.contains(&var.text.as_str()) {
                continue;
            }
            let variant = var.text.clone();
            if variant != "Relaxed" {
                out.push(Diagnostic {
                    file: f.rel.clone(),
                    line: var.line,
                    rule: "R10",
                    message: format!(
                        "`Ordering::{variant}` on a stats atomic — the mp-obs counter \
                         regime is documented Relaxed-only (counters are monotonic and \
                         independently meaningful; stronger orderings buy nothing here)"
                    ),
                    path: Vec::new(),
                });
            }
            // Attribute the ordering to the atomic receiver: the ident
            // before the `.` before the nearest preceding atomic method.
            let lo = i.saturating_sub(40);
            let recv = (lo..i).rev().find_map(|j| {
                let t = &toks[j];
                if t.kind == crate::lexer::TokenKind::Ident
                    && ATOMIC_METHODS.contains(&t.text.as_str())
                    && j > 1
                    && toks[j - 1].is_punct('.')
                    && toks[j - 2].kind == crate::lexer::TokenKind::Ident
                {
                    Some(toks[j - 2].text.clone())
                } else {
                    None
                }
            });
            if let Some(r) = recv {
                by_recv.entry(r).or_default().push((variant, f.rel.clone(), var.line));
            }
        }
    }
    for (recv, mut uses) in by_recv {
        let distinct: HashSet<&str> = uses.iter().map(|(v, _, _)| v.as_str()).collect();
        if distinct.len() < 2 {
            continue;
        }
        uses.sort_by(|a, b| (a.1.as_str(), a.2).cmp(&(b.1.as_str(), b.2)));
        let listed = uses
            .iter()
            .map(|(v, fl, ln)| format!("{v} at {fl}:{ln}"))
            .collect::<Vec<_>>()
            .join(", ");
        // Anchor at the second site: the first use establishes the
        // regime, the second diverges (or proves the mix).
        let (_, file, line) = uses[1].clone();
        out.push(Diagnostic {
            file,
            line,
            rule: "R10",
            message: format!(
                "atomic `{recv}` is accessed with mixed memory orderings ({listed}) — \
                 pick one regime per atomic"
            ),
            path: Vec::new(),
        });
    }
    out
}

fn r11_deadlines(g: &CallGraph, rules_of: &HashMap<&str, RuleSet>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..g.fns.len() {
        let f = &g.fns[i];
        if !rules_of.get(f.file.as_str()).map(|r| r.r11).unwrap_or(false) {
            continue;
        }
        if f.is_substrate() {
            continue;
        }
        let pool_root = is_pool_root(g, i);
        let spawn_root = !pool_root && f.has_local_spawn();
        if !pool_root && !spawn_root {
            continue;
        }
        // Pool workers enter armed: the accept loop arms the handshake
        // deadline on every connection before dispatch (mp_gsi::net).
        // Self-spawned handler threads enter with nothing armed.
        let mut armed = pool_root;
        for e in g.summary(i) {
            match e.kind {
                EffectKind::DeadlineArm => armed = true,
                EffectKind::SocketRead
                | EffectKind::SocketWrite
                | EffectKind::UnboundedRead
                | EffectKind::Ack
                    if !armed =>
                {
                    out.push(Diagnostic {
                        file: f.file.clone(),
                        line: anchor_line(e),
                        rule: "R11",
                        message: format!(
                            "socket I/O ({} at {}:{}) reachable from `{}` before any \
                             deadline is armed — a stalled peer parks this thread forever; \
                             arm read/write deadlines first",
                            e.kind.label(),
                            e.file,
                            e.line,
                            f.name
                        ),
                        path: path_of(e, "undeadlined socket I/O"),
                    });
                    // One finding per serve root: the fix (arm on
                    // entry) covers everything downstream of it.
                    break;
                }
                _ => {}
            }
        }
    }
    out
}
