//! A deliberately minimal JSON-Schema validator — just the keywords
//! the SARIF-lite schema uses: `type`, `properties`, `required`,
//! `additionalProperties` (boolean form), `items`, `enum`, `minItems`.
//! Nothing here aims at spec completeness; it exists so the checked-in
//! schema is *executable* in CI rather than documentation-only.

use crate::json::Value;

/// Validate `doc` against `schema`. Returns every violation found,
/// each with a JSON-pointer-ish path; empty means valid.
pub fn validate(doc: &Value, schema: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    check(doc, schema, "$", &mut errors);
    errors
}

fn check(doc: &Value, schema: &Value, at: &str, errors: &mut Vec<String>) {
    if let Some(Value::Str(ty)) = schema.get("type") {
        let actual = doc.type_name();
        let ok = match ty.as_str() {
            // Integers satisfy "number"; "integer" requires no fraction.
            "number" => matches!(actual, "number" | "integer"),
            expected => actual == expected,
        };
        if !ok {
            errors.push(format!("{at}: expected type {ty}, got {actual}"));
            return; // structural keywords below would only cascade
        }
    }
    if let Some(Value::Arr(options)) = schema.get("enum") {
        if !options.contains(doc) {
            errors.push(format!("{at}: value not in enum"));
        }
    }
    if let Value::Obj(map) = doc {
        if let Some(Value::Arr(required)) = schema.get("required") {
            for r in required {
                if let Value::Str(key) = r {
                    if !map.contains_key(key) {
                        errors.push(format!("{at}: missing required property `{key}`"));
                    }
                }
            }
        }
        let props = schema.get("properties");
        for (key, val) in map {
            match props.and_then(|p| p.get(key)) {
                Some(sub) => check(val, sub, &format!("{at}.{key}"), errors),
                None => {
                    if schema.get("additionalProperties") == Some(&Value::Bool(false)) {
                        errors.push(format!("{at}: unexpected property `{key}`"));
                    }
                }
            }
        }
    }
    if let Value::Arr(items) = doc {
        if let Some(Value::Num(min)) = schema.get("minItems") {
            if (items.len() as f64) < *min {
                errors.push(format!("{at}: fewer than {min} items"));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                check(item, item_schema, &format!("{at}[{i}]"), errors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const SCHEMA: &str = r#"{
        "type": "object",
        "required": ["name", "items"],
        "additionalProperties": false,
        "properties": {
            "name": {"type": "string"},
            "kind": {"type": "string", "enum": ["a", "b"]},
            "items": {"type": "array", "items": {"type": "integer"}}
        }
    }"#;

    #[test]
    fn accepts_conforming_doc() {
        let doc = parse(r#"{"name": "x", "kind": "a", "items": [1, 2]}"#).expect("doc");
        let schema = parse(SCHEMA).expect("schema");
        assert!(validate(&doc, &schema).is_empty());
    }

    #[test]
    fn reports_each_violation() {
        let doc = parse(r#"{"kind": "z", "items": ["no"], "extra": 1}"#).expect("doc");
        let schema = parse(SCHEMA).expect("schema");
        let errs = validate(&doc, &schema);
        assert!(errs.iter().any(|e| e.contains("missing required property `name`")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("not in enum")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("expected type integer")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("unexpected property `extra`")), "{errs:?}");
    }

    #[test]
    fn wrong_toplevel_type() {
        let schema = parse(r#"{"type": "object"}"#).expect("schema");
        let errs = validate(&parse("[1]").expect("doc"), &schema);
        assert_eq!(errs.len(), 1);
    }
}
