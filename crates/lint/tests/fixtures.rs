//! Fixture conformance: each seeded violation under `tests/fixtures/`
//! must be reported with the correct rule at the correct `file:line`,
//! exempt regions must stay silent, and the `lint:allow` escape hatch
//! must behave exactly as documented.

use mp_lint::{check_source, Diagnostic, RuleSet};
use std::path::PathBuf;

const ALL: RuleSet = RuleSet { r1: true, r2: true, r3: true, r4: true };

fn run_fixture(name: &str) -> Vec<Diagnostic> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    check_source(name, &src, ALL)
}

/// (rule, line) pairs, sorted, for compact comparison.
fn findings(diags: &[Diagnostic]) -> Vec<(&str, u32)> {
    let mut v: Vec<(&str, u32)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    v.sort();
    v
}

#[test]
fn r1_fixture_flags_every_panic_class() {
    let diags = run_fixture("r1_panics.rs");
    assert_eq!(
        findings(&diags),
        vec![
            ("R1", 6),  // .unwrap()
            ("R1", 10), // .expect(
            ("R1", 15), // panic!
            ("R1", 16), // unreachable!
            ("R1", 17), // todo!
            ("R1", 18), // unimplemented!
            ("R1", 24), // assert!
            ("R1", 28), // indexing
        ],
        "diags: {diags:#?}"
    );
}

#[test]
fn r2_fixture_flags_flows_and_structs_only() {
    let diags = run_fixture("r2_secret_flow.rs");
    assert_eq!(
        findings(&diags),
        vec![("R2", 5), ("R2", 9), ("R2", 17), ("R2", 17)],
        "diags: {diags:#?}"
    );
}

#[test]
fn r3_fixture_flags_mac_compares_not_protocol_tags() {
    let diags = run_fixture("r3_noncesense.rs");
    assert_eq!(findings(&diags), vec![("R3", 5), ("R3", 9)], "diags: {diags:#?}");
}

#[test]
fn r4_fixture_flags_length_truncations_only() {
    let diags = run_fixture("r4_truncating_casts.rs");
    assert_eq!(
        findings(&diags),
        vec![("R4", 5), ("R4", 9), ("R4", 13)],
        "diags: {diags:#?}"
    );
}

#[test]
fn reasoned_allows_silence_everything() {
    let diags = run_fixture("allowed_clean.rs");
    assert!(diags.is_empty(), "expected clean, got: {diags:#?}");
}

#[test]
fn allow_without_reason_is_flagged_and_does_not_suppress() {
    let diags = run_fixture("allow_without_reason.rs");
    let f = findings(&diags);
    assert!(f.contains(&("allow", 5)), "missing allow finding: {diags:#?}");
    assert!(f.contains(&("R4", 5)), "original finding suppressed: {diags:#?}");
    assert_eq!(f.len(), 2, "unexpected extras: {diags:#?}");
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let diags = run_fixture("r4_truncating_casts.rs");
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("r4_truncating_casts.rs:5: [R4]"),
        "got: {rendered}"
    );
}
