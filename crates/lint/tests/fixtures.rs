//! Fixture conformance: each seeded violation under `tests/fixtures/`
//! must be reported with the correct rule at the correct `file:line`
//! (for R5, with the correct taint path), exempt regions must stay
//! silent, and the `lint:allow` escape hatch must behave exactly as
//! documented for every rule family.

use mp_lint::{check_files, check_source, Diagnostic, RuleSet};
use std::path::PathBuf;

const NONE: RuleSet = RuleSet {
    r1: false,
    r2: false,
    r3: false,
    r4: false,
    r5: false,
    r6: false,
    r7: false,
    r8: false,
    r9: false,
    r10: false,
    r11: false,
    r12: false,
    r13: false,
    r14: false,
    r15: false,
};
const V1: RuleSet = RuleSet { r1: true, r2: true, r3: true, r4: true, ..NONE };
const R5_ONLY: RuleSet = RuleSet { r5: true, ..NONE };
const R6_ONLY: RuleSet = RuleSet { r6: true, ..NONE };
const R7_ONLY: RuleSet = RuleSet { r7: true, ..NONE };
const R8_ONLY: RuleSet = RuleSet { r8: true, ..NONE };
const R9_ONLY: RuleSet = RuleSet { r9: true, ..NONE };
const R10_ONLY: RuleSet = RuleSet { r10: true, ..NONE };
const R11_ONLY: RuleSet = RuleSet { r11: true, ..NONE };
const R12_ONLY: RuleSet = RuleSet { r12: true, ..NONE };
const R13_ONLY: RuleSet = RuleSet { r13: true, ..NONE };
const R14_ONLY: RuleSet = RuleSet { r14: true, ..NONE };
const R15_ONLY: RuleSet = RuleSet { r15: true, ..NONE };

fn fixture_source(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn run_fixture_with(name: &str, rules: RuleSet) -> Vec<Diagnostic> {
    check_source(name, &fixture_source(name), rules)
}

fn run_fixture(name: &str) -> Vec<Diagnostic> {
    run_fixture_with(name, V1)
}

/// (rule, line) pairs, sorted, for compact comparison.
fn findings(diags: &[Diagnostic]) -> Vec<(&str, u32)> {
    let mut v: Vec<(&str, u32)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    v.sort();
    v
}

#[test]
fn r1_fixture_flags_every_panic_class() {
    let diags = run_fixture("r1_panics.rs");
    assert_eq!(
        findings(&diags),
        vec![
            ("R1", 6),  // .unwrap()
            ("R1", 10), // .expect(
            ("R1", 15), // panic!
            ("R1", 16), // unreachable!
            ("R1", 17), // todo!
            ("R1", 18), // unimplemented!
            ("R1", 24), // assert!
            ("R1", 28), // indexing
        ],
        "diags: {diags:#?}"
    );
}

#[test]
fn r2_fixture_flags_flows_and_structs_only() {
    let diags = run_fixture("r2_secret_flow.rs");
    assert_eq!(
        findings(&diags),
        vec![("R2", 5), ("R2", 9), ("R2", 17), ("R2", 17)],
        "diags: {diags:#?}"
    );
}

#[test]
fn r3_fixture_flags_mac_compares_not_protocol_tags() {
    let diags = run_fixture("r3_noncesense.rs");
    assert_eq!(findings(&diags), vec![("R3", 5), ("R3", 9)], "diags: {diags:#?}");
}

#[test]
fn r4_fixture_flags_length_truncations_only() {
    let diags = run_fixture("r4_truncating_casts.rs");
    assert_eq!(
        findings(&diags),
        vec![("R4", 5), ("R4", 9), ("R4", 13)],
        "diags: {diags:#?}"
    );
}

#[test]
fn r5_fixture_flags_macro_wire_return_and_debug_sinks() {
    let diags = run_fixture_with("r5_secret_taint.rs", R5_ONLY);
    assert_eq!(
        findings(&diags),
        vec![
            ("R5", 8),  // println! on a renamed exposed secret
            ("R5", 13), // write_all of a renamed pass phrase
            ("R5", 18), // non-Secret return of a derived key
            ("R5", 28), // Debug-deriving struct literal capturing an OTP
        ],
        "diags: {diags:#?}"
    );
}

#[test]
fn r5_fixture_reports_the_taint_path() {
    let diags = run_fixture_with("r5_secret_taint.rs", R5_ONLY);
    let d = diags.iter().find(|d| d.line == 8).expect("macro-sink finding");
    let path: Vec<(u32, &str)> = d.path.iter().map(|s| (s.line, s.note.as_str())).collect();
    assert_eq!(
        path,
        vec![
            (6, "secret exposed via `secret.expose()`"),
            (6, "tainted value bound to `shown`"),
            (7, "tainted value bound to `renamed`"),
            (8, "capture `{renamed}` in `println!`"),
        ],
        "path: {path:#?}"
    );
}

#[test]
fn r6_fixture_flags_discarded_results_only() {
    let diags = run_fixture_with("r6_discarded_fallible.rs", R6_ONLY);
    assert_eq!(
        findings(&diags),
        vec![
            ("R6", 6),  // let _ = chan.send(..)
            ("R6", 10), // chan.flush().ok()
            ("R6", 14), // let _ = std::fs::remove_dir_all(..)
        ],
        "diags: {diags:#?}"
    );
}

#[test]
fn r7_fixture_flags_held_guards_and_order_cycles() {
    // Through check_files so the cross-function lock-graph pass runs.
    let name = "r7_lock_discipline.rs".to_string();
    let src = fixture_source(&name);
    let diags = check_files(&[(name, src, R7_ONLY)]);
    let f = findings(&diags);
    assert!(f.contains(&("R7", 7)), "send under guard missing: {diags:#?}");
    assert!(f.contains(&("R7", 12)), "disk write under guard missing: {diags:#?}");
    let cycles: Vec<&Diagnostic> =
        diags.iter().filter(|d| d.message.contains("cycle")).collect();
    assert_eq!(cycles.len(), 1, "diags: {diags:#?}");
    assert!(
        cycles[0].message.contains("a -> b -> a") || cycles[0].message.contains("b -> a -> b"),
        "cycle message: {}",
        cycles[0].message
    );
    assert_eq!(f.len(), 3, "unexpected extras: {diags:#?}");
}

/// Run one fixture through the cross-file pass (the only place the
/// inter-procedural R8–R11 families execute).
fn run_v3_fixture(name: &str, rules: RuleSet) -> Vec<Diagnostic> {
    let src = fixture_source(name);
    check_files(&[(name.to_string(), src, rules)])
}

#[test]
fn r8_fixture_flags_blocking_reachable_from_pool_workers() {
    let diags = run_v3_fixture("r8_pool_blocking.rs", R8_ONLY);
    assert_eq!(
        findings(&diags),
        vec![
            ("R8", 16), // cross-function: handle -> drain_all -> read_to_end
            ("R8", 22), // local: spawn on a pool worker thread
            ("R8", 28), // cross-function: handle -> flush_under_lock (fsync under lock)
        ],
        "diags: {diags:#?}"
    );
}

#[test]
fn r8_fixture_carries_the_call_path() {
    let diags = run_v3_fixture("r8_pool_blocking.rs", R8_ONLY);
    let d = diags.iter().find(|d| d.line == 16).expect("drain_all finding");
    assert!(
        d.path.iter().any(|s| s.note.contains("drain_all")),
        "path misses the call hop: {:#?}",
        d.path
    );
    assert!(
        d.path.last().expect("terminal step").note.contains("read_to_end"),
        "path misses the primitive: {:#?}",
        d.path
    );
}

#[test]
fn r9_fixture_flags_ack_order_mutation_order_and_bare_rename() {
    let diags = run_v3_fixture("r9_durability.rs", R9_ONLY);
    assert_eq!(
        findings(&diags),
        vec![
            ("R9", 14), // ack before the fsync covering the WAL append
            ("R9", 26), // store mutation after the final ack
            ("R9", 36), // rename with no directory fsync behind it
        ],
        "diags: {diags:#?}"
    );
}

#[test]
fn r9_fixture_traces_the_append_across_functions() {
    let diags = run_v3_fixture("r9_durability.rs", R9_ONLY);
    let d = diags.iter().find(|d| d.line == 14).expect("ack-before-fsync finding");
    assert!(
        d.path.iter().any(|s| s.note.contains("journal_append")),
        "path misses the cross-function append hop: {:#?}",
        d.path
    );
    assert!(
        d.path.iter().any(|s| s.note.contains("acknowledged before fsync")),
        "path misses the ack step: {:#?}",
        d.path
    );
}

#[test]
fn r10_fixture_flags_strong_and_mixed_orderings() {
    let diags = run_v3_fixture("r10_atomics.rs", R10_ONLY);
    assert_eq!(
        findings(&diags),
        vec![
            ("R10", 6),  // SeqCst on a stats counter
            ("R10", 10), // Acquire on `mixed`
            ("R10", 14), // mixed regime on `mixed` (anchored at the second site)
        ],
        "diags: {diags:#?}"
    );
    let mixed = diags.iter().find(|d| d.line == 14).expect("mixed finding");
    assert!(mixed.message.contains("mixed"), "message: {}", mixed.message);
}

#[test]
fn r11_fixture_flags_unarmed_spawned_handlers_only() {
    let diags = run_v3_fixture("r11_deadlines.rs", R11_ONLY);
    assert_eq!(
        findings(&diags),
        vec![("R11", 14)], // serve_bad -> read_request before any arm
        "diags: {diags:#?}"
    );
    let d = &diags[0];
    assert!(
        d.path.iter().any(|s| s.note.contains("read_request")),
        "path misses the cross-function hop: {:#?}",
        d.path
    );
}

#[test]
fn r12_fixture_flags_unclamped_flows_only() {
    let diags = run_v3_fixture("r12_wire_bounds.rs", R12_ONLY);
    assert_eq!(
        findings(&diags),
        vec![
            ("R12", 16), // cross-function: read_len -> decode_bad -> alloc_payload
            ("R12", 21), // local: vec![0u8; len] straight from the decode
            ("R12", 27), // read_exact bounded by the raw decoded length
        ],
        "diags: {diags:#?}"
    );
}

#[test]
fn r12_fixture_carries_the_decode_to_allocation_path() {
    let diags = run_v3_fixture("r12_wire_bounds.rs", R12_ONLY);
    let d = diags.iter().find(|d| d.line == 16).expect("cross-function flow finding");
    assert!(
        d.path.first().expect("origin step").note.contains("wire"),
        "path misses the decode origin: {:#?}",
        d.path
    );
    assert!(
        d.path.iter().any(|s| s.note.contains("bound to `len`")),
        "path misses the binding hop: {:#?}",
        d.path
    );
    assert!(
        d.path.iter().any(|s| s.note.contains("alloc_payload")),
        "path misses the call hop: {:#?}",
        d.path
    );
    assert!(
        d.path.last().expect("sink step").note.contains("with_capacity"),
        "path misses the allocation sink: {:#?}",
        d.path
    );
}

#[test]
fn r13_fixture_flags_typestate_violations_only() {
    let diags = run_v3_fixture("r13_typestate.rs", R13_ONLY);
    assert_eq!(
        findings(&diags),
        vec![
            ("R13", 9),  // cross-function: payload via send_hello before connect
            ("R13", 20), // traffic after the BUSY/shed frame
            ("R13", 28), // store mutation before attach_durable
            ("R13", 38), // put_retrying reaches a store mutation
            ("R13", 46), // .put inside a retry-policy closure
        ],
        "diags: {diags:#?}"
    );
}

#[test]
fn r13_fixture_handshake_finding_is_cross_function() {
    let diags = run_v3_fixture("r13_typestate.rs", R13_ONLY);
    let d = diags.iter().find(|d| d.line == 9).expect("pre-handshake finding");
    assert!(
        d.path.iter().any(|s| s.note.contains("send_hello")),
        "path misses the call hop: {:#?}",
        d.path
    );
    assert!(
        d.path.last().expect("terminal step").note.contains("write_all"),
        "path misses the primitive: {:#?}",
        d.path
    );
}

#[test]
fn r14_fixture_flags_swallowed_and_missing_commands() {
    // Two files: the enum declaration and the dispatchers, so the
    // cross-file global-declaration fallback is what resolves variants.
    let decl = "r14_commands.rs".to_string();
    let disp = "r14_dispatch.rs".to_string();
    let diags = check_files(&[
        (decl.clone(), fixture_source(&decl), R14_ONLY),
        (disp.clone(), fixture_source(&disp), R14_ONLY),
    ]);
    assert_eq!(
        findings(&diags),
        vec![
            ("R14", 8),  // silent `_ => {}` with Info/Destroy unhandled
            ("R14", 13), // no catch-all, Destroy missing
        ],
        "diags: {diags:#?}"
    );
    assert!(diags.iter().all(|d| d.file == disp), "diags: {diags:#?}");
    let missing = diags.iter().find(|d| d.line == 13).expect("missing-variant finding");
    assert!(missing.message.contains("Destroy"), "message: {}", missing.message);
}

#[test]
fn r15_fixture_flags_leaks_only() {
    let diags = run_v3_fixture("r15_leaks.rs", R15_ONLY);
    assert_eq!(
        findings(&diags),
        vec![
            ("R15", 6),  // cross-function: tmp created via write_tmp, never renamed
            ("R15", 23), // registration with no drain anywhere in the crate
            ("R15", 29), // request I/O under the stale pre-handshake deadline
        ],
        "diags: {diags:#?}"
    );
    let d = diags.iter().find(|d| d.line == 6).expect("tmp-leak finding");
    assert!(
        d.path.iter().any(|s| s.note.contains("write_tmp")),
        "path misses the call hop: {:#?}",
        d.path
    );
}

#[test]
fn r15_drained_registrations_are_clean() {
    let src = "fn register_ok(set: &mut HandlerSet, conn: Conn) {\n    \
               set.spawn(\"conn\", conn);\n}\n\
               fn shutdown(set: &mut HandlerSet) {\n    set.drain();\n}\n";
    let diags = check_files(&[("crates/core/src/x.rs".to_string(), src.to_string(), R15_ONLY)]);
    assert!(diags.is_empty(), "drained crate should be clean: {diags:#?}");
}

#[test]
fn reasoned_allows_silence_everything() {
    let diags = run_fixture("allowed_clean.rs");
    assert!(diags.is_empty(), "expected clean, got: {diags:#?}");
}

#[test]
fn allow_without_reason_is_flagged_and_does_not_suppress() {
    let diags = run_fixture("allow_without_reason.rs");
    let f = findings(&diags);
    assert!(f.contains(&("allow", 5)), "missing allow finding: {diags:#?}");
    assert!(f.contains(&("R4", 5)), "original finding suppressed: {diags:#?}");
    assert_eq!(f.len(), 2, "unexpected extras: {diags:#?}");
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let diags = run_fixture("r4_truncating_casts.rs");
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("r4_truncating_casts.rs:5: [R4]"),
        "got: {rendered}"
    );
}
