//! R8 fixture: blocking primitives must not be reachable from pool
//! worker entry points (`impl Service` `handle`/`shed`).

fn drain_all(conn: &mut Conn) -> usize {
    let mut buf = Vec::new();
    conn.read_to_end(&mut buf)
}

fn flush_under_lock(store: &Store) {
    let g = store.inner.lock();
    g.file.sync_all();
}

impl Service for BadDrain {
    fn handle(&self, conn: &mut Conn) {
        let n = drain_all(conn);
    }
}

impl Service for BadSpawn {
    fn handle(&self, conn: &mut Conn) {
        spawn(move || ());
    }
}

impl Service for BadFsyncLock {
    fn handle(&self, store: &Store) {
        flush_under_lock(store);
    }
}

impl Service for GoodBounded {
    fn handle(&self, conn: &mut Conn) {
        let mut buf = [0u8; 16];
        conn.read_exact(&mut buf);
    }
}
