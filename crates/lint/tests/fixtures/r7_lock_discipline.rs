//! R7 fixture: guards held across channel or disk I/O must be flagged,
//! as must inconsistent acquisition order between two locks; statement-
//! scoped guards and I/O after `drop(guard)` must stay silent.

fn sends_under_guard(state: &Mutex<Vec<u8>>, chan: &mut Chan) {
    let guard = state.lock();
    chan.send(&guard)?;
}

fn writes_disk_under_guard(state: &Mutex<Vec<u8>>, file: &mut File) {
    let guard = state.lock();
    file.write_all(&guard)?;
}

fn statement_scoped_guard_is_clean(state: &Mutex<Vec<u8>>, chan: &mut Chan) {
    let snapshot = state.lock().clone();
    chan.send(&snapshot)?;
}

fn io_after_drop_is_clean(state: &Mutex<Vec<u8>>, chan: &mut Chan) {
    let guard = state.lock();
    let snapshot = guard.clone();
    drop(guard);
    chan.send(&snapshot)?;
}

fn locks_in_ab_order(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}

fn locks_in_ba_order(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock();
    let ga = a.lock();
    drop(ga);
    drop(gb);
}

fn waived_send_under_guard_is_clean(state: &Mutex<Vec<u8>>, chan: &mut Chan) {
    let guard = state.lock();
    chan.send(&guard)?; // lint:allow(R7) fixture: demonstration that reasoned waivers silence R7
}
