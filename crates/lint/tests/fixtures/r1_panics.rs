// Fixture: every R1 panic-freedom violation class. Never compiled by
// cargo (subdirectories of tests/ are not targets); consumed by
// tests/fixtures.rs which asserts the exact file:line of each finding.

fn takes_option(x: Option<u8>) -> u8 {
    x.unwrap() // line 6: .unwrap()
}

fn takes_result(x: Result<u8, ()>) -> u8 {
    x.expect("boom") // line 10: .expect(
}

fn explicit_panics(n: u8) -> u8 {
    match n {
        0 => panic!("zero"),       // line 15: panic!
        1 => unreachable!(),       // line 16: unreachable!
        2 => todo!(),              // line 17: todo!
        3 => unimplemented!(),     // line 18: unimplemented!
        _ => n,
    }
}

fn asserts(n: usize) {
    assert!(n < 10, "too big"); // line 24: assert!
}

fn indexes(buf: &[u8]) -> u8 {
    buf[0] // line 28: indexing
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these may be reported.
    #[test]
    fn fine_here() {
        let v: Vec<u8> = vec![1];
        assert_eq!(v[0], 1);
        Some(1u8).unwrap();
    }
}
