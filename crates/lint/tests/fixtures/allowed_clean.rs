// Fixture: every violation below carries a reasoned `lint:allow`, so
// this file must produce ZERO findings.

fn bounded_cast(v: &[u8]) -> u8 {
    // lint:allow(R4) callers guarantee v.len() <= 255 via MAX_FIELD
    v.len() as u8
}

fn guarded_index(xs: &[u8]) -> u8 {
    xs[0] // lint:allow(R1) caller checked is_empty on the previous line
}

fn local_invariant(x: Option<u8>) -> u8 {
    x.unwrap() // lint:allow(R1) Some by construction two lines up
}

fn public_tag_compare(tag_bytes: &[u8], expected: &[u8]) -> bool {
    // lint:allow(R3) DER tags are public protocol constants, not secrets
    tag_bytes == expected
}
