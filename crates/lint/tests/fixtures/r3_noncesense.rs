// Fixture: R3 constant-time discipline — digest/MAC/tag equality via
// `==`/`!=` leaks where the first differing byte is; ct_eq is required.

fn verifies_mac(expected_mac: &[u8], got: &[u8]) -> bool {
    expected_mac == got // line 5: MAC compared with ==
}

fn rejects_digest(digest: [u8; 32], other: [u8; 32]) -> bool {
    digest != other // line 9: digest compared with !=
}

// Comparing a tag byte against a protocol constant is public data —
// no finding on either of these.
fn der_tag_ok(tag: u8) -> bool {
    tag == 0x30
}

fn enum_tag_ok(tag: Tag) -> bool {
    tag == Tag::Sequence
}

enum Tag {
    Sequence,
}
