// Fixture: R2 secret-hygiene violations — secrets flowing into
// format-like macros, and secret-bearing structs without zeroization.

fn logs_a_secret(passphrase: &str) {
    println!("login with {passphrase}"); // line 5: passphrase into println!
}

fn formats_a_key(session_key: &[u8]) -> String {
    format!("{session_key:?}") // line 9: *_key into format!
}

// line 14/15: derives Debug over a secret field AND stores it raw
// (two findings on the field line).
#[derive(Debug)]
struct Login {
    user: String,
    passphrase: String, // line 17: Debug-derived + no Secret/Drop
}

// A scalar *about* a secret is not a secret: no finding here.
#[derive(Debug)]
struct Limits {
    max_passphrase_len: usize,
}

// Mentioning the word in a string literal is prose, not a leak.
fn prompt() {
    println!("enter your passphrase: ");
}
