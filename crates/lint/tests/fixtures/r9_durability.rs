//! R9 fixture: durability ordering — WAL append → fsync → ack; no
//! mutation after the final ack; rename needs a directory fsync.

fn journal_append(wal: &mut Wal, rec: &[u8]) {
    wal.log.append(rec, true);
}

fn journal_sync(wal: &mut Wal) {
    wal.file.sync_all();
}

fn handle_store_bad(wal: &mut Wal, chan: &mut Chan, rec: &[u8]) {
    journal_append(wal, rec);
    chan.send(b"OK");
    journal_sync(wal);
}

fn handle_store_good(wal: &mut Wal, chan: &mut Chan, rec: &[u8]) {
    journal_append(wal, rec);
    journal_sync(wal);
    chan.send(b"OK");
}

fn handle_update_bad(store: &mut Store, chan: &mut Chan, rec: &[u8]) {
    chan.send(b"DONE");
    store.put(rec);
}

fn handle_update_good(store: &mut Store, chan: &mut Chan, rec: &[u8]) {
    store.put(rec);
    journal_sync(store);
    chan.send(b"DONE");
}

fn persist_bad(vfs: &Vfs, tmp: &str, dst: &str) {
    vfs.rename(tmp, dst);
}

fn persist_good(vfs: &Vfs, tmp: &str, dst: &str) {
    vfs.rename(tmp, dst);
    vfs.sync_dir(dst);
}
