//! R10 fixture: stats atomics are a Relaxed-only regime; mixed
//! orderings on one atomic are flagged wherever they occur.

fn bump(stats: &Stats) {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    stats.errors.fetch_add(1, Ordering::SeqCst);
}

fn read_side(stats: &Stats) {
    let _ = stats.mixed.load(Ordering::Acquire);
}

fn write_side(stats: &Stats) {
    stats.mixed.store(0, Ordering::Relaxed);
}
