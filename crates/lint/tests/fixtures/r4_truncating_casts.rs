// Fixture: R4 wire-length safety — truncating casts on length
// arithmetic silently wrap and length-confuse the peer.

fn frame_len(payload: &[u8]) -> u32 {
    payload.len() as u32 // line 5: len cast to u32 without a bound
}

fn short_len(buf: &[u8]) -> u8 {
    buf.len() as u8 // line 9: len cast to u8
}

fn header_size(count: usize) -> u16 {
    count as u16 // line 13: count cast to u16
}

// Widening or non-length casts carry no risk: no findings below.
fn widen(b: u8) -> u32 {
    (b - 48) as u32
}

fn cast_up(n: u32) -> u64 {
    n as u64
}
