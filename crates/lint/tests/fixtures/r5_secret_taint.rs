//! R5 fixture: secret taint must follow renamed locals into macro,
//! wire, return, and Debug-literal sinks; sanitized or Secret-wrapped
//! flows must stay silent.

fn logs_exposed_secret(secret: &Secret<String>) {
    let shown = secret.expose();
    let renamed = shown;
    println!("secret is {renamed}");
}

fn writes_passphrase_to_wire(passphrase: &str, chan: &mut Chan) {
    let line = passphrase;
    chan.write_all(line.as_bytes()).unwrap_or_default();
}

fn returns_derived_key(passphrase: &str) -> String {
    let key = derive(passphrase);
    key
}

#[derive(Debug)]
struct Audit {
    who: String,
    token: String,
}

fn builds_debug_record(otp: &str) -> Audit {
    Audit { who: String::from("alice"), token: String::from(otp) }
}

fn hashed_secret_is_clean(secret: &Secret<String>) {
    let digest = sha256(secret.expose().as_bytes());
    println!("fingerprint {digest:?}");
}

fn rewrapped_secret_is_clean(passphrase: &str) -> Secret<String> {
    let wrapped = Secret::from(String::from(passphrase));
    wrapped
}

fn waived_log_is_clean(secret: &Secret<String>) {
    let shown = secret.expose();
    println!("secret is {shown}"); // lint:allow(R5) fixture: demonstration that reasoned waivers silence R5
}
