// Fixture: a lint:allow with no reason is itself a violation, and it
// does NOT suppress the finding it was attached to.

fn sloppy(v: &[u8]) -> u8 {
    v.len() as u8 // lint:allow(R4)
}
