//! R15 fixture: tmp staging files need a rename/removal behind them,
//! registered handlers need a drain, and the pre-handshake deadline
//! must be re-armed before request I/O.

fn stage_via_helper_bad(vfs: &Vfs, tmp_path: &str, data: &[u8]) {
    write_tmp(vfs, tmp_path, data);
}

fn write_tmp(vfs: &Vfs, tmp_path: &str, data: &[u8]) {
    vfs.write_file(tmp_path, data);
}

fn stage_via_helper_good(vfs: &Vfs, tmp2_path: &str, dst: &str, data: &[u8]) {
    write_tmp2(vfs, tmp2_path, data);
    vfs.rename(tmp2_path, dst);
}

fn write_tmp2(vfs: &Vfs, tmp2_path: &str, data: &[u8]) {
    vfs.write_file(tmp2_path, data);
}

fn register_bad(set: &mut HandlerSet, conn: Conn) {
    set.spawn("conn", conn);
}

fn serve_stale(chan: &mut Chan, dl: &Deadline, cfg: &Cfg) {
    dl.set_deadlines(chan);
    accept(chan, cfg);
    chan.write_all(b"RESP");
}

fn serve_rearmed(chan: &mut Chan, dl: &Deadline, cfg: &Cfg) {
    dl.set_deadlines(chan);
    accept(chan, cfg);
    dl.set_deadlines(chan);
    chan.write_all(b"RESP");
}
