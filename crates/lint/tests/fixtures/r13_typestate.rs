//! R13 fixture: channel handshake-before-payload, BUSY terminality,
//! WAL-attach-before-mutation, and idempotent-only retry wrapping.

fn send_hello(chan: &mut Chan, buf: &[u8]) {
    chan.write_all(buf);
}

fn open_bad(chan: &mut Chan, cfg: &Cfg, buf: &[u8]) {
    send_hello(chan, buf);
    connect(chan, cfg);
}

fn open_good(chan: &mut Chan, cfg: &Cfg, buf: &[u8]) {
    connect(chan, cfg);
    send_hello(chan, buf);
}

fn shed_bad(chan: &mut Chan, reason: &str, buf: &[u8]) {
    send_busy(chan, reason);
    chan.write_all(buf);
}

fn shed_good(chan: &mut Chan, reason: &str) {
    send_busy(chan, reason);
}

fn init_store_bad(store: &mut Store, rec: &[u8], wal: &Wal) {
    store.put(rec);
    store.attach_durable(wal);
}

fn init_store_good(store: &mut Store, rec: &[u8], wal: &Wal) {
    store.attach_durable(wal);
    store.put(rec);
}

fn put_retrying(store: &mut Store, rec: &[u8]) {
    store.put(rec);
}

fn info_retrying(chan: &mut Chan) -> Status {
    chan.read_status()
}

fn replay_bad(policy: &RetryPolicy, store: &mut Store, rec: &[u8]) {
    policy.run(|| store.put(rec));
}

fn replay_good(policy: &RetryPolicy, chan: &mut Chan) {
    policy.run(|| chan.info());
}
