//! R14 fixture (declaration half): the protocol command set lives in
//! one file; dispatchers elsewhere resolve it via the global fallback.

pub enum Command {
    Get,
    Put,
    Info,
    Destroy,
}
