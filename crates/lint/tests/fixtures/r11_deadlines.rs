//! R11 fixture: socket I/O reachable from a serve root must be
//! dominated by a deadline arm. Pool workers enter armed (the accept
//! loop arms the handshake deadline); self-spawned handlers do not.

fn read_request(conn: &mut Conn) -> Vec<u8> {
    let mut buf = [0u8; 64];
    conn.read_exact(&mut buf);
    buf.to_vec()
}

fn serve_bad(listener: &Listener) {
    spawn(move || {
        let mut conn = listener.accept_one();
        read_request(&mut conn);
    });
}

fn serve_good(listener: &Listener) {
    spawn(move || {
        let mut conn = listener.accept_one();
        conn.set_deadlines(t, t);
        read_request(&mut conn);
    });
}

impl Service for PoolEcho {
    fn handle(&self, conn: &mut Conn) {
        read_request(conn);
    }
}
