//! R6 fixture: discarding the `Result` of a fallible protocol, channel
//! or store operation must be flagged; handled results and discarded
//! infallible calls must stay silent.

fn discards_send_result(chan: &mut Chan) {
    let _ = chan.send(b"hello");
}

fn discards_flush_via_ok(chan: &mut Chan) {
    chan.flush().ok();
}

fn discards_store_teardown(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

fn propagates_properly(chan: &mut Chan) -> Result<(), Error> {
    chan.send(b"hello")?;
    Ok(())
}

fn matches_properly(chan: &mut Chan) {
    if chan.flush().is_err() {
        count_failure();
    }
}

fn discarded_infallible_is_fine() {
    let _ = widget_count();
}

fn waived_discard_is_clean(chan: &mut Chan) {
    let _ = chan.send(b"bye"); // lint:allow(R6) fixture: demonstration that reasoned waivers silence R6
}
