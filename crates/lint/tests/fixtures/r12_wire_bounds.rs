//! R12 fixture: wire-decoded lengths must pass a clamp before they
//! reach an allocation, including across call boundaries.

fn read_len(hdr: &[u8; 4]) -> usize {
    let n = u32::from_be_bytes(*hdr) as usize;
    n
}

fn alloc_payload(n: usize) -> Vec<u8> {
    let buf = Vec::with_capacity(n);
    buf
}

fn decode_bad(hdr: &[u8; 4]) -> Vec<u8> {
    let len = read_len(hdr);
    alloc_payload(len)
}

fn decode_local_bad(hdr: &[u8; 4]) -> Vec<u8> {
    let len = u32::from_be_bytes(*hdr) as usize;
    let buf = vec![0u8; len];
    buf
}

fn read_body_bad(r: &mut Reader, hdr: &[u8; 4], buf: &mut [u8]) {
    let len = u32::from_be_bytes(*hdr) as usize;
    r.read_exact(&mut buf[..len]);
}

fn decode_good(hdr: &[u8; 4]) -> Vec<u8> {
    let len = u32::from_be_bytes(*hdr) as usize;
    if len > MAX_FRAME {
        return Vec::new();
    }
    let buf = vec![0u8; len];
    buf
}

fn decode_clamped(hdr: &[u8; 4]) -> Vec<u8> {
    let len = read_len(hdr);
    let n = len.min(MAX_FRAME);
    alloc_payload(n)
}

fn check_len(n: usize) -> usize {
    if n as u64 > MAX_FRAME as u64 {
        return 0;
    }
    n
}

fn decode_validated(hdr: &[u8; 4]) -> Vec<u8> {
    let len = check_len(read_len(hdr));
    alloc_payload(len)
}
