//! R14 fixture (dispatch half): every `Command` match either handles
//! all variants or answers the rest with an explicit error arm.

fn dispatch_swallows(cmd: Command, chan: &mut Chan) {
    match cmd {
        Command::Get => chan.send(b"GET"),
        Command::Put => chan.send(b"PUT"),
        _ => {}
    }
}

fn dispatch_missing(cmd: Command, chan: &mut Chan) {
    match cmd {
        Command::Get => chan.send(b"GET"),
        Command::Put => chan.send(b"PUT"),
        Command::Info => chan.send(b"INFO"),
    }
}

fn dispatch_good(cmd: Command, chan: &mut Chan) {
    match cmd {
        Command::Get => chan.send(b"GET"),
        Command::Put => chan.send(b"PUT"),
        Command::Info => chan.send(b"INFO"),
        other => respond_error(chan, other),
    }
}

fn dispatch_exhaustive(cmd: Command, chan: &mut Chan) {
    match cmd {
        Command::Get => chan.send(b"GET"),
        Command::Put => chan.send(b"PUT"),
        Command::Info => chan.send(b"INFO"),
        Command::Destroy => chan.send(b"DESTROY"),
    }
}

fn from_wire(code: u32) -> Option<Command> {
    match code {
        1 => Some(Command::Get),
        2 => Some(Command::Put),
        _ => None,
    }
}
