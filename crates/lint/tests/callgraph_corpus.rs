//! Call-graph engine against the real workspace corpus: the fixpoint
//! must converge quickly, known durability functions must carry the
//! expected effect summaries, and the whole gate must stay fast enough
//! for CI (the workflow adds a wall-clock guard on top; this test
//! catches a blow-up before it reaches CI).

use mp_lint::callgraph::{CallGraph, EffectKind};
use mp_lint::parser::{parse_source, ParsedFile};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Parse every workspace file the v3 graph would see (anything where
/// R8, R9, or R11 applies).
fn corpus() -> Vec<(String, ParsedFile)> {
    let root = mp_lint::workspace_root();
    let mut paths = Vec::new();
    collect_rs(&root.join("crates"), &mut paths);
    let mut out = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(&root)
            .expect("under root")
            .to_string_lossy()
            .replace('\\', "/");
        let rules = mp_lint::rules_for_path(&rel);
        if !(rules.r8 || rules.r9 || rules.r11) {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable source");
        out.push((rel, parse_source(&src).expect("workspace source parses")));
    }
    out
}

#[test]
fn workspace_graph_converges_fast() {
    let parsed = corpus();
    assert!(parsed.len() >= 10, "corpus unexpectedly small: {} files", parsed.len());
    let files: Vec<(String, &ParsedFile)> =
        parsed.iter().map(|(rel, p)| (rel.clone(), p)).collect();
    let graph = CallGraph::build(&files);
    assert!(graph.converged, "fixpoint did not converge in {} passes", graph.passes);
    // The workspace currently converges in 16 passes — it deepened
    // from 10 when the replication subsystem landed (the standby's
    // REPLICATE apply path and the shipper's session run inside the
    // serve chains). The engine caps at 24 and reports non-convergence
    // beyond that. Creeping up to the cap means summaries are churning
    // — investigate (is it new real depth, or a cycle?), don't bump.
    assert!(
        graph.passes <= 18,
        "fixpoint took {} passes on the workspace — summaries are churning",
        graph.passes
    );
    assert!(graph.fns.len() > 100, "only {} functions found", graph.fns.len());
}

#[test]
fn workspace_summaries_capture_known_durability_facts() {
    let parsed = corpus();
    let files: Vec<(String, &ParsedFile)> =
        parsed.iter().map(|(rel, p)| (rel.clone(), p)).collect();
    let graph = CallGraph::build(&files);

    // Wal::commit appends a record and fsyncs it before returning: the
    // engine must see the append as fsync-covered (fused), plus the
    // fsync itself.
    let wal_commit = (0..graph.fns.len())
        .find(|&i| {
            graph.fns[i].file.ends_with("crates/core/src/wal.rs")
                && graph.fns[i].name == "commit"
        })
        .expect("Wal::commit in corpus");
    let kinds: Vec<EffectKind> = graph.summary(wal_commit).iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&EffectKind::DurableAppend),
        "Wal::commit summary misses the fsynced append: {kinds:?}"
    );
    assert!(
        kinds.contains(&EffectKind::Fsync),
        "Wal::commit summary misses the fsync: {kinds:?}"
    );

    // At least one pool worker entry point exists (`impl Service`),
    // otherwise R8/R11 silently check nothing.
    let pool_roots = (0..graph.fns.len())
        .filter(|&i| {
            graph.fns[i].impl_trait.as_deref() == Some("Service")
                && graph.fns[i].name == "handle"
        })
        .count();
    assert!(pool_roots >= 3, "only {pool_roots} Service::handle impls found");
}

#[test]
fn full_gate_runtime_stays_bounded() {
    let root = mp_lint::workspace_root();
    let start = Instant::now();
    let result = mp_lint::gate_workspace(&root);
    let elapsed = start.elapsed();
    assert!(result.split.new.is_empty(), "gate not clean: {:#?}", result.split.new);
    // Generous bound: the gate currently runs in well under a second;
    // tripping this means the engine went super-linear on the corpus.
    assert!(
        elapsed.as_secs() < 30,
        "workspace gate took {elapsed:?} — lint runtime budget blown"
    );
}
