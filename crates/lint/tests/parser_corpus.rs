//! Corpus conformance: the statement parser must accept every `.rs`
//! file in this workspace without a parse failure, and the spans it
//! records must round-trip — the byte offset of every function and
//! statement must land on the line number the parser reported.

use mp_lint::parser::parse_source;
use std::path::{Path, PathBuf};

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn line_of_offset(src: &str, offset: usize) -> u32 {
    1 + src[..offset].bytes().filter(|b| *b == b'\n').count() as u32
}

#[test]
fn every_workspace_file_parses_and_spans_round_trip() {
    let root = mp_lint::workspace_root();
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    assert!(
        files.len() > 100,
        "workspace walk looks broken: only {} files",
        files.len()
    );

    let mut parsed_fns = 0usize;
    let mut parsed_stmts = 0usize;
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let parsed = parse_source(&src).unwrap_or_else(|e| {
            panic!("{}: parse failed at line {}: {}", path.display(), e.line, e.what)
        });
        for f in &parsed.functions {
            assert!(
                f.span.0 < f.span.1 && f.span.1 <= src.len(),
                "{}: fn `{}` span {:?} out of range",
                path.display(),
                f.name,
                f.span
            );
            // `f.line` is where the item starts (attributes included),
            // so it may precede the span, which opens at `fn`; it must
            // never follow it, and the spanned text must actually name
            // the function.
            let open = line_of_offset(&src, f.span.0);
            let close = line_of_offset(&src, f.span.1 - 1);
            assert!(
                f.line <= open && open <= close,
                "{}: fn `{}` declared at line {} after its span lines {open}..={close}",
                path.display(),
                f.name,
                f.line
            );
            assert!(
                src[f.span.0..f.span.1].contains(&f.name),
                "{}: fn `{}` span does not contain its name",
                path.display(),
                f.name
            );
            parsed_fns += 1;
            for s in &f.stmts {
                assert!(
                    s.span.0 <= s.span.1 && s.span.1 <= src.len(),
                    "{}: stmt span {:?} out of range in `{}`",
                    path.display(),
                    s.span,
                    f.name
                );
                assert_eq!(
                    line_of_offset(&src, s.span.0),
                    s.line,
                    "{}: stmt at byte {} in `{}` does not land on line {}",
                    path.display(),
                    s.span.0,
                    f.name,
                    s.line
                );
                parsed_stmts += 1;
            }
        }
    }
    // The corpus is only meaningful if it actually exercised the parser.
    assert!(parsed_fns > 500, "only {parsed_fns} functions parsed");
    assert!(parsed_stmts > 2000, "only {parsed_stmts} statements parsed");
}
