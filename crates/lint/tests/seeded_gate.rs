//! End-to-end gate check: a scratch workspace seeded with one
//! deliberate violation of each dataflow rule (plus a v1 rule for good
//! measure) must fail `gate_workspace`, attributing every finding to
//! the right rule. This proves the walker, scoping, engine, and
//! baseline plumbing work together — not just `check_source` in
//! isolation.

use mp_lint::gate_workspace;

/// Named `server.rs` under `crates/core/src/` so the R1 file list and
/// the R5/R6/R7 crate scoping both apply.
const SEEDED: &str = r#"//! Deliberately broken scratch file.

fn leaks_passphrase(passphrase: &str) {
    let cleartext = passphrase;
    println!("login with {cleartext}");
}

fn drops_send_error(chan: &mut Chan) {
    let _ = chan.send(b"bye");
}

fn sends_under_guard(state: &Mutex<Vec<u8>>, chan: &mut Chan) {
    let guard = state.lock();
    chan.send(&guard).unwrap();
}
"#;

#[test]
fn seeded_violations_fail_the_gate() {
    let dir = std::env::temp_dir().join(format!("mp-lint-seeded-{}", std::process::id()));
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::write(src_dir.join("server.rs"), SEEDED).expect("seed file");

    let result = gate_workspace(&dir);
    std::fs::remove_dir_all(&dir).expect("scratch teardown");

    assert!(!result.passed(), "seeded gate unexpectedly passed");
    let by_rule = |rule: &str| -> Vec<u32> {
        result
            .split
            .new
            .iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.line)
            .collect()
    };
    assert_eq!(by_rule("R5"), vec![5], "R5: {:#?}", result.split.new);
    assert_eq!(by_rule("R6"), vec![9], "R6: {:#?}", result.split.new);
    assert_eq!(by_rule("R7"), vec![14], "R7: {:#?}", result.split.new);
    assert_eq!(by_rule("R1"), vec![14], "R1 unwrap: {:#?}", result.split.new);

    // Every finding also lands in the SARIF report, none baselined.
    let results = result
        .sarif
        .get("results")
        .and_then(mp_lint::json::Value::as_arr)
        .expect("sarif results");
    assert_eq!(results.len(), result.split.new.len());
    assert!(results
        .iter()
        .all(|r| r.get("baselined").and_then(mp_lint::json::Value::as_bool) == Some(false)));
}
