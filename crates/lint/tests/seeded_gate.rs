//! End-to-end gate check: a scratch workspace seeded with one
//! deliberate violation of each dataflow rule (plus a v1 rule for good
//! measure) must fail `gate_workspace`, attributing every finding to
//! the right rule. This proves the walker, scoping, engine, and
//! baseline plumbing work together — not just `check_source` in
//! isolation.

use mp_lint::gate_workspace;

/// Named `server.rs` under `crates/core/src/` so the R1 file list and
/// the R5/R6/R7 crate scoping both apply.
const SEEDED: &str = r#"//! Deliberately broken scratch file.

fn leaks_passphrase(passphrase: &str) {
    let cleartext = passphrase;
    println!("login with {cleartext}");
}

fn drops_send_error(chan: &mut Chan) {
    let _ = chan.send(b"bye");
}

fn sends_under_guard(state: &Mutex<Vec<u8>>, chan: &mut Chan) {
    let guard = state.lock();
    chan.send(&guard).unwrap();
}
"#;

/// The ISSUE acceptance scenario: a seeded durability bug whose append
/// and ack live in *different functions* must be caught by the gate
/// with the full inter-procedural call path in the SARIF-lite output.
const SEEDED_JOURNAL: &str = r#"//! Seeded ack-before-fsync: the WAL append in `journal_append` is
//! only fsynced after the response ack in `handle_store`.

fn journal_append(j: &mut Journal, rec: &[u8]) {
    j.log.append(rec, true);
}

fn journal_sync(j: &mut Journal) {
    j.file.sync_all();
}

fn handle_store(j: &mut Journal, chan: &mut Chan, rec: &[u8]) {
    journal_append(j, rec);
    chan.send(b"OK");
    journal_sync(j);
}
"#;

#[test]
fn seeded_ack_before_fsync_is_caught_with_a_call_path() {
    let dir = std::env::temp_dir().join(format!("mp-lint-journal-{}", std::process::id()));
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::write(src_dir.join("journal.rs"), SEEDED_JOURNAL).expect("seed file");

    let result = gate_workspace(&dir);
    std::fs::remove_dir_all(&dir).expect("scratch teardown");

    assert!(!result.passed(), "seeded durability bug passed the gate");
    let r9: Vec<_> = result.split.new.iter().filter(|d| d.rule == "R9").collect();
    assert_eq!(r9.len(), 1, "findings: {:#?}", result.split.new);
    let d = r9[0];
    // Anchored at the ack site in `handle_store`, not inside the
    // helper that did the append.
    assert_eq!((d.file.as_str(), d.line), ("crates/core/src/journal.rs", 14), "{d:#?}");
    assert!(
        d.path.iter().any(|s| s.note.contains("journal_append")),
        "path misses the cross-function append hop: {:#?}",
        d.path
    );

    // The same call path rides the SARIF-lite report as `taintPath`,
    // and the summary counts the finding under the R9 key.
    let sarif_r9 = result
        .sarif
        .get("results")
        .and_then(mp_lint::json::Value::as_arr)
        .expect("sarif results")
        .iter()
        .find(|r| r.get("ruleId").and_then(mp_lint::json::Value::as_str) == Some("R9"))
        .expect("R9 in sarif")
        .clone();
    let steps = sarif_r9
        .get("taintPath")
        .and_then(mp_lint::json::Value::as_arr)
        .expect("taintPath present")
        .len();
    assert!(steps >= 3, "expected a multi-hop path, got {steps} steps");
    assert_eq!(
        result
            .sarif
            .get("summary")
            .and_then(|s| s.get("lint.findings.r9"))
            .and_then(mp_lint::json::Value::as_num),
        Some(1.0)
    );
}

/// The v4 acceptance scenario: a wire-decoded length that crosses a
/// function boundary before feeding an allocation must be caught by
/// R12, with the decode→bind→call→allocation path in the SARIF output.
const SEEDED_FRAME: &str = r#"//! Seeded unclamped wire length: the length decoded in `frame_len`
//! reaches the allocation in `read_frame` with no bound check.

fn frame_len(hdr: &[u8; 4]) -> usize {
    let n = u32::from_be_bytes(*hdr) as usize;
    n
}

fn read_frame(hdr: &[u8; 4]) -> Vec<u8> {
    let len = frame_len(hdr);
    let buf = Vec::with_capacity(len);
    buf
}
"#;

#[test]
fn seeded_unclamped_wire_length_is_caught_with_a_taint_path() {
    let dir = std::env::temp_dir().join(format!("mp-lint-frame-{}", std::process::id()));
    let src_dir = dir.join("crates/gsi/src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::write(src_dir.join("frame.rs"), SEEDED_FRAME).expect("seed file");

    let result = gate_workspace(&dir);
    std::fs::remove_dir_all(&dir).expect("scratch teardown");

    assert!(!result.passed(), "seeded wire-bounds bug passed the gate");
    let r12: Vec<_> = result.split.new.iter().filter(|d| d.rule == "R12").collect();
    assert_eq!(r12.len(), 1, "findings: {:#?}", result.split.new);
    let d = r12[0];
    // Anchored at the allocation in `read_frame`, not the decode in
    // the helper.
    assert_eq!((d.file.as_str(), d.line), ("crates/gsi/src/frame.rs", 11), "{d:#?}");
    // The path walks the whole flow: wire decode in `frame_len`, the
    // tainted return crossing back into `read_frame`, the `len`
    // binding, and the allocation it reaches.
    assert!(d.path.first().is_some_and(|s| s.note.contains("wire")), "{:#?}", d.path);
    assert!(d.path.iter().any(|s| s.note.contains("frame_len")), "{:#?}", d.path);
    assert!(
        d.path.last().is_some_and(|s| s.note.contains("reaches allocation")),
        "{:#?}",
        d.path
    );

    // The same flow rides the SARIF-lite report as `taintPath`, and
    // the summary counts the finding under the R12 key.
    let sarif_r12 = result
        .sarif
        .get("results")
        .and_then(mp_lint::json::Value::as_arr)
        .expect("sarif results")
        .iter()
        .find(|r| r.get("ruleId").and_then(mp_lint::json::Value::as_str) == Some("R12"))
        .expect("R12 in sarif")
        .clone();
    let steps = sarif_r12
        .get("taintPath")
        .and_then(mp_lint::json::Value::as_arr)
        .expect("taintPath present")
        .len();
    assert!(steps >= 3, "expected a multi-hop taint path, got {steps} steps");
    assert_eq!(
        result
            .sarif
            .get("summary")
            .and_then(|s| s.get("lint.findings.r12"))
            .and_then(mp_lint::json::Value::as_num),
        Some(1.0)
    );
}

#[test]
fn seeded_violations_fail_the_gate() {
    let dir = std::env::temp_dir().join(format!("mp-lint-seeded-{}", std::process::id()));
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::write(src_dir.join("server.rs"), SEEDED).expect("seed file");

    let result = gate_workspace(&dir);
    std::fs::remove_dir_all(&dir).expect("scratch teardown");

    assert!(!result.passed(), "seeded gate unexpectedly passed");
    let by_rule = |rule: &str| -> Vec<u32> {
        result
            .split
            .new
            .iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.line)
            .collect()
    };
    assert_eq!(by_rule("R5"), vec![5], "R5: {:#?}", result.split.new);
    assert_eq!(by_rule("R6"), vec![9], "R6: {:#?}", result.split.new);
    assert_eq!(by_rule("R7"), vec![14], "R7: {:#?}", result.split.new);
    assert_eq!(by_rule("R1"), vec![14], "R1 unwrap: {:#?}", result.split.new);

    // Every finding also lands in the SARIF report, none baselined.
    let results = result
        .sarif
        .get("results")
        .and_then(mp_lint::json::Value::as_arr)
        .expect("sarif results");
    assert_eq!(results.len(), result.split.new.len());
    assert!(results
        .iter()
        .all(|r| r.get("baselined").and_then(mp_lint::json::Value::as_bool) == Some(false)));
}
