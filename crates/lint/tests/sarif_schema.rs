//! The SARIF-lite report must validate against the *checked-in* schema
//! (`docs/mp-lint.sarif-lite.schema.json`) — both the real report for
//! this workspace and a synthetic report exercising every optional
//! field. A shape drift in either the emitter or the schema fails here.

use mp_lint::rules::{Diagnostic, TaintStep};
use mp_lint::{gate_workspace, json, sarif, schema, workspace_root};

fn checked_in_schema() -> json::Value {
    let path = workspace_root().join("docs/mp-lint.sarif-lite.schema.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("schema {} unreadable: {e}", path.display()));
    json::parse(&text).expect("schema parses as JSON")
}

#[test]
fn workspace_report_validates() {
    let result = gate_workspace(&workspace_root());
    let errors = schema::validate(&result.sarif, &checked_in_schema());
    assert!(errors.is_empty(), "schema violations: {errors:#?}");
}

#[test]
fn synthetic_report_with_taint_path_validates() {
    let mut tainted = Diagnostic::new("crates/core/src/x.rs", 7, "R5", "leak".into());
    tainted.path = vec![
        TaintStep { line: 3, note: "secret exposed".into() },
        TaintStep { line: 7, note: "reaches sink".into() },
    ];
    let plain = Diagnostic::new("crates/gram/src/job.rs", 42, "R7", "held guard".into());
    let doc = sarif::report(&[(tainted, false), (plain, true)]);
    let errors = schema::validate(&doc, &checked_in_schema());
    assert!(errors.is_empty(), "schema violations: {errors:#?}");
}

#[test]
fn schema_actually_rejects_malformed_reports() {
    // Guard against a vacuous schema: drop a required field and break
    // an enum; both must be reported.
    let text = r#"{
        "$schema": "docs/mp-lint.sarif-lite.schema.json",
        "version": "1",
        "tool": {"name": "mp-lint", "version": "2.0"},
        "results": [{
            "ruleId": "R5",
            "level": "warning",
            "message": "x",
            "location": {"file": "a.rs"},
            "baselined": false
        }]
    }"#;
    let doc = json::parse(text).expect("doc");
    let errors = schema::validate(&doc, &checked_in_schema());
    assert!(errors.iter().any(|e| e.contains("not in enum")), "{errors:#?}");
    assert!(
        errors.iter().any(|e| e.contains("missing required property `line`")),
        "{errors:#?}"
    );
}
