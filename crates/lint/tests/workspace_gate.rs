//! The gate: lint the entire workspace and fail on any finding.
//!
//! This is the test CI runs (`cargo test -p mp-lint`). A clean tree is
//! the merge requirement; violations must be fixed or waived with a
//! reasoned `// lint:allow(<rule>) <why>` at the offending line.

use mp_lint::{run_workspace, workspace_root};

#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let diags = run_workspace(&root);
    if !diags.is_empty() {
        let mut report = String::new();
        for d in &diags {
            report.push_str(&format!("  {d}\n"));
        }
        panic!(
            "mp-lint found {} violation(s):\n{report}\
             fix the code or annotate with `// lint:allow(<rule>) <reason>`",
            diags.len()
        );
    }
}
