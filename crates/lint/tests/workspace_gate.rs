//! The gate: lint the entire workspace and fail on anything the
//! committed baseline does not already track.
//!
//! This is the test CI runs (`cargo test -p mp-lint`). New findings
//! must be fixed or waived with a reasoned
//! `// lint:allow(<rule>) <why>` at the offending line; pre-existing
//! findings live in `lint-baseline.txt` and stale entries there (for
//! findings since fixed) fail too, so the baseline only ever shrinks.

use mp_lint::{gate_workspace, workspace_root};

#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let result = gate_workspace(&root);
    if !result.passed() {
        let mut report = String::new();
        for d in &result.split.new {
            report.push_str(&format!("  {d}\n"));
            for s in &d.path {
                report.push_str(&format!("      taint: line {}: {}\n", s.line, s.note));
            }
        }
        for s in &result.split.stale {
            report.push_str(&format!("  stale baseline entry (fixed — delete it): {s}\n"));
        }
        panic!(
            "mp-lint gate failed — {} new finding(s), {} stale baseline entr(ies):\n{report}\
             fix the code, annotate with `// lint:allow(<rule>) <reason>`, \
             or prune lint-baseline.txt",
            result.split.new.len(),
            result.split.stale.len()
        );
    }
}

#[test]
fn waiver_count_matches_committed_budget() {
    let root = workspace_root();
    let (total, per_file) = mp_lint::baseline::count_waivers(&root);
    let budget = mp_lint::baseline::load_budget(&root)
        .expect("lint-waivers.budget missing from the workspace root");
    assert_eq!(
        total, budget,
        "lint:allow count changed ({total} found, budget says {budget}); \
         update lint-waivers.budget in the same change — per file: {per_file:?}"
    );
}
