//! Property tests for the v4 typestate extractor
//! (`callgraph::local_events`): generated function bodies mixing plain
//! statements, method-chain statements (`recv.inner()?.op(..)`), and
//! closure bodies must yield exactly the planted effect transitions, in
//! statement order, each anchored at the line the parser's span model
//! assigns the statement. A second property pins branch-path semantics:
//! effects in sibling `if`/`else` arms are mutually unordered, while
//! everything else on a straight-line path stays ordered.

use mp_lint::callgraph::{local_events, ordered_branches, EffectKind, LocalEvent};
use mp_lint::parser;
use proptest::prelude::*;

/// The primitive calls the extractor recognizes, paired with the
/// effect each must produce.
const OPS: &[(&str, EffectKind)] = &[
    ("write_all(b\"PAY\")", EffectKind::SocketWrite),
    ("flush()", EffectKind::SocketWrite),
    ("send(b\"OK\")", EffectKind::Ack),
    ("read_exact(&mut buf)", EffectKind::SocketRead),
    ("set_deadlines(other)", EffectKind::DeadlineArm),
    ("sync_all()", EffectKind::Fsync),
    ("rename(a, b)", EffectKind::Rename),
    ("read_to_end(&mut buf)", EffectKind::UnboundedRead),
];

const HEADER: &str = "fn generated(chan: &mut Chan, conns: &Conns, buf: &mut Vec<u8>, \
                      a: &str, b: &str, other: &Tok) {\n";

fn ops_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(usize, u8)>> {
    proptest::collection::vec((0..OPS.len(), 0u8..3), n)
}

/// Render one op as a statement in the chosen style; every style keeps
/// the primitive on a single, known line.
fn stmt(op: usize, style: u8) -> String {
    let call = OPS[op].0;
    match style {
        0 => format!("    chan.{call};\n"),
        1 => format!("    chan.inner()?.{call};\n"),
        _ => format!("    conns.for_each(|c| c.{call});\n"),
    }
}

fn effects_of(src: &str) -> Vec<(EffectKind, u32, Vec<u32>)> {
    let pf = parser::parse_source(src).expect("generated source parses");
    assert_eq!(pf.functions.len(), 1, "one generated function");
    local_events("crates/core/src/generated.rs", &pf, &pf.functions[0])
        .into_iter()
        .filter_map(|e| match e {
            LocalEvent::Effect(eff) => Some((eff.kind, eff.line, eff.branch)),
            LocalEvent::Call { .. } => None,
        })
        .collect()
}

proptest! {
    #[test]
    fn transitions_round_trip_statement_order_and_spans(
        ops in ops_strategy(1..12),
    ) {
        let mut src = String::from(HEADER);
        let mut expected: Vec<(EffectKind, u32)> = Vec::new();
        let mut line = 2u32;
        for &(op, style) in &ops {
            src.push_str(&stmt(op, style));
            expected.push((OPS[op].1, line));
            line += 1;
        }
        src.push_str("}\n");

        let got: Vec<(EffectKind, u32)> =
            effects_of(&src).into_iter().map(|(k, l, _)| (k, l)).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn chained_ops_in_one_statement_keep_token_order(
        pairs in proptest::collection::vec((0..OPS.len(), 0..OPS.len()), 1..6),
    ) {
        // `chan.flush()?.send(b"OK")` — two primitives in one chained
        // statement must come out in token order on the same line.
        let mut src = String::from(HEADER);
        let mut expected: Vec<(EffectKind, u32)> = Vec::new();
        let mut line = 2u32;
        for &(x, y) in &pairs {
            src.push_str(&format!("    chan.{}?.{};\n", OPS[x].0, OPS[y].0));
            expected.push((OPS[x].1, line));
            expected.push((OPS[y].1, line));
            line += 1;
        }
        src.push_str("}\n");

        let got: Vec<(EffectKind, u32)> =
            effects_of(&src).into_iter().map(|(k, l, _)| (k, l)).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn sibling_arm_effects_are_unordered_straight_line_stays_ordered(
        arm_a in ops_strategy(1..5),
        arm_b in ops_strategy(1..5),
        tail in ops_strategy(1..5),
    ) {
        let mut src = String::from(HEADER);
        let mut line = 2u32;
        let render = |src: &mut String, ops: &[(usize, u8)], line: &mut u32| -> Vec<u32> {
            let mut lines = Vec::new();
            for &(op, style) in ops {
                src.push_str("    ");
                src.push_str(&stmt(op, style));
                lines.push(*line);
                *line += 1;
            }
            lines
        };
        src.push_str("    if chan.ready() {\n");
        line += 1;
        let a_lines = render(&mut src, &arm_a, &mut line);
        src.push_str("    } else {\n");
        line += 1;
        let b_lines = render(&mut src, &arm_b, &mut line);
        src.push_str("    }\n");
        line += 1;
        let mut tail_lines = Vec::new();
        for &(op, style) in &tail {
            src.push_str(&stmt(op, style));
            tail_lines.push(line);
            line += 1;
        }
        src.push_str("}\n");

        let effects = effects_of(&src);
        prop_assert_eq!(effects.len(), arm_a.len() + arm_b.len() + tail.len());
        let group = |l: u32| -> u8 {
            if a_lines.contains(&l) {
                0
            } else if b_lines.contains(&l) {
                1
            } else {
                assert!(tail_lines.contains(&l), "effect on unexpected line {l}");
                2
            }
        };
        for (i, (_, la, ba)) in effects.iter().enumerate() {
            for (_, lb, bb) in effects.iter().skip(i + 1) {
                let (ga, gb) = (group(*la), group(*lb));
                let expect_ordered = !(ga == 0 && gb == 1 || ga == 1 && gb == 0);
                prop_assert!(
                    ordered_branches(ba, bb) == expect_ordered,
                    "lines {} vs {} (groups {} vs {}), paths {:?} vs {:?}\n{}",
                    la, lb, ga, gb, ba, bb, src
                );
            }
        }
    }
}
