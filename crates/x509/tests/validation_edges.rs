//! Edge cases of chain validation: deep CA hierarchies, path-length
//! boundaries, far-future dates, revocation of intermediates, and
//! proxies hanging off multi-level hierarchies.

use mp_bignum::BigUint;
use mp_x509::test_util::test_rsa_key;
use mp_x509::{
    validate_chain, CertBuilder, CertRevocationList, Certificate, CertificateAuthority,
    ChainError, Dn, ProxyPolicy, ValidationOptions,
};

fn root() -> CertificateAuthority {
    CertificateAuthority::new_root(
        Dn::parse("/O=Grid/CN=Root").unwrap(),
        test_rsa_key(0).clone(),
        0,
        100_000_000,
    )
    .unwrap()
}

#[test]
fn two_level_ca_hierarchy_with_proxy_on_top() {
    let mut root = root();
    // Root (pathlen ∞) → inter1 (pathlen 1) → inter2 (pathlen 0) → user → proxy.
    let i1_key = test_rsa_key(1);
    let i1_dn = Dn::parse("/O=Grid/CN=Inter1").unwrap();
    let i1 = root
        .issue_intermediate(&i1_dn, i1_key.public_key(), 0, 90_000_000, Some(1))
        .unwrap();
    let i2_key = test_rsa_key(2);
    let i2_dn = Dn::parse("/O=Grid/CN=Inter2").unwrap();
    let i2 = CertBuilder::new(i2_dn.clone(), 0, 80_000_000)
        .serial(BigUint::from_u64(100))
        .ca(Some(0))
        .sign(&i1_dn, i1_key, i2_key.public_key())
        .unwrap();
    let user_key = test_rsa_key(3);
    let user_dn = Dn::parse("/O=Grid/CN=dave").unwrap();
    let user = CertBuilder::new(user_dn.clone(), 0, 70_000_000)
        .serial(BigUint::from_u64(101))
        .end_entity()
        .sign(&i2_dn, i2_key, user_key.public_key())
        .unwrap();
    let proxy_key = test_rsa_key(4);
    let proxy = CertBuilder::new(user_dn.with_cn("proxy"), 0, 60_000_000)
        .serial(BigUint::from_u64(102))
        .proxy(ProxyPolicy::InheritAll, None)
        .sign(&user_dn, user_key, proxy_key.public_key())
        .unwrap();

    let roots = [root.certificate().clone()];
    let chain = [proxy, user, i2, i1];
    let v = validate_chain(&chain, &roots, 1000, &Default::default()).unwrap();
    assert_eq!(v.identity, user_dn);
    assert_eq!(v.proxy_depth, 1);
}

#[test]
fn ca_path_len_zero_blocks_sub_ca() {
    let mut root = root();
    // inter1 has pathlen 0: it may issue EEs but NOT another CA.
    let i1_key = test_rsa_key(1);
    let i1_dn = Dn::parse("/O=Grid/CN=Constrained").unwrap();
    let i1 = root
        .issue_intermediate(&i1_dn, i1_key.public_key(), 0, 90_000_000, Some(0))
        .unwrap();
    let i2_key = test_rsa_key(2);
    let i2_dn = Dn::parse("/O=Grid/CN=Illegal Sub").unwrap();
    let i2 = CertBuilder::new(i2_dn.clone(), 0, 80_000_000)
        .serial(BigUint::from_u64(200))
        .ca(None)
        .sign(&i1_dn, i1_key, i2_key.public_key())
        .unwrap();
    let user_key = test_rsa_key(3);
    let user_dn = Dn::parse("/O=Grid/CN=eve").unwrap();
    let user = CertBuilder::new(user_dn, 0, 70_000_000)
        .serial(BigUint::from_u64(201))
        .end_entity()
        .sign(&i2_dn, i2_key, user_key.public_key())
        .unwrap();

    let roots = [root.certificate().clone()];
    let err = validate_chain(&[user, i2, i1], &roots, 1000, &Default::default()).unwrap_err();
    assert!(matches!(err, ChainError::CaPathLenExceeded { index: 2 }));
}

#[test]
fn end_entity_outliving_its_ca_dies_with_the_ca() {
    let mut ca = CertificateAuthority::new_root(
        Dn::parse("/O=Grid/CN=ShortRoot").unwrap(),
        test_rsa_key(0).clone(),
        0,
        10_000, // root expires early
    )
    .unwrap();
    let user_key = test_rsa_key(1);
    let user_dn = Dn::parse("/O=Grid/CN=methuselah").unwrap();
    // Misconfigured CA issues a cert outliving itself.
    let user = ca
        .issue_end_entity(&user_dn, user_key.public_key(), 0, 1_000_000)
        .unwrap();
    let roots = [ca.certificate().clone()];
    assert!(validate_chain(&[user.clone()], &roots, 5_000, &Default::default()).is_ok());
    // Past the root's expiry the anchor disappears: validation fails
    // even though the leaf itself is still in-window.
    let err = validate_chain(&[user], &roots, 20_000, &Default::default()).unwrap_err();
    assert_eq!(err, ChainError::UntrustedRoot);
}

#[test]
fn far_future_dates_roundtrip() {
    // GeneralizedTime handles years past 2050 (UTCTime cannot).
    let key = test_rsa_key(0);
    let dn = Dn::parse("/CN=far future").unwrap();
    let not_after = 4_102_444_800; // 2100-01-01
    let cert = CertBuilder::new(dn.clone(), 0, not_after)
        .end_entity()
        .sign(&dn, key, key.public_key())
        .unwrap();
    let reparsed = Certificate::from_der(cert.to_der()).unwrap();
    assert_eq!(reparsed.not_after(), not_after);
}

#[test]
fn revoked_intermediate_kills_the_whole_chain() {
    let mut root = root();
    let i1_key = test_rsa_key(1);
    let i1_dn = Dn::parse("/O=Grid/CN=Revoked Inter").unwrap();
    let i1 = root
        .issue_intermediate(&i1_dn, i1_key.public_key(), 0, 90_000_000, None)
        .unwrap();
    let user_key = test_rsa_key(2);
    let user_dn = Dn::parse("/O=Grid/CN=innocent").unwrap();
    let user = CertBuilder::new(user_dn, 0, 70_000_000)
        .serial(BigUint::from_u64(300))
        .end_entity()
        .sign(&i1_dn, i1_key, user_key.public_key())
        .unwrap();

    let crl = CertRevocationList::create(
        root.dn(),
        root.key(),
        0,
        100_000_000,
        &[i1.serial().clone()],
        500,
    )
    .unwrap();
    let roots = [root.certificate().clone()];
    let opts = ValidationOptions { crls: vec![crl], ..Default::default() };
    let err = validate_chain(&[user, i1], &roots, 1000, &opts).unwrap_err();
    assert!(matches!(err, ChainError::Revoked { index: 1, .. }));
}

#[test]
fn exact_max_chain_len_boundary() {
    let mut root = root();
    let user_key = test_rsa_key(1);
    let user_dn = Dn::parse("/O=Grid/CN=boundary").unwrap();
    let user = root
        .issue_end_entity(&user_dn, user_key.public_key(), 0, 90_000_000)
        .unwrap();
    let roots = [root.certificate().clone()];
    let at_limit = ValidationOptions { max_chain_len: 1, ..Default::default() };
    assert!(validate_chain(&[user.clone()], &roots, 1000, &at_limit).is_ok());
    let below = ValidationOptions { max_chain_len: 0, ..Default::default() };
    assert_eq!(
        validate_chain(&[user], &roots, 1000, &below),
        Err(ChainError::TooLong)
    );
}

#[test]
fn validity_boundaries_are_inclusive() {
    let key = test_rsa_key(0);
    let dn = Dn::parse("/CN=edges").unwrap();
    let cert = CertBuilder::new(dn.clone(), 1000, 2000)
        .end_entity()
        .sign(&dn, key, key.public_key())
        .unwrap();
    // Self-signed cert used as its own trust root.
    let roots = [cert.clone()];
    assert!(validate_chain(&[cert.clone()], &roots, 1000, &Default::default()).is_ok());
    assert!(validate_chain(&[cert.clone()], &roots, 2000, &Default::default()).is_ok());
    assert!(validate_chain(&[cert.clone()], &roots, 999, &Default::default()).is_err());
    assert!(validate_chain(&[cert], &roots, 2001, &Default::default()).is_err());
}

#[test]
fn self_signed_non_root_is_untrusted() {
    let key = test_rsa_key(5);
    let dn = Dn::parse("/O=Rogue/CN=self-made").unwrap();
    let cert = CertBuilder::new(dn.clone(), 0, 1_000_000)
        .end_entity()
        .sign(&dn, key, key.public_key())
        .unwrap();
    let real_root = root();
    let roots = [real_root.certificate().clone()];
    assert_eq!(
        validate_chain(&[cert], &roots, 1000, &Default::default()),
        Err(ChainError::UntrustedRoot)
    );
}

#[test]
fn duplicate_subject_different_keys_rejected_by_signature() {
    // A certificate claiming the root's DN but a different key cannot
    // anchor: DN matching alone never suffices, the signature must
    // verify under the real root key.
    let real_root = root();
    let fake_key = test_rsa_key(6);
    let fake = CertBuilder::new(real_root.dn().clone(), 0, 1_000_000)
        .ca(None)
        .sign(real_root.dn(), fake_key, fake_key.public_key())
        .unwrap();
    let roots = [real_root.certificate().clone()];
    let err = validate_chain(&[fake], &roots, 1000, &Default::default()).unwrap_err();
    assert!(matches!(err, ChainError::BadSignature { index: 0 }));
}
