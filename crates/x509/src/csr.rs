//! PKCS#10-style certification requests.
//!
//! The delegation protocol (paper §2.4) is: receiver generates a fresh
//! keypair, sends a signed request (proof it holds the new private key),
//! and the delegator answers with a proxy certificate. The request
//! format below is a trimmed PKCS#10: subject, SPKI, self-signature.

use crate::keys::{decode_spki, encode_spki};
use crate::name::Dn;
use crate::X509Error;
use mp_asn1::{oid::known, Decoder, Encoder, Tag};
use mp_crypto::rsa::{RsaPrivateKey, RsaPublicKey};

/// A certification request: "please bind this DN to this key".
#[derive(Clone, PartialEq, Eq)]
pub struct CertRequest {
    der: Vec<u8>,
    info_der: Vec<u8>,
    subject: Dn,
    public_key: RsaPublicKey,
    signature: Vec<u8>,
}

impl CertRequest {
    /// Build and self-sign a request with the subject's new key.
    pub fn create(subject: &Dn, key: &RsaPrivateKey) -> Result<Self, X509Error> {
        let mut info = Encoder::new();
        info.sequence(|i| {
            i.uint_u64(0); // version
            subject.encode(i);
            encode_spki(key.public_key(), i);
        });
        let info_der = info.into_bytes();
        let signature = key
            .sign(&info_der)
            .map_err(|_| X509Error::Malformed("key too small to sign CSR"))?;
        let mut enc = Encoder::new();
        enc.sequence(|csr| {
            csr.raw(&info_der);
            csr.sequence(|alg| {
                alg.oid(&known::sha256_with_rsa());
                alg.null();
            });
            csr.bit_string(&signature);
        });
        Self::from_der(&enc.into_bytes())
    }

    /// Parse from DER.
    pub fn from_der(der: &[u8]) -> Result<Self, X509Error> {
        let mut outer = Decoder::new(der);
        let mut csr = outer.sequence()?;
        outer.finish()?;

        let mut probe = csr.clone();
        let (info_tag, info_raw) = probe.any_raw()?;
        if info_tag != Tag::SEQUENCE {
            return Err(X509Error::Malformed("certificationRequestInfo not a SEQUENCE"));
        }
        let info_der = info_raw.to_vec();

        let mut info = csr.sequence()?;
        let version = info.uint_u64()?;
        if version != 0 {
            return Err(X509Error::Malformed("unsupported CSR version"));
        }
        let subject = Dn::decode(&mut info)?;
        let public_key = decode_spki(&mut info)?;
        info.finish()?;

        let mut alg = csr.sequence()?;
        if alg.oid()? != known::sha256_with_rsa() {
            return Err(X509Error::Malformed("unsupported CSR signature algorithm"));
        }
        alg.null()?;
        alg.finish()?;
        let signature = csr.bit_string()?.to_vec();
        csr.finish()?;

        Ok(CertRequest { der: der.to_vec(), info_der, subject, public_key, signature })
    }

    /// DER bytes.
    pub fn to_der(&self) -> &[u8] {
        &self.der
    }

    /// Requested subject.
    pub fn subject(&self) -> &Dn {
        &self.subject
    }

    /// The key to bind.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public_key
    }

    /// Verify the proof-of-possession self-signature. A delegator MUST
    /// check this before signing: it proves the requester actually holds
    /// the private key it wants certified.
    pub fn verify_pop(&self) -> bool {
        self.public_key.verify(&self.info_der, &self.signature).is_ok()
    }
}

impl std::fmt::Debug for CertRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CertRequest(subject={})", self.subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::test_rsa_key;

    #[test]
    fn create_parse_verify() {
        let key = test_rsa_key(4);
        let dn = Dn::parse("/O=Grid/CN=alice/CN=proxy").unwrap();
        let csr = CertRequest::create(&dn, key).unwrap();
        assert_eq!(csr.subject(), &dn);
        assert_eq!(csr.public_key(), key.public_key());
        assert!(csr.verify_pop());

        let reparsed = CertRequest::from_der(csr.to_der()).unwrap();
        assert_eq!(reparsed, csr);
        assert!(reparsed.verify_pop());
    }

    #[test]
    fn pop_fails_for_substituted_key() {
        // An attacker replaying a CSR but claiming a different key must
        // fail proof-of-possession.
        let key = test_rsa_key(4);
        let dn = Dn::parse("/CN=victim").unwrap();
        let csr = CertRequest::create(&dn, key).unwrap();

        // Rebuild the CSR with a different SPKI but the old signature.
        let other = test_rsa_key(5);
        let mut info = Encoder::new();
        info.sequence(|i| {
            i.uint_u64(0);
            dn.encode(i);
            encode_spki(other.public_key(), i);
        });
        let mut enc = Encoder::new();
        enc.sequence(|c| {
            c.raw(&info.into_bytes());
            c.sequence(|alg| {
                alg.oid(&known::sha256_with_rsa());
                alg.null();
            });
            c.bit_string(csr.signature.as_slice());
        });
        let forged = CertRequest::from_der(&enc.into_bytes()).unwrap();
        assert!(!forged.verify_pop());
    }

    #[test]
    fn rejects_garbage() {
        assert!(CertRequest::from_der(&[1, 2, 3]).is_err());
    }
}
