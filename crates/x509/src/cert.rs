//! The certificate type: parsing, encoding, and signature checking.

use crate::ext::{Extension, ProxyPolicy};
use crate::keys::{decode_spki, encode_spki};
use crate::name::Dn;
use crate::X509Error;
use mp_asn1::{oid::known, Decoder, Encoder, Tag};
use mp_bignum::BigUint;
use mp_crypto::rsa::RsaPublicKey;

/// A parsed X.509 v3 certificate.
///
/// Holds both the decoded fields and the exact DER bytes: signature
/// verification hashes `tbs_der` as received, never a re-encoding.
#[derive(Clone, PartialEq, Eq)]
pub struct Certificate {
    der: Vec<u8>,
    tbs_der: Vec<u8>,
    serial: BigUint,
    issuer: Dn,
    subject: Dn,
    not_before: u64,
    not_after: u64,
    public_key: RsaPublicKey,
    extensions: Vec<Extension>,
    signature: Vec<u8>,
}

impl Certificate {
    /// Parse a certificate from DER.
    pub fn from_der(der: &[u8]) -> Result<Self, X509Error> {
        let mut outer = Decoder::new(der);
        let mut cert = outer.sequence()?;
        outer.finish()?;

        // Capture the raw TBS bytes for later signature verification.
        let mut probe = cert.clone();
        let (tbs_tag, tbs_raw) = probe.any_raw()?;
        if tbs_tag != Tag::SEQUENCE {
            return Err(X509Error::Malformed("tbsCertificate is not a SEQUENCE"));
        }
        let tbs_der = tbs_raw.to_vec();

        let mut tbs = cert.sequence()?;
        // [0] EXPLICIT version — we require v3 since proxies need extensions.
        let mut version_ctx = tbs.context(0)?;
        let version = version_ctx.uint_u64()?;
        version_ctx.finish()?;
        if version != 2 {
            return Err(X509Error::Malformed("only X.509 v3 supported"));
        }
        let serial = tbs.uint()?;
        read_sig_alg(&mut tbs)?;
        let issuer = Dn::decode(&mut tbs)?;
        let mut validity = tbs.sequence()?;
        let not_before = validity.time()?;
        let not_after = validity.time()?;
        validity.finish()?;
        let subject = Dn::decode(&mut tbs)?;
        let public_key = decode_spki(&mut tbs)?;
        let mut extensions = Vec::new();
        if tbs.peek_tag() == Some(Tag::context(3)) {
            let mut exts_ctx = tbs.context(3)?;
            let mut exts = exts_ctx.sequence()?;
            while !exts.is_empty() {
                extensions.push(Extension::decode(&mut exts)?);
            }
            exts_ctx.finish()?;
        }
        tbs.finish()?;

        read_sig_alg(&mut cert)?;
        let signature = cert.bit_string()?.to_vec();
        cert.finish()?;

        if not_after < not_before {
            return Err(X509Error::Malformed("notAfter before notBefore"));
        }

        Ok(Certificate {
            der: der.to_vec(),
            tbs_der,
            serial,
            issuer,
            subject,
            not_before,
            not_after,
            public_key,
            extensions,
            signature,
        })
    }

    /// Assemble and sign a certificate from TBS parts. Used by
    /// [`crate::builder::CertBuilder`]; takes the already-encoded TBS DER
    /// and its signature.
    pub(crate) fn assemble(tbs_der: Vec<u8>, signature: Vec<u8>) -> Result<Self, X509Error> {
        let mut enc = Encoder::new();
        enc.sequence(|c| {
            c.raw(&tbs_der);
            c.sequence(|alg| {
                alg.oid(&known::sha256_with_rsa());
                alg.null();
            });
            c.bit_string(&signature);
        });
        // One canonical construction path: always go through the parser,
        // so anything the builder emits is also something we can read.
        Certificate::from_der(&enc.into_bytes())
    }

    /// The full DER encoding.
    pub fn to_der(&self) -> &[u8] {
        &self.der
    }

    /// Serial number.
    pub fn serial(&self) -> &BigUint {
        &self.serial
    }

    /// Issuer DN.
    pub fn issuer(&self) -> &Dn {
        &self.issuer
    }

    /// Subject DN.
    pub fn subject(&self) -> &Dn {
        &self.subject
    }

    /// Validity start (unix seconds).
    pub fn not_before(&self) -> u64 {
        self.not_before
    }

    /// Validity end (unix seconds).
    pub fn not_after(&self) -> u64 {
        self.not_after
    }

    /// The subject's public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public_key
    }

    /// All extensions.
    pub fn extensions(&self) -> &[Extension] {
        &self.extensions
    }

    /// Signature bytes.
    pub fn signature(&self) -> &[u8] {
        &self.signature
    }

    /// True at time `now` w.r.t. the validity window.
    pub fn is_time_valid(&self, now: u64) -> bool {
        self.not_before <= now && now <= self.not_after
    }

    /// Seconds of validity remaining at `now` (0 if expired).
    pub fn remaining_lifetime(&self, now: u64) -> u64 {
        self.not_after.saturating_sub(now)
    }

    /// The ProxyCertInfo extension, if this is a proxy certificate.
    pub fn proxy_info(&self) -> Option<(&ProxyPolicy, Option<u64>)> {
        self.extensions.iter().find_map(|e| match e {
            Extension::ProxyCertInfo { policy, path_len } => Some((policy, *path_len)),
            _ => None,
        })
    }

    /// Is this a proxy certificate (paper §2.3)?
    pub fn is_proxy(&self) -> bool {
        self.proxy_info().is_some()
    }

    /// BasicConstraints CA flag (false when absent).
    pub fn is_ca(&self) -> bool {
        self.extensions.iter().any(|e| matches!(e, Extension::BasicConstraints { ca: true, .. }))
    }

    /// BasicConstraints path length, if present.
    pub fn ca_path_len(&self) -> Option<u64> {
        self.extensions.iter().find_map(|e| match e {
            Extension::BasicConstraints { ca: true, path_len } => *path_len,
            _ => None,
        })
    }

    /// Verify this certificate's signature with the issuer's public key.
    pub fn verify_signature(&self, issuer_key: &RsaPublicKey) -> bool {
        issuer_key.verify(&self.tbs_der, &self.signature).is_ok()
    }

    /// SHA-256 fingerprint of the DER, as stable identifier.
    pub fn fingerprint(&self) -> [u8; 32] {
        mp_crypto::sha256(&self.der)
    }
}

impl std::fmt::Debug for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Certificate")
            .field("subject", &self.subject.to_string())
            .field("issuer", &self.issuer.to_string())
            .field("serial", &self.serial)
            .field("not_before", &self.not_before)
            .field("not_after", &self.not_after)
            .field("proxy", &self.is_proxy())
            .field("ca", &self.is_ca())
            .finish()
    }
}

fn read_sig_alg(dec: &mut Decoder) -> Result<(), X509Error> {
    let mut alg = dec.sequence()?;
    let oid = alg.oid()?;
    if oid != known::sha256_with_rsa() {
        return Err(X509Error::Malformed("unsupported signature algorithm"));
    }
    alg.null()?;
    alg.finish()?;
    Ok(())
}

/// Encode the TBS certificate structure; shared with the builder.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_tbs(
    serial: &BigUint,
    issuer: &Dn,
    not_before: u64,
    not_after: u64,
    subject: &Dn,
    public_key: &RsaPublicKey,
    extensions: &[Extension],
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.sequence(|tbs| {
        tbs.constructed(Tag::context(0), |v| {
            v.uint_u64(2); // v3
        });
        tbs.uint(serial);
        tbs.sequence(|alg| {
            alg.oid(&known::sha256_with_rsa());
            alg.null();
        });
        issuer.encode(tbs);
        tbs.sequence(|validity| {
            validity.generalized_time(not_before);
            validity.generalized_time(not_after);
        });
        subject.encode(tbs);
        encode_spki(public_key, tbs);
        if !extensions.is_empty() {
            tbs.constructed(Tag::context(3), |ctx| {
                ctx.sequence(|exts| {
                    for e in extensions {
                        e.encode(exts);
                    }
                });
            });
        }
    });
    enc.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::KeyUsage;
    use crate::test_util::test_rsa_key;

    fn build_test_cert() -> Certificate {
        let key = test_rsa_key(0);
        let issuer = Dn::parse("/O=Grid/CN=Test CA").unwrap();
        let subject = Dn::parse("/O=Grid/CN=alice").unwrap();
        let tbs = encode_tbs(
            &BigUint::from_u64(42),
            &issuer,
            1000,
            2000,
            &subject,
            key.public_key(),
            &[
                Extension::BasicConstraints { ca: false, path_len: None },
                Extension::KeyUsage(KeyUsage::end_entity()),
            ],
        );
        let sig = key.sign(&tbs).unwrap();
        Certificate::assemble(tbs, sig).unwrap()
    }

    #[test]
    fn build_parse_fields() {
        let cert = build_test_cert();
        assert_eq!(cert.subject().to_string(), "/O=Grid/CN=alice");
        assert_eq!(cert.issuer().to_string(), "/O=Grid/CN=Test CA");
        assert_eq!(cert.serial(), &BigUint::from_u64(42));
        assert_eq!(cert.not_before(), 1000);
        assert_eq!(cert.not_after(), 2000);
        assert!(!cert.is_proxy());
        assert!(!cert.is_ca());
    }

    #[test]
    fn der_roundtrip_identical() {
        let cert = build_test_cert();
        let reparsed = Certificate::from_der(cert.to_der()).unwrap();
        assert_eq!(reparsed, cert);
    }

    #[test]
    fn signature_verifies_with_signer_only() {
        let cert = build_test_cert();
        assert!(cert.verify_signature(test_rsa_key(0).public_key()));
        assert!(!cert.verify_signature(test_rsa_key(1).public_key()));
    }

    #[test]
    fn tampered_der_fails_signature() {
        let cert = build_test_cert();
        let mut der = cert.to_der().to_vec();
        // Flip a byte inside the TBS (serial number area).
        let pos = 20;
        der[pos] ^= 1;
        match Certificate::from_der(&der) {
            Ok(tampered) => assert!(!tampered.verify_signature(test_rsa_key(0).public_key())),
            Err(_) => {} // structural break also acceptable
        }
    }

    #[test]
    fn time_validity_window() {
        let cert = build_test_cert();
        assert!(!cert.is_time_valid(999));
        assert!(cert.is_time_valid(1000));
        assert!(cert.is_time_valid(1500));
        assert!(cert.is_time_valid(2000));
        assert!(!cert.is_time_valid(2001));
        assert_eq!(cert.remaining_lifetime(1500), 500);
        assert_eq!(cert.remaining_lifetime(3000), 0);
    }

    #[test]
    fn rejects_reversed_validity() {
        let key = test_rsa_key(0);
        let dn = Dn::parse("/CN=x").unwrap();
        let tbs = encode_tbs(&BigUint::from_u64(1), &dn, 2000, 1000, &dn, key.public_key(), &[]);
        let sig = key.sign(&tbs).unwrap();
        assert!(Certificate::assemble(tbs, sig).is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_distinct() {
        let a = build_test_cert();
        let b = Certificate::from_der(a.to_der()).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Certificate::from_der(&[0x30, 0x03, 0x02, 0x01, 0x01]).is_err());
        assert!(Certificate::from_der(&[]).is_err());
    }

    #[test]
    fn debug_renders_subject() {
        let cert = build_test_cert();
        let dbg = format!("{cert:?}");
        assert!(dbg.contains("/O=Grid/CN=alice"));
    }
}
