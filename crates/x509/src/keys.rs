//! DER serialization of RSA keys: `SubjectPublicKeyInfo` (RFC 5280) and
//! PKCS#1 `RSAPrivateKey` — the on-disk format of Grid credentials.

use crate::X509Error;
use mp_asn1::{oid::known, Decoder, Encoder};
use mp_bignum::BigUint;
use mp_crypto::rsa::{RsaPrivateKey, RsaPublicKey};

/// Encode a public key as `SubjectPublicKeyInfo`.
pub fn encode_spki(key: &RsaPublicKey, enc: &mut Encoder) {
    enc.sequence(|spki| {
        spki.sequence(|alg| {
            alg.oid(&known::rsa_encryption());
            alg.null();
        });
        let mut inner = Encoder::new();
        inner.sequence(|rsa| {
            rsa.uint(key.n());
            rsa.uint(key.e());
        });
        spki.bit_string(&inner.into_bytes());
    });
}

/// DER bytes of a `SubjectPublicKeyInfo`.
pub fn spki_to_der(key: &RsaPublicKey) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_spki(key, &mut enc);
    enc.into_bytes()
}

/// Parse a `SubjectPublicKeyInfo` from a decoder.
pub fn decode_spki(dec: &mut Decoder) -> Result<RsaPublicKey, X509Error> {
    let mut spki = dec.sequence()?;
    let mut alg = spki.sequence()?;
    let oid = alg.oid()?;
    if oid != known::rsa_encryption() {
        return Err(X509Error::Malformed("unsupported public key algorithm"));
    }
    alg.null()?;
    alg.finish()?;
    let key_bits = spki.bit_string()?;
    spki.finish()?;
    let mut key_dec = Decoder::new(key_bits);
    let mut rsa = key_dec.sequence()?;
    let n = rsa.uint()?;
    let e = rsa.uint()?;
    rsa.finish()?;
    key_dec.finish()?;
    if n.is_zero() || e.is_zero() {
        return Err(X509Error::Malformed("zero RSA parameter"));
    }
    Ok(RsaPublicKey::new(n, e))
}

/// Encode a private key as PKCS#1 `RSAPrivateKey`
/// (version, n, e, d, p, q, dP, dQ, qInv).
pub fn private_key_to_der(key: &RsaPrivateKey) -> Vec<u8> {
    let (p, q) = key.primes();
    let one = BigUint::one();
    let dp = key.d().rem_ref(&p.sub_ref(&one));
    let dq = key.d().rem_ref(&q.sub_ref(&one));
    let qinv = q.mod_inverse(p).expect("p, q coprime");
    let mut enc = Encoder::new();
    enc.sequence(|s| {
        s.uint_u64(0);
        s.uint(key.public_key().n());
        s.uint(key.public_key().e());
        s.uint(key.d());
        s.uint(p);
        s.uint(q);
        s.uint(&dp);
        s.uint(&dq);
        s.uint(&qinv);
    });
    enc.into_bytes()
}

/// Parse a PKCS#1 `RSAPrivateKey`.
pub fn private_key_from_der(der: &[u8]) -> Result<RsaPrivateKey, X509Error> {
    let mut dec = Decoder::new(der);
    let mut s = dec.sequence()?;
    let version = s.uint_u64()?;
    if version != 0 {
        return Err(X509Error::Malformed("unsupported RSAPrivateKey version"));
    }
    let n = s.uint()?;
    let e = s.uint()?;
    let d = s.uint()?;
    let p = s.uint()?;
    let q = s.uint()?;
    let _dp = s.uint()?;
    let _dq = s.uint()?;
    let _qinv = s.uint()?;
    s.finish()?;
    dec.finish()?;
    if p.mul_ref(&q) != n {
        return Err(X509Error::Malformed("RSA private key p*q != n"));
    }
    Ok(RsaPrivateKey::from_components(n, e, d, p, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::test_rsa_key;

    #[test]
    fn spki_roundtrip() {
        let key = test_rsa_key(0);
        let der = spki_to_der(key.public_key());
        let mut dec = Decoder::new(&der);
        let back = decode_spki(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(&back, key.public_key());
    }

    #[test]
    fn private_key_roundtrip_signs_correctly() {
        let key = test_rsa_key(0);
        let der = private_key_to_der(key);
        let back = private_key_from_der(&der).unwrap();
        let sig = back.sign(b"roundtrip").unwrap();
        key.public_key().verify(b"roundtrip", &sig).unwrap();
    }

    #[test]
    fn private_key_rejects_inconsistent_primes() {
        let key = test_rsa_key(0);
        let other = test_rsa_key(1);
        let mut enc = Encoder::new();
        let (p, _q) = key.primes();
        let (_, q2) = other.primes();
        enc.sequence(|s| {
            s.uint_u64(0);
            s.uint(key.public_key().n());
            s.uint(key.public_key().e());
            s.uint(key.d());
            s.uint(p);
            s.uint(q2); // wrong q
            s.uint_u64(1);
            s.uint_u64(1);
            s.uint_u64(1);
        });
        assert!(private_key_from_der(&enc.into_bytes()).is_err());
    }

    #[test]
    fn spki_rejects_foreign_algorithm() {
        let mut enc = Encoder::new();
        enc.sequence(|spki| {
            spki.sequence(|alg| {
                alg.oid(&mp_asn1::oid::known::sha256_with_rsa());
                alg.null();
            });
            spki.bit_string(&[0x30, 0x00]);
        });
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(decode_spki(&mut dec).is_err());
    }
}
