//! X.509 v3 extensions: BasicConstraints, KeyUsage, and the GSI
//! ProxyCertInfo extension (the paper's citations \[15\]/\[16\], later
//! RFC 3820) including the *restricted* policy language of §6.5.

use crate::X509Error;
use mp_asn1::{oid::known, Decoder, Encoder, Oid, Tag};

/// KeyUsage bit flags (RFC 5280 §4.2.1.3). Only the bits the GSI stack
/// checks are named.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyUsage {
    /// digitalSignature (bit 0).
    pub digital_signature: bool,
    /// keyEncipherment (bit 2).
    pub key_encipherment: bool,
    /// keyCertSign (bit 5).
    pub key_cert_sign: bool,
}

impl KeyUsage {
    /// Usage for end-entity and proxy certificates.
    pub fn end_entity() -> Self {
        KeyUsage { digital_signature: true, key_encipherment: true, key_cert_sign: false }
    }

    /// Usage for CA certificates.
    pub fn ca() -> Self {
        KeyUsage { digital_signature: true, key_encipherment: false, key_cert_sign: true }
    }

    fn to_bits(self) -> u8 {
        let mut b = 0u8;
        if self.digital_signature {
            b |= 0x80;
        }
        if self.key_encipherment {
            b |= 0x20;
        }
        if self.key_cert_sign {
            b |= 0x04;
        }
        b
    }

    fn from_bits(b: u8) -> Self {
        KeyUsage {
            digital_signature: b & 0x80 != 0,
            key_encipherment: b & 0x20 != 0,
            key_cert_sign: b & 0x04 != 0,
        }
    }
}

/// The proxy policy carried in ProxyCertInfo: what rights the proxy
/// inherits from its issuer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyPolicy {
    /// Full impersonation (id-ppl-inheritAll): the common `grid-proxy-init`
    /// case — the proxy can do anything the user can (paper §2.3).
    InheritAll,
    /// Limited proxy (pre-RFC GSI semantics): resources such as GRAM
    /// refuse to start *new* jobs for limited proxies; file access still
    /// works. Produced by `grid-proxy-init -limited`.
    Limited,
    /// Independent: no rights inherited (rarely used; included for
    /// profile completeness).
    Independent,
    /// Restricted delegation (paper §6.5): a policy expression that
    /// enforcement points evaluate. The expression grammar lives in
    /// [`crate::validate::Restriction`]; here it is an opaque string.
    Restricted(String),
}

impl ProxyPolicy {
    /// The policy-language OID for this variant.
    pub fn language_oid(&self) -> Oid {
        match self {
            ProxyPolicy::InheritAll => known::ppl_inherit_all(),
            ProxyPolicy::Limited => known::ppl_limited(),
            ProxyPolicy::Independent => known::ppl_independent(),
            ProxyPolicy::Restricted(_) => known::ppl_restricted(),
        }
    }

    /// True if this proxy may impersonate the user for *new* work
    /// (GRAM's limited-proxy check keys off this).
    pub fn is_limited(&self) -> bool {
        matches!(self, ProxyPolicy::Limited)
    }
}

/// A decoded certificate extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extension {
    /// BasicConstraints: CA flag and optional path length.
    BasicConstraints {
        /// May this certificate sign other certificates?
        ca: bool,
        /// Maximum depth of CA certs below this one.
        path_len: Option<u64>,
    },
    /// KeyUsage bits.
    KeyUsage(KeyUsage),
    /// The GSI proxy-certificate extension. Its presence is what makes a
    /// certificate a proxy certificate.
    ProxyCertInfo {
        /// Maximum number of proxies that may be chained below this one.
        path_len: Option<u64>,
        /// Rights-inheritance policy.
        policy: ProxyPolicy,
    },
    /// Anything else, preserved verbatim.
    Unknown {
        /// Extension OID.
        oid: Oid,
        /// Criticality flag.
        critical: bool,
        /// Raw extnValue contents.
        data: Vec<u8>,
    },
}

impl Extension {
    /// The extension's OID.
    pub fn oid(&self) -> Oid {
        match self {
            Extension::BasicConstraints { .. } => known::basic_constraints(),
            Extension::KeyUsage(_) => known::key_usage(),
            Extension::ProxyCertInfo { .. } => known::proxy_cert_info(),
            Extension::Unknown { oid, .. } => oid.clone(),
        }
    }

    /// Criticality as emitted by the builder (RFC profiles: all three
    /// known extensions are critical).
    pub fn critical(&self) -> bool {
        match self {
            Extension::Unknown { critical, .. } => *critical,
            _ => true,
        }
    }

    /// Encode as the `Extension ::= SEQUENCE` element.
    pub fn encode(&self, enc: &mut Encoder) {
        let value = self.value_der();
        enc.sequence(|e| {
            e.oid(&self.oid());
            if self.critical() {
                e.boolean(true);
            }
            e.octet_string(&value);
        });
    }

    /// DER of the extnValue contents.
    fn value_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Extension::BasicConstraints { ca, path_len } => {
                enc.sequence(|s| {
                    if *ca {
                        s.boolean(true);
                    }
                    if let Some(n) = path_len {
                        s.uint_u64(*n);
                    }
                });
            }
            Extension::KeyUsage(ku) => {
                // BIT STRING with explicit unused-bit count for the 8-bit
                // usage byte; we emit 0 unused for simplicity.
                enc.bit_string(&[ku.to_bits()]);
            }
            Extension::ProxyCertInfo { path_len, policy } => {
                enc.sequence(|s| {
                    if let Some(n) = path_len {
                        s.uint_u64(*n);
                    }
                    s.sequence(|p| {
                        p.oid(&policy.language_oid());
                        if let ProxyPolicy::Restricted(expr) = policy {
                            p.octet_string(expr.as_bytes());
                        }
                    });
                });
            }
            Extension::Unknown { data, .. } => {
                return data.clone();
            }
        }
        enc.into_bytes()
    }

    /// Parse one `Extension` element.
    pub fn decode(dec: &mut Decoder) -> Result<Self, X509Error> {
        let mut ext = dec.sequence()?;
        let oid = ext.oid()?;
        let critical = if ext.peek_tag() == Some(Tag::BOOLEAN) {
            ext.boolean()?
        } else {
            false
        };
        let value = ext.octet_string()?;
        ext.finish()?;

        if oid == known::basic_constraints() {
            let mut v = Decoder::new(value);
            let mut s = v.sequence()?;
            let ca = if s.peek_tag() == Some(Tag::BOOLEAN) { s.boolean()? } else { false };
            let path_len = if !s.is_empty() { Some(s.uint_u64()?) } else { None };
            s.finish()?;
            v.finish()?;
            Ok(Extension::BasicConstraints { ca, path_len })
        } else if oid == known::key_usage() {
            let mut v = Decoder::new(value);
            let bits = v.bit_string()?;
            let b = bits.first().copied().unwrap_or(0);
            Ok(Extension::KeyUsage(KeyUsage::from_bits(b)))
        } else if oid == known::proxy_cert_info() {
            let mut v = Decoder::new(value);
            let mut s = v.sequence()?;
            let path_len = if s.peek_tag() == Some(Tag::INTEGER) {
                Some(s.uint_u64()?)
            } else {
                None
            };
            let mut pol = s.sequence()?;
            let lang = pol.oid()?;
            let policy = if lang == known::ppl_inherit_all() {
                ProxyPolicy::InheritAll
            } else if lang == known::ppl_limited() {
                ProxyPolicy::Limited
            } else if lang == known::ppl_independent() {
                ProxyPolicy::Independent
            } else if lang == known::ppl_restricted() {
                let expr = pol.octet_string()?;
                ProxyPolicy::Restricted(
                    String::from_utf8(expr.to_vec())
                        .map_err(|_| X509Error::Malformed("restricted policy not UTF-8"))?,
                )
            } else {
                return Err(X509Error::Malformed("unknown proxy policy language"));
            };
            pol.finish()?;
            s.finish()?;
            v.finish()?;
            Ok(Extension::ProxyCertInfo { path_len, policy })
        } else {
            Ok(Extension::Unknown { oid, critical, data: value.to_vec() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ext: &Extension) -> Extension {
        let mut enc = Encoder::new();
        ext.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Extension::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        back
    }

    #[test]
    fn basic_constraints_roundtrip() {
        for ext in [
            Extension::BasicConstraints { ca: true, path_len: Some(3) },
            Extension::BasicConstraints { ca: true, path_len: None },
            Extension::BasicConstraints { ca: false, path_len: None },
        ] {
            assert_eq!(roundtrip(&ext), ext);
        }
    }

    #[test]
    fn key_usage_roundtrip() {
        for ku in [KeyUsage::ca(), KeyUsage::end_entity()] {
            assert_eq!(roundtrip(&Extension::KeyUsage(ku)), Extension::KeyUsage(ku));
        }
    }

    #[test]
    fn proxy_cert_info_roundtrip_all_policies() {
        for policy in [
            ProxyPolicy::InheritAll,
            ProxyPolicy::Limited,
            ProxyPolicy::Independent,
            ProxyPolicy::Restricted("lifetime<=3600;targets=storage".into()),
        ] {
            let ext = Extension::ProxyCertInfo { path_len: Some(5), policy: policy.clone() };
            assert_eq!(roundtrip(&ext), ext);
            let ext = Extension::ProxyCertInfo { path_len: None, policy };
            assert_eq!(roundtrip(&ext), ext);
        }
    }

    #[test]
    fn unknown_extension_preserved() {
        let ext = Extension::Unknown {
            oid: Oid::new(&[1, 2, 3, 4]),
            critical: false,
            data: vec![1, 2, 3],
        };
        assert_eq!(roundtrip(&ext), ext);
    }

    #[test]
    fn limited_flag() {
        assert!(ProxyPolicy::Limited.is_limited());
        assert!(!ProxyPolicy::InheritAll.is_limited());
        assert!(!ProxyPolicy::Restricted("x".into()).is_limited());
    }
}
