//! Shared test/bench fixtures.
//!
//! RSA key generation dominates test runtime, so the whole workspace
//! draws deterministic 512-bit keys from this lazily-filled pool instead
//! of generating per test. Not for production use — real deployments
//! generate fresh keys from OS entropy (see `mp_crypto::HmacDrbg`).

use mp_crypto::rsa::RsaPrivateKey;
use mp_crypto::HmacDrbg;
use std::sync::OnceLock;

const POOL_SIZE: usize = 24;

/// Deterministic 512-bit RSA key number `i` (i < 24). The same index
/// always returns the same key, across crates and test binaries.
pub fn test_rsa_key(i: usize) -> &'static RsaPrivateKey {
    static POOL: OnceLock<Vec<OnceLock<RsaPrivateKey>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| (0..POOL_SIZE).map(|_| OnceLock::new()).collect());
    pool[i].get_or_init(|| {
        let mut drbg = HmacDrbg::new(format!("mp-x509 test key pool entry {i}").as_bytes());
        RsaPrivateKey::generate(&mut drbg, 512)
    })
}

/// A deterministic DRBG for tests that need randomness but reproducible
/// failures.
pub fn test_drbg(label: &str) -> HmacDrbg {
    HmacDrbg::new(format!("mp-x509 test drbg: {label}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_deterministic_and_distinct() {
        assert_eq!(test_rsa_key(0).public_key(), test_rsa_key(0).public_key());
        assert_ne!(test_rsa_key(0).public_key(), test_rsa_key(1).public_key());
    }
}
