//! Certificate construction: a general builder plus the CA convenience
//! wrapper used throughout tests, examples and benches.

use crate::cert::{encode_tbs, Certificate};
use crate::ext::{Extension, KeyUsage, ProxyPolicy};
use crate::name::Dn;
use crate::X509Error;
use mp_bignum::BigUint;
use mp_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use rand::Rng;

/// Fluent builder for X.509 v3 certificates.
pub struct CertBuilder {
    serial: BigUint,
    issuer: Dn,
    subject: Dn,
    not_before: u64,
    not_after: u64,
    extensions: Vec<Extension>,
}

impl CertBuilder {
    /// Start a certificate for `subject` valid `[not_before, not_after]`.
    pub fn new(subject: Dn, not_before: u64, not_after: u64) -> Self {
        CertBuilder {
            serial: BigUint::from_u64(1),
            issuer: Dn::new(),
            subject,
            not_before,
            not_after,
            extensions: Vec::new(),
        }
    }

    /// Random 63-bit serial number.
    pub fn random_serial<R: Rng + ?Sized>(mut self, rng: &mut R) -> Self {
        self.serial = BigUint::from_u64(rng.gen::<u64>() >> 1 | 1);
        self
    }

    /// Explicit serial.
    pub fn serial(mut self, serial: BigUint) -> Self {
        self.serial = serial;
        self
    }

    /// Add an extension.
    pub fn extension(mut self, ext: Extension) -> Self {
        self.extensions.push(ext);
        self
    }

    /// Mark as a CA certificate with optional path length.
    pub fn ca(self, path_len: Option<u64>) -> Self {
        self.extension(Extension::BasicConstraints { ca: true, path_len })
            .extension(Extension::KeyUsage(KeyUsage::ca()))
    }

    /// Mark as an end-entity certificate.
    pub fn end_entity(self) -> Self {
        self.extension(Extension::BasicConstraints { ca: false, path_len: None })
            .extension(Extension::KeyUsage(KeyUsage::end_entity()))
    }

    /// Mark as a GSI proxy certificate with the given policy.
    pub fn proxy(self, policy: ProxyPolicy, path_len: Option<u64>) -> Self {
        self.extension(Extension::ProxyCertInfo { path_len, policy })
            .extension(Extension::KeyUsage(KeyUsage::end_entity()))
    }

    /// Sign with `issuer_key` on behalf of `issuer_dn`, binding
    /// `subject_key` into the certificate.
    pub fn sign(
        mut self,
        issuer_dn: &Dn,
        issuer_key: &RsaPrivateKey,
        subject_key: &RsaPublicKey,
    ) -> Result<Certificate, X509Error> {
        self.issuer = issuer_dn.clone();
        let tbs = encode_tbs(
            &self.serial,
            &self.issuer,
            self.not_before,
            self.not_after,
            &self.subject,
            subject_key,
            &self.extensions,
        );
        let sig = issuer_key
            .sign(&tbs)
            .map_err(|_| X509Error::Malformed("issuer key too small to sign"))?;
        Certificate::assemble(tbs, sig)
    }
}

/// A certificate authority: a self-signed root plus issuance helpers
/// (the trusted third party of paper §2.1).
pub struct CertificateAuthority {
    dn: Dn,
    key: RsaPrivateKey,
    cert: Certificate,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Create a self-signed root CA.
    pub fn new_root(
        dn: Dn,
        key: RsaPrivateKey,
        not_before: u64,
        not_after: u64,
    ) -> Result<Self, X509Error> {
        let cert = CertBuilder::new(dn.clone(), not_before, not_after)
            .serial(BigUint::from_u64(1))
            .ca(None)
            .sign(&dn, &key, key.public_key())?;
        Ok(CertificateAuthority { dn, key, cert, next_serial: 2 })
    }

    /// The CA's self-signed certificate (a trust root).
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// The CA's DN.
    pub fn dn(&self) -> &Dn {
        &self.dn
    }

    /// The CA's private key — needed to build CRLs.
    pub fn key(&self) -> &RsaPrivateKey {
        &self.key
    }

    /// Issue an end-entity certificate for `subject`.
    pub fn issue_end_entity(
        &mut self,
        subject: &Dn,
        subject_key: &RsaPublicKey,
        not_before: u64,
        not_after: u64,
    ) -> Result<Certificate, X509Error> {
        let serial = self.bump_serial();
        CertBuilder::new(subject.clone(), not_before, not_after)
            .serial(serial)
            .end_entity()
            .sign(&self.dn, &self.key, subject_key)
    }

    /// Issue an intermediate CA certificate.
    pub fn issue_intermediate(
        &mut self,
        subject: &Dn,
        subject_key: &RsaPublicKey,
        not_before: u64,
        not_after: u64,
        path_len: Option<u64>,
    ) -> Result<Certificate, X509Error> {
        let serial = self.bump_serial();
        CertBuilder::new(subject.clone(), not_before, not_after)
            .serial(serial)
            .ca(path_len)
            .sign(&self.dn, &self.key, subject_key)
    }

    fn bump_serial(&mut self) -> BigUint {
        let s = BigUint::from_u64(self.next_serial);
        self.next_serial += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::test_rsa_key;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=Globus CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            10_000_000,
        )
        .unwrap()
    }

    #[test]
    fn root_is_self_signed_ca() {
        let ca = ca();
        let cert = ca.certificate();
        assert_eq!(cert.subject(), cert.issuer());
        assert!(cert.is_ca());
        assert!(cert.verify_signature(test_rsa_key(0).public_key()));
    }

    #[test]
    fn issued_end_entity_verifies_under_ca() {
        let mut ca = ca();
        let user_key = test_rsa_key(1);
        let dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        let cert = ca.issue_end_entity(&dn, user_key.public_key(), 0, 1000).unwrap();
        assert!(cert.verify_signature(ca.certificate().public_key()));
        assert!(!cert.is_ca());
        assert!(!cert.is_proxy());
        assert_eq!(cert.subject(), &dn);
    }

    #[test]
    fn serials_are_unique() {
        let mut ca = ca();
        let dn = Dn::parse("/O=Grid/CN=x").unwrap();
        let c1 = ca.issue_end_entity(&dn, test_rsa_key(1).public_key(), 0, 10).unwrap();
        let c2 = ca.issue_end_entity(&dn, test_rsa_key(1).public_key(), 0, 10).unwrap();
        assert_ne!(c1.serial(), c2.serial());
    }

    #[test]
    fn proxy_builder_emits_proxy_cert_info() {
        let user_key = test_rsa_key(1);
        let proxy_key = test_rsa_key(2);
        let user_dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        let proxy = CertBuilder::new(user_dn.with_cn("proxy"), 0, 100)
            .proxy(ProxyPolicy::Limited, Some(3))
            .sign(&user_dn, user_key, proxy_key.public_key())
            .unwrap();
        let (policy, path_len) = proxy.proxy_info().unwrap();
        assert_eq!(policy, &ProxyPolicy::Limited);
        assert_eq!(path_len, Some(3));
        assert!(proxy.is_proxy());
        assert!(proxy.verify_signature(user_key.public_key()));
    }

    #[test]
    fn intermediate_ca_chain() {
        let mut root = ca();
        let inter_key = test_rsa_key(3);
        let inter_dn = Dn::parse("/O=Grid/OU=Sub/CN=Intermediate CA").unwrap();
        let inter = root
            .issue_intermediate(&inter_dn, inter_key.public_key(), 0, 1000, Some(0))
            .unwrap();
        assert!(inter.is_ca());
        assert_eq!(inter.ca_path_len(), Some(0));
        assert!(inter.verify_signature(root.certificate().public_key()));
    }
}
