//! X.509 certificates with the GSI proxy-certificate profile.
//!
//! This crate is the PKI substrate of the MyProxy reproduction (paper
//! §2.1, §2.3): distinguished names, v3 certificates, a certificate
//! authority and builder, certification requests (for delegation), the
//! proxy-certificate profile (impersonation / limited / restricted
//! proxies, per the drafts cited as \[15\] and \[16\] in the paper, which
//! became RFC 3820), full chain validation including proxy chains, CRLs,
//! and PEM armor.
//!
//! Time is `u64` unix seconds throughout, injected via [`time::Clock`]
//! so tests and benches can advance a simulated clock to expire
//! credentials deterministically.

pub mod builder;
pub mod cert;
pub mod crl;
pub mod csr;
pub mod ext;
pub mod keys;
pub mod name;
pub mod pem;
pub mod test_util;
pub mod time;
pub mod validate;

pub use builder::{CertBuilder, CertificateAuthority};
pub use cert::Certificate;
pub use crl::CertRevocationList;
pub use csr::CertRequest;
pub use ext::{Extension, KeyUsage, ProxyPolicy};
pub use name::{Dn, RdnType};
pub use time::{Clock, SimClock, SystemClock};
pub use validate::{validate_chain, ChainError, ValidatedChain, ValidationOptions};

/// Errors shared by the parsing/encoding layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum X509Error {
    /// Underlying DER problem.
    Der(mp_asn1::DecodeError),
    /// Structure parsed but violates X.509 rules.
    Malformed(&'static str),
    /// PEM armor problem.
    Pem(&'static str),
}

impl From<mp_asn1::DecodeError> for X509Error {
    fn from(e: mp_asn1::DecodeError) -> Self {
        X509Error::Der(e)
    }
}

impl std::fmt::Display for X509Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            X509Error::Der(e) => write!(f, "DER error: {e}"),
            X509Error::Malformed(what) => write!(f, "malformed X.509 structure: {what}"),
            X509Error::Pem(what) => write!(f, "PEM error: {what}"),
        }
    }
}

impl std::error::Error for X509Error {}
