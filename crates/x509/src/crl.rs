//! Certificate revocation lists.
//!
//! The paper's §2.1 notes a stolen long-term credential is dangerous
//! "until the theft was discovered and the certificate revoked by the
//! CA" — CRLs are that revocation mechanism. A trimmed X.509 v2 CRL:
//! issuer, thisUpdate/nextUpdate, revoked serial numbers, signature.

use crate::name::Dn;
use crate::X509Error;
use mp_asn1::{oid::known, Decoder, Encoder, Tag};
use mp_bignum::BigUint;
use mp_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use std::collections::BTreeSet;

/// A signed revocation list.
#[derive(Clone, PartialEq, Eq)]
pub struct CertRevocationList {
    der: Vec<u8>,
    tbs_der: Vec<u8>,
    issuer: Dn,
    this_update: u64,
    next_update: u64,
    revoked: BTreeSet<Vec<u8>>, // big-endian serial bytes, ordered
    signature: Vec<u8>,
}

impl CertRevocationList {
    /// Build and sign a CRL over `revoked_serials`.
    pub fn create(
        issuer: &Dn,
        issuer_key: &RsaPrivateKey,
        this_update: u64,
        next_update: u64,
        revoked_serials: &[BigUint],
        revocation_time: u64,
    ) -> Result<Self, X509Error> {
        let mut tbs = Encoder::new();
        tbs.sequence(|t| {
            t.uint_u64(1); // v2
            t.sequence(|alg| {
                alg.oid(&known::sha256_with_rsa());
                alg.null();
            });
            issuer.encode(t);
            t.generalized_time(this_update);
            t.generalized_time(next_update);
            if !revoked_serials.is_empty() {
                t.sequence(|list| {
                    for serial in revoked_serials {
                        list.sequence(|entry| {
                            entry.uint(serial);
                            entry.generalized_time(revocation_time);
                        });
                    }
                });
            }
        });
        let tbs_der = tbs.into_bytes();
        let signature = issuer_key
            .sign(&tbs_der)
            .map_err(|_| X509Error::Malformed("key too small to sign CRL"))?;
        let mut enc = Encoder::new();
        enc.sequence(|c| {
            c.raw(&tbs_der);
            c.sequence(|alg| {
                alg.oid(&known::sha256_with_rsa());
                alg.null();
            });
            c.bit_string(&signature);
        });
        Self::from_der(&enc.into_bytes())
    }

    /// Parse from DER.
    pub fn from_der(der: &[u8]) -> Result<Self, X509Error> {
        let mut outer = Decoder::new(der);
        let mut crl = outer.sequence()?;
        outer.finish()?;

        let mut probe = crl.clone();
        let (tag, tbs_raw) = probe.any_raw()?;
        if tag != Tag::SEQUENCE {
            return Err(X509Error::Malformed("tbsCertList not a SEQUENCE"));
        }
        let tbs_der = tbs_raw.to_vec();

        let mut tbs = crl.sequence()?;
        let version = tbs.uint_u64()?;
        if version != 1 {
            return Err(X509Error::Malformed("unsupported CRL version"));
        }
        let mut alg = tbs.sequence()?;
        if alg.oid()? != known::sha256_with_rsa() {
            return Err(X509Error::Malformed("unsupported CRL signature algorithm"));
        }
        alg.null()?;
        alg.finish()?;
        let issuer = Dn::decode(&mut tbs)?;
        let this_update = tbs.time()?;
        let next_update = tbs.time()?;
        let mut revoked = BTreeSet::new();
        if tbs.peek_tag() == Some(Tag::SEQUENCE) {
            let mut list = tbs.sequence()?;
            while !list.is_empty() {
                let mut entry = list.sequence()?;
                let serial = entry.uint()?;
                let _when = entry.time()?;
                entry.finish()?;
                revoked.insert(serial.to_be_bytes());
            }
        }
        tbs.finish()?;

        let mut alg = crl.sequence()?;
        if alg.oid()? != known::sha256_with_rsa() {
            return Err(X509Error::Malformed("CRL signature algorithm mismatch"));
        }
        alg.null()?;
        alg.finish()?;
        let signature = crl.bit_string()?.to_vec();
        crl.finish()?;

        Ok(CertRevocationList { der: der.to_vec(), tbs_der, issuer, this_update, next_update, revoked, signature })
    }

    /// DER bytes.
    pub fn to_der(&self) -> &[u8] {
        &self.der
    }

    /// Issuing DN.
    pub fn issuer(&self) -> &Dn {
        &self.issuer
    }

    /// When this list was issued.
    pub fn this_update(&self) -> u64 {
        self.this_update
    }

    /// When the next list is promised.
    pub fn next_update(&self) -> u64 {
        self.next_update
    }

    /// Is `serial` on the list?
    pub fn is_revoked(&self, serial: &BigUint) -> bool {
        self.revoked.contains(&serial.to_be_bytes())
    }

    /// Number of revoked entries.
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// True when no serials are revoked.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }

    /// Verify the CRL's signature under `issuer_key`.
    pub fn verify_signature(&self, issuer_key: &RsaPublicKey) -> bool {
        issuer_key.verify(&self.tbs_der, &self.signature).is_ok()
    }
}

impl std::fmt::Debug for CertRevocationList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CertRevocationList(issuer={}, revoked={})", self.issuer, self.revoked.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::test_rsa_key;

    fn dn() -> Dn {
        Dn::parse("/O=Grid/CN=CA").unwrap()
    }

    #[test]
    fn create_parse_check() {
        let key = test_rsa_key(0);
        let crl = CertRevocationList::create(
            &dn(),
            key,
            1000,
            2000,
            &[BigUint::from_u64(5), BigUint::from_u64(9)],
            1500,
        )
        .unwrap();
        assert!(crl.is_revoked(&BigUint::from_u64(5)));
        assert!(crl.is_revoked(&BigUint::from_u64(9)));
        assert!(!crl.is_revoked(&BigUint::from_u64(6)));
        assert_eq!(crl.len(), 2);
        assert!(crl.verify_signature(key.public_key()));
        assert!(!crl.verify_signature(test_rsa_key(1).public_key()));

        let reparsed = CertRevocationList::from_der(crl.to_der()).unwrap();
        assert_eq!(reparsed, crl);
    }

    #[test]
    fn empty_crl_roundtrip() {
        let key = test_rsa_key(0);
        let crl = CertRevocationList::create(&dn(), key, 1000, 2000, &[], 0).unwrap();
        assert!(crl.is_empty());
        let reparsed = CertRevocationList::from_der(crl.to_der()).unwrap();
        assert!(!reparsed.is_revoked(&BigUint::from_u64(1)));
    }

    #[test]
    fn validation_honors_crl() {
        use crate::builder::CertificateAuthority;
        use crate::validate::{validate_chain, ChainError, ValidationOptions};
        let mut ca = CertificateAuthority::new_root(dn(), test_rsa_key(0).clone(), 0, 1_000_000)
            .unwrap();
        let user_key = test_rsa_key(1);
        let user_dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        let cert = ca.issue_end_entity(&user_dn, user_key.public_key(), 0, 500_000).unwrap();

        let crl = CertRevocationList::create(
            ca.dn(),
            ca.key(),
            0,
            1_000_000,
            &[cert.serial().clone()],
            10,
        )
        .unwrap();
        let roots = [ca.certificate().clone()];
        let opts = ValidationOptions { crls: vec![crl], ..Default::default() };
        let err = validate_chain(&[cert.clone()], &roots, 100, &opts).unwrap_err();
        assert!(matches!(err, ChainError::Revoked { index: 0, .. }));

        // A CRL forged by someone else must NOT revoke.
        let forged = CertRevocationList::create(
            ca.dn(),
            test_rsa_key(2), // not the CA key
            0,
            1_000_000,
            &[cert.serial().clone()],
            10,
        )
        .unwrap();
        let opts = ValidationOptions { crls: vec![forged], ..Default::default() };
        assert!(validate_chain(&[cert], &roots, 100, &opts).is_ok());
    }
}
