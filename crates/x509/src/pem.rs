//! PEM armor: the on-disk format of Grid credentials (paper §3.2 — "Grid
//! credentials are typically stored as files on a file system").

use crate::X509Error;
use mp_crypto::base64;

/// One PEM block: a label and its decoded bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PemBlock {
    /// The label, e.g. `CERTIFICATE` or `RSA PRIVATE KEY`.
    pub label: String,
    /// The DER payload.
    pub data: Vec<u8>,
}

/// Standard labels used in this workspace.
pub mod label {
    /// An X.509 certificate.
    pub const CERTIFICATE: &str = "CERTIFICATE";
    /// A PKCS#1 RSA private key.
    pub const RSA_PRIVATE_KEY: &str = "RSA PRIVATE KEY";
    /// A certification request.
    pub const CERTIFICATE_REQUEST: &str = "CERTIFICATE REQUEST";
    /// A certificate revocation list.
    pub const X509_CRL: &str = "X509 CRL";
}

/// Encode one block, wrapping base64 at 64 columns.
pub fn encode(label: &str, data: &[u8]) -> String {
    let b64 = base64::encode(data);
    let mut out = String::with_capacity(b64.len() + label.len() * 2 + 64);
    out.push_str("-----BEGIN ");
    out.push_str(label);
    out.push_str("-----\n");
    for chunk in b64.as_bytes().chunks(64) {
        out.push_str(std::str::from_utf8(chunk).unwrap());
        out.push('\n');
    }
    out.push_str("-----END ");
    out.push_str(label);
    out.push_str("-----\n");
    out
}

/// Parse every PEM block in `text`, in order. Text outside blocks is
/// ignored (matching OpenSSL's tolerance for header comments).
pub fn decode_all(text: &str) -> Result<Vec<PemBlock>, X509Error> {
    let mut blocks = Vec::new();
    let mut label: Option<String> = None;
    let mut body = String::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("-----BEGIN ") {
            if label.is_some() {
                return Err(X509Error::Pem("nested BEGIN"));
            }
            let l = rest.strip_suffix("-----").ok_or(X509Error::Pem("malformed BEGIN"))?;
            label = Some(l.to_string());
            body.clear();
        } else if let Some(rest) = line.strip_prefix("-----END ") {
            let l = rest.strip_suffix("-----").ok_or(X509Error::Pem("malformed END"))?;
            let open = label.take().ok_or(X509Error::Pem("END without BEGIN"))?;
            if open != l {
                return Err(X509Error::Pem("mismatched BEGIN/END labels"));
            }
            let data = base64::decode(&body).ok_or(X509Error::Pem("invalid base64"))?;
            blocks.push(PemBlock { label: open, data });
        } else if label.is_some() {
            body.push_str(line);
        }
    }
    if label.is_some() {
        return Err(X509Error::Pem("unterminated PEM block"));
    }
    Ok(blocks)
}

/// Parse the first block with the given label.
pub fn decode_one(text: &str, want_label: &str) -> Result<Vec<u8>, X509Error> {
    decode_all(text)?
        .into_iter()
        .find(|b| b.label == want_label)
        .map(|b| b.data)
        .ok_or(X509Error::Pem("no block with requested label"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_block() {
        let data = (0u8..=255).collect::<Vec<_>>();
        let pem = encode(label::CERTIFICATE, &data);
        assert!(pem.starts_with("-----BEGIN CERTIFICATE-----\n"));
        assert!(pem.ends_with("-----END CERTIFICATE-----\n"));
        let blocks = decode_all(&pem).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].label, "CERTIFICATE");
        assert_eq!(blocks[0].data, data);
    }

    #[test]
    fn multiple_blocks_preserve_order() {
        // A proxy credential file: cert, key, then the chain (the Globus
        // on-disk layout).
        let mut text = encode(label::CERTIFICATE, b"proxy-cert");
        text.push_str(&encode(label::RSA_PRIVATE_KEY, b"proxy-key"));
        text.push_str(&encode(label::CERTIFICATE, b"user-cert"));
        let blocks = decode_all(&text).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].data, b"proxy-cert");
        assert_eq!(blocks[1].label, "RSA PRIVATE KEY");
        assert_eq!(blocks[2].data, b"user-cert");
    }

    #[test]
    fn surrounding_text_ignored() {
        let pem = format!("subject=/CN=alice\n{}", encode(label::CERTIFICATE, b"x"));
        assert_eq!(decode_all(&pem).unwrap().len(), 1);
    }

    #[test]
    fn errors_detected() {
        assert!(decode_all("-----BEGIN CERTIFICATE-----\nAAAA").is_err());
        assert!(decode_all("-----END CERTIFICATE-----").is_err());
        let mismatched = "-----BEGIN CERTIFICATE-----\nAAAA\n-----END X509 CRL-----\n";
        assert!(decode_all(mismatched).is_err());
        let bad_b64 = "-----BEGIN CERTIFICATE-----\n!!!!\n-----END CERTIFICATE-----\n";
        assert!(decode_all(bad_b64).is_err());
    }

    #[test]
    fn decode_one_by_label() {
        let mut text = encode(label::CERTIFICATE, b"cert");
        text.push_str(&encode(label::RSA_PRIVATE_KEY, b"key"));
        assert_eq!(decode_one(&text, label::RSA_PRIVATE_KEY).unwrap(), b"key");
        assert!(decode_one(&text, label::X509_CRL).is_err());
    }
}
