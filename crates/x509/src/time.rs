//! Clock abstraction: unix seconds, real or simulated.
//!
//! Credential lifetime is the paper's main defense-in-depth mechanism
//! (§2.1, §2.3, §4.1, §4.3): stolen proxies are only useful until they
//! expire. Every expiry decision in the workspace reads one of these
//! clocks, so tests can advance time instead of sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A source of "now" in unix seconds.
pub trait Clock: Send + Sync {
    /// Current time, seconds since the unix epoch.
    fn now(&self) -> u64;
}

/// The real system clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("system clock before unix epoch")
            .as_secs()
    }
}

/// A shared, manually-advanced clock for deterministic tests.
#[derive(Clone, Debug)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// Start the simulated clock at `start` unix seconds.
    pub fn new(start: u64) -> Self {
        SimClock { now: Arc::new(AtomicU64::new(start)) }
    }

    /// Advance by `secs`. All clones observe the change.
    pub fn advance(&self, secs: u64) {
        self.now.fetch_add(secs, Ordering::SeqCst);
    }

    /// Jump to an absolute time.
    pub fn set(&self, t: u64) {
        self.now.store(t, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// 2001-08-06 00:00:00 UTC — the HPDC-10 conference week; a convenient
/// deterministic "present" for tests and examples.
pub const HPDC_2001: u64 = 997_056_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_and_shares_state() {
        let c = SimClock::new(100);
        let c2 = c.clone();
        assert_eq!(c.now(), 100);
        c.advance(50);
        assert_eq!(c2.now(), 150);
        c2.set(1000);
        assert_eq!(c.now(), 1000);
    }

    #[test]
    fn system_clock_is_post_2020() {
        assert!(SystemClock.now() > 1_577_836_800);
    }

    #[test]
    fn clock_trait_object_usable() {
        let c: Arc<dyn Clock> = Arc::new(SimClock::new(HPDC_2001));
        assert_eq!(c.now(), HPDC_2001);
    }
}
