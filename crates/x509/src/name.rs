//! X.500 distinguished names.
//!
//! In the GSI every entity is identified by a globally unique DN
//! (paper §2.1), conventionally rendered in the OpenSSL one-line form
//! the Globus gridmap file uses: `/O=Grid/OU=ANL/CN=Jason Novotny`.

use crate::X509Error;
use mp_asn1::{oid::known, Decoder, Encoder, Oid, Tag};

/// Attribute types we understand by name; anything else is carried as a
/// raw OID so unknown RDNs survive a parse/encode round trip.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RdnType {
    /// CN
    CommonName,
    /// O
    Organization,
    /// OU
    OrganizationalUnit,
    /// C
    Country,
    /// Any other attribute type.
    Other(Oid),
}

impl RdnType {
    /// The attribute OID.
    pub fn oid(&self) -> Oid {
        match self {
            RdnType::CommonName => known::common_name(),
            RdnType::Organization => known::organization(),
            RdnType::OrganizationalUnit => known::organizational_unit(),
            RdnType::Country => known::country(),
            RdnType::Other(oid) => oid.clone(),
        }
    }

    /// From an OID.
    pub fn from_oid(oid: Oid) -> Self {
        if oid == known::common_name() {
            RdnType::CommonName
        } else if oid == known::organization() {
            RdnType::Organization
        } else if oid == known::organizational_unit() {
            RdnType::OrganizationalUnit
        } else if oid == known::country() {
            RdnType::Country
        } else {
            RdnType::Other(oid)
        }
    }

    /// Short label used in the one-line rendering.
    pub fn label(&self) -> String {
        match self {
            RdnType::CommonName => "CN".into(),
            RdnType::Organization => "O".into(),
            RdnType::OrganizationalUnit => "OU".into(),
            RdnType::Country => "C".into(),
            RdnType::Other(oid) => oid.to_string_dotted(),
        }
    }

    fn from_label(label: &str) -> Option<Self> {
        match label {
            "CN" => Some(RdnType::CommonName),
            "O" => Some(RdnType::Organization),
            "OU" => Some(RdnType::OrganizationalUnit),
            "C" => Some(RdnType::Country),
            _ => None,
        }
    }
}

/// A distinguished name: an ordered list of single-valued RDNs.
///
/// ```
/// use mp_x509::Dn;
/// let user = Dn::parse("/O=Grid/OU=ANL/CN=Jason Novotny").unwrap();
/// let proxy = user.with_cn("proxy");
/// assert!(proxy.is_proxy_subject_of(&user));
/// assert_eq!(proxy.to_string(), "/O=Grid/OU=ANL/CN=Jason Novotny/CN=proxy");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Dn {
    rdns: Vec<(RdnType, String)>,
}

impl Dn {
    /// Empty DN (only useful as a builder start).
    pub fn new() -> Self {
        Dn::default()
    }

    /// Parse the OpenSSL one-line form: `/O=Grid/OU=ANL/CN=Alice`.
    pub fn parse(s: &str) -> Result<Self, X509Error> {
        if !s.starts_with('/') {
            return Err(X509Error::Malformed("DN must start with '/'"));
        }
        let mut rdns = Vec::new();
        for part in s[1..].split('/') {
            if part.is_empty() {
                continue;
            }
            let (label, value) = part
                .split_once('=')
                .ok_or(X509Error::Malformed("RDN missing '='"))?;
            let ty = RdnType::from_label(label)
                .ok_or(X509Error::Malformed("unknown RDN label"))?;
            if value.is_empty() {
                return Err(X509Error::Malformed("empty RDN value"));
            }
            rdns.push((ty, value.to_string()));
        }
        if rdns.is_empty() {
            return Err(X509Error::Malformed("empty DN"));
        }
        Ok(Dn { rdns })
    }

    /// Append an RDN (builder style).
    pub fn with(mut self, ty: RdnType, value: impl Into<String>) -> Self {
        self.rdns.push((ty, value.into()));
        self
    }

    /// A copy with one extra CN component — exactly how a proxy
    /// certificate's subject is derived from its issuer (paper §2.3:
    /// "a short-term binding of the user's DN to an alternate private
    /// key"; RFC 3820 requires issuer-DN + CN).
    pub fn with_cn(&self, cn: &str) -> Dn {
        let mut d = self.clone();
        d.rdns.push((RdnType::CommonName, cn.to_string()));
        d
    }

    /// The RDN list.
    pub fn rdns(&self) -> &[(RdnType, String)] {
        &self.rdns
    }

    /// Number of RDNs.
    pub fn len(&self) -> usize {
        self.rdns.len()
    }

    /// True for the empty DN.
    pub fn is_empty(&self) -> bool {
        self.rdns.is_empty()
    }

    /// The last CN value, if any (proxy CN or the user's name).
    pub fn last_cn(&self) -> Option<&str> {
        self.rdns
            .iter()
            .rev()
            .find(|(t, _)| *t == RdnType::CommonName)
            .map(|(_, v)| v.as_str())
    }

    /// True iff `self` is exactly `parent` plus one trailing CN — the
    /// proxy-subject rule.
    pub fn is_proxy_subject_of(&self, parent: &Dn) -> bool {
        self.rdns.len() == parent.rdns.len() + 1
            && self.rdns[..parent.rdns.len()] == parent.rdns[..]
            && self.rdns.last().map(|(t, _)| t) == Some(&RdnType::CommonName)
    }

    /// DER-encode as an X.501 `Name`.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|name| {
            for (ty, value) in &self.rdns {
                name.set(|set| {
                    set.sequence(|atv| {
                        atv.oid(&ty.oid());
                        atv.utf8_string(value);
                    });
                });
            }
        });
    }

    /// DER bytes of the `Name`.
    pub fn to_der(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Parse a `Name` from a decoder positioned at its SEQUENCE.
    pub fn decode(dec: &mut Decoder) -> Result<Self, X509Error> {
        let mut name = dec.sequence()?;
        let mut rdns = Vec::new();
        while !name.is_empty() {
            let mut set = name.set()?;
            let mut atv = set.sequence()?;
            let oid = atv.oid()?;
            // Accept any of the standard string types.
            let value = {
                let (tag, content) = atv.any()?;
                if ![Tag::UTF8_STRING, Tag::PRINTABLE_STRING, Tag::IA5_STRING].contains(&tag) {
                    return Err(X509Error::Malformed("unsupported RDN string type"));
                }
                String::from_utf8(content.to_vec())
                    .map_err(|_| X509Error::Malformed("RDN not UTF-8"))?
            };
            atv.finish()?;
            set.finish()?;
            rdns.push((RdnType::from_oid(oid), value));
        }
        Ok(Dn { rdns })
    }
}

impl std::fmt::Display for Dn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (ty, value) in &self.rdns {
            write!(f, "/{}={}", ty.label(), value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_dn() -> Dn {
        Dn::parse("/O=Grid/OU=ANL/CN=Jason Novotny").unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let dn = grid_dn();
        assert_eq!(dn.to_string(), "/O=Grid/OU=ANL/CN=Jason Novotny");
        assert_eq!(dn.len(), 3);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Dn::parse("O=Grid").is_err());
        assert!(Dn::parse("/O=Grid/CN").is_err());
        assert!(Dn::parse("/").is_err());
        assert!(Dn::parse("/X=foo").is_err());
        assert!(Dn::parse("/CN=").is_err());
    }

    #[test]
    fn der_roundtrip() {
        let dn = grid_dn();
        let der = dn.to_der();
        let mut dec = Decoder::new(&der);
        let back = Dn::decode(&mut dec).unwrap();
        assert_eq!(back, dn);
        dec.finish().unwrap();
    }

    #[test]
    fn with_cn_builds_proxy_subject() {
        let user = grid_dn();
        let proxy = user.with_cn("proxy");
        assert_eq!(proxy.to_string(), "/O=Grid/OU=ANL/CN=Jason Novotny/CN=proxy");
        assert!(proxy.is_proxy_subject_of(&user));
        assert!(!user.is_proxy_subject_of(&proxy));
        // Two levels deep.
        let proxy2 = proxy.with_cn("proxy");
        assert!(proxy2.is_proxy_subject_of(&proxy));
        assert!(!proxy2.is_proxy_subject_of(&user));
    }

    #[test]
    fn is_proxy_subject_rejects_divergent_prefix() {
        let a = Dn::parse("/O=Grid/CN=alice").unwrap();
        let mallory = Dn::parse("/O=Grid/CN=mallory/CN=proxy").unwrap();
        assert!(!mallory.is_proxy_subject_of(&a));
    }

    #[test]
    fn is_proxy_subject_requires_cn_tail() {
        let a = Dn::parse("/O=Grid/CN=alice").unwrap();
        let weird = Dn::parse("/O=Grid/CN=alice/OU=proxy").unwrap();
        assert!(!weird.is_proxy_subject_of(&a));
    }

    #[test]
    fn last_cn_finds_rightmost() {
        let proxy = grid_dn().with_cn("proxy");
        assert_eq!(proxy.last_cn(), Some("proxy"));
        let no_cn = Dn::parse("/O=Grid").unwrap();
        assert_eq!(no_cn.last_cn(), None);
    }

    #[test]
    fn builder_style() {
        let dn = Dn::new()
            .with(RdnType::Organization, "Grid")
            .with(RdnType::CommonName, "portal.ncsa.edu");
        assert_eq!(dn.to_string(), "/O=Grid/CN=portal.ncsa.edu");
    }
}
