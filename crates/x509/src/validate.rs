//! Certificate-chain validation with the GSI proxy-certificate rules.
//!
//! A GSI chain, leaf first, looks like:
//!
//! ```text
//! [proxy_n] ... [proxy_1] [end-entity] [intermediate CA]* → trust root
//! ```
//!
//! Proxies (paper §2.3/§2.4) are certificates whose *issuer is the user,
//! not a CA*: each is signed by the key of the certificate above it, its
//! subject is the issuer's subject plus one CN component, and the
//! *effective identity* of the whole chain is the end-entity DN — which
//! is exactly why a delegated proxy lets a portal "act as the user".

use crate::cert::Certificate;
use crate::crl::CertRevocationList;
use crate::ext::{Extension, ProxyPolicy};
use crate::name::Dn;
use mp_bignum::BigUint;
use mp_crypto::rsa::RsaPublicKey;

/// Why a chain was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// No certificates supplied.
    Empty,
    /// Longer than [`ValidationOptions::max_chain_len`].
    TooLong,
    /// Certificate `index` is outside its validity window at `now`.
    TimeInvalid { index: usize, now: u64 },
    /// Certificate `index`'s signature did not verify under its issuer.
    BadSignature { index: usize },
    /// Certificate `index`'s issuer DN does not match the next subject.
    IssuerMismatch { index: usize },
    /// The chain does not terminate at any supplied trust root.
    UntrustedRoot,
    /// A proxy was issued by a CA certificate (forbidden: proxies are
    /// issued by end entities or other proxies).
    ProxyIssuedByCa { index: usize },
    /// A non-proxy certificate appears below a proxy in the chain.
    EntityBelowProxy { index: usize },
    /// Proxy subject is not issuer-subject + one CN.
    ProxySubjectMismatch { index: usize },
    /// More proxies below a proxy than its pCPathLenConstraint allows.
    ProxyPathLenExceeded { index: usize },
    /// An issuing certificate is not a CA.
    NotCa { index: usize },
    /// A CA's BasicConstraints path length was exceeded.
    CaPathLenExceeded { index: usize },
    /// KeyUsage forbids what the certificate is doing in this chain.
    KeyUsageViolation { index: usize },
    /// Certificate `index` appears on a valid CRL.
    Revoked { index: usize, serial: BigUint },
    /// Chain is valid but ends in a limited proxy, and the caller said
    /// limited proxies are unacceptable for this operation.
    LimitedProxyRejected,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Empty => write!(f, "empty certificate chain"),
            ChainError::TooLong => write!(f, "certificate chain too long"),
            ChainError::TimeInvalid { index, now } => {
                write!(f, "certificate {index} not valid at time {now}")
            }
            ChainError::BadSignature { index } => write!(f, "bad signature on certificate {index}"),
            ChainError::IssuerMismatch { index } => {
                write!(f, "issuer DN mismatch at certificate {index}")
            }
            ChainError::UntrustedRoot => write!(f, "chain does not reach a trust root"),
            ChainError::ProxyIssuedByCa { index } => {
                write!(f, "proxy certificate {index} issued by a CA")
            }
            ChainError::EntityBelowProxy { index } => {
                write!(f, "non-proxy certificate {index} below a proxy")
            }
            ChainError::ProxySubjectMismatch { index } => {
                write!(f, "proxy {index} subject is not issuer + CN")
            }
            ChainError::ProxyPathLenExceeded { index } => {
                write!(f, "proxy path length exceeded at certificate {index}")
            }
            ChainError::NotCa { index } => write!(f, "certificate {index} is not a CA but issues"),
            ChainError::CaPathLenExceeded { index } => {
                write!(f, "CA path length exceeded at certificate {index}")
            }
            ChainError::KeyUsageViolation { index } => {
                write!(f, "key usage violation at certificate {index}")
            }
            ChainError::Revoked { index, serial } => {
                write!(f, "certificate {index} (serial {serial}) is revoked")
            }
            ChainError::LimitedProxyRejected => {
                write!(f, "limited proxy not acceptable for this operation")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// Knobs for [`validate_chain`].
#[derive(Clone)]
pub struct ValidationOptions {
    /// Reject chains longer than this (DoS guard). Default 16.
    pub max_chain_len: usize,
    /// Whether a chain ending in a limited proxy is acceptable. GRAM job
    /// startup says no; file access says yes (pre-RFC GSI semantics).
    pub accept_limited: bool,
    /// CRLs to consult. Each is checked only if its signature verifies
    /// under the certificate that issued the cert being tested.
    pub crls: Vec<CertRevocationList>,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions { max_chain_len: 16, accept_limited: true, crls: Vec::new() }
    }
}

/// A parsed restriction from a restricted proxy policy (paper §6.5).
///
/// Grammar: `key=value;key=value` where `value` may be a `|`-separated
/// alternative list, e.g. `targets=storage|jobmgr;actions=read`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Restriction {
    clauses: Vec<(String, Vec<String>)>,
    raw: String,
}

impl Restriction {
    /// Parse a policy expression. Unparseable clauses make the whole
    /// restriction deny-all (fail closed).
    pub fn parse(expr: &str) -> Self {
        let mut clauses = Vec::new();
        for part in expr.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((k, v)) if !k.is_empty() => {
                    clauses.push((
                        k.trim().to_string(),
                        v.split('|').map(|s| s.trim().to_string()).collect(),
                    ));
                }
                _ => {
                    // Fail closed: an unintelligible policy grants nothing.
                    clauses.push(("__invalid__".into(), vec![]));
                }
            }
        }
        Restriction { clauses, raw: expr.to_string() }
    }

    /// Does this restriction allow `value` for `key`? Keys not mentioned
    /// are unrestricted.
    pub fn allows(&self, key: &str, value: &str) -> bool {
        if self.clauses.iter().any(|(k, _)| k == "__invalid__") {
            return false;
        }
        match self.clauses.iter().find(|(k, _)| k == key) {
            None => true,
            Some((_, alts)) => alts.iter().any(|a| a == value),
        }
    }

    /// The original expression.
    pub fn raw(&self) -> &str {
        &self.raw
    }
}

/// The result of a successful validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidatedChain {
    /// The *effective identity*: the end-entity DN, no matter how many
    /// proxies sit on top (this is what gets looked up in a gridmap).
    pub identity: Dn,
    /// The leaf certificate's subject.
    pub subject: Dn,
    /// Number of proxy certificates in the chain.
    pub proxy_depth: usize,
    /// True if any proxy in the chain is a limited proxy.
    pub is_limited: bool,
    /// True if any proxy carries the `independent` policy (no inherited
    /// rights — enforcement points must grant nothing based on identity).
    pub is_independent: bool,
    /// All restricted-delegation policies in the chain; an operation must
    /// satisfy every one of them (intersection semantics).
    pub restrictions: Vec<Restriction>,
    /// Earliest expiry across the chain: the real lifetime of this
    /// credential.
    pub not_after: u64,
    /// The leaf public key (the channel peer must prove possession of
    /// the matching private key).
    pub leaf_public_key: RsaPublicKey,
}

impl ValidatedChain {
    /// Check an (key, value) action against every restriction.
    pub fn permits(&self, key: &str, value: &str) -> bool {
        !self.is_independent && self.restrictions.iter().all(|r| r.allows(key, value))
    }
}

/// Validate `chain` (leaf first) against `trust_roots` at time `now`.
pub fn validate_chain(
    chain: &[Certificate],
    trust_roots: &[Certificate],
    now: u64,
    options: &ValidationOptions,
) -> Result<ValidatedChain, ChainError> {
    if chain.is_empty() {
        return Err(ChainError::Empty);
    }
    if chain.len() > options.max_chain_len {
        return Err(ChainError::TooLong);
    }

    // Locate the end entity: the first non-proxy certificate. Everything
    // above it must be proxies; everything below must be CAs.
    let ee_idx = chain
        .iter()
        .position(|c| !c.is_proxy())
        .ok_or(ChainError::UntrustedRoot)?; // all-proxy chain can never reach a root
    for (i, cert) in chain.iter().enumerate().skip(ee_idx + 1) {
        if cert.is_proxy() {
            return Err(ChainError::EntityBelowProxy { index: i });
        }
    }

    // Pass 1: time, linkage, signatures, revocation.
    for (i, cert) in chain.iter().enumerate() {
        if !cert.is_time_valid(now) {
            return Err(ChainError::TimeInvalid { index: i, now });
        }
        let issuer_key: &RsaPublicKey = if i + 1 < chain.len() {
            let parent = &chain[i + 1];
            if parent.subject() != cert.issuer() {
                return Err(ChainError::IssuerMismatch { index: i });
            }
            parent.public_key()
        } else {
            // Top of the supplied chain: must be anchored in a trust root
            // (either it *is* a root, or a root directly signed it).
            match find_anchor(cert, trust_roots, now) {
                Some(key) => key,
                None => return Err(ChainError::UntrustedRoot),
            }
        };
        if !cert.verify_signature(issuer_key) {
            return Err(ChainError::BadSignature { index: i });
        }
        // Revocation: only CRLs legitimately signed by this cert's issuer
        // count.
        for crl in &options.crls {
            if crl.issuer() == cert.issuer()
                && crl.verify_signature(issuer_key)
                && crl.is_revoked(cert.serial())
            {
                return Err(ChainError::Revoked { index: i, serial: cert.serial().clone() });
            }
        }
    }

    // Pass 2: proxy profile rules for chain[0..ee_idx].
    for i in 0..ee_idx {
        let proxy = &chain[i];
        let parent = &chain[i + 1];
        if parent.is_ca() {
            return Err(ChainError::ProxyIssuedByCa { index: i });
        }
        if !proxy.subject().is_proxy_subject_of(parent.subject()) {
            return Err(ChainError::ProxySubjectMismatch { index: i });
        }
        if let Some(Extension::KeyUsage(ku)) = parent
            .extensions()
            .iter()
            .find(|e| matches!(e, Extension::KeyUsage(_)))
        {
            if !ku.digital_signature {
                return Err(ChainError::KeyUsageViolation { index: i + 1 });
            }
        }
    }
    // pCPathLenConstraint: a proxy at index j allows at most `len`
    // further proxies beneath it; there are exactly j of them.
    for (j, cert) in chain.iter().enumerate().take(ee_idx + 1) {
        if let Some((_, Some(max_below))) = cert.proxy_info() {
            if (j as u64) > max_below {
                return Err(ChainError::ProxyPathLenExceeded { index: j });
            }
        }
    }

    // Pass 3: CA rules for chain[ee_idx+1..].
    for (i, cert) in chain.iter().enumerate().skip(ee_idx + 1) {
        if !cert.is_ca() {
            return Err(ChainError::NotCa { index: i });
        }
        if let Some(Extension::KeyUsage(ku)) = cert
            .extensions()
            .iter()
            .find(|e| matches!(e, Extension::KeyUsage(_)))
        {
            if !ku.key_cert_sign {
                return Err(ChainError::KeyUsageViolation { index: i });
            }
        }
        // BasicConstraints path length: CA at index i has (i - ee_idx - 1)
        // subordinate CAs beneath it in this chain.
        if let Some(max) = cert.ca_path_len() {
            let below = (i - ee_idx - 1) as u64;
            if below > max {
                return Err(ChainError::CaPathLenExceeded { index: i });
            }
        }
    }

    // Aggregate policy.
    let mut is_limited = false;
    let mut is_independent = false;
    let mut restrictions = Vec::new();
    for cert in &chain[..ee_idx] {
        match cert.proxy_info() {
            Some((ProxyPolicy::Limited, _)) => is_limited = true,
            Some((ProxyPolicy::Independent, _)) => is_independent = true,
            Some((ProxyPolicy::Restricted(expr), _)) => restrictions.push(Restriction::parse(expr)),
            _ => {}
        }
    }
    if is_limited && !options.accept_limited {
        return Err(ChainError::LimitedProxyRejected);
    }

    let not_after = chain.iter().map(|c| c.not_after()).min().expect("nonempty");

    Ok(ValidatedChain {
        identity: chain[ee_idx].subject().clone(),
        subject: chain[0].subject().clone(),
        proxy_depth: ee_idx,
        is_limited,
        is_independent,
        restrictions,
        not_after,
        leaf_public_key: chain[0].public_key().clone(),
    })
}

/// Find the trust-root key that anchors `cert`: either `cert` is itself
/// a listed root, or a listed, currently-valid root's DN matches its
/// issuer.
fn find_anchor<'a>(
    cert: &Certificate,
    trust_roots: &'a [Certificate],
    now: u64,
) -> Option<&'a RsaPublicKey> {
    for root in trust_roots {
        if !root.is_time_valid(now) {
            continue;
        }
        if root.to_der() == cert.to_der() {
            return Some(root.public_key()); // cert IS the root (self-signed)
        }
        if root.subject() == cert.issuer() {
            return Some(root.public_key());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CertBuilder, CertificateAuthority};
    use crate::test_util::test_rsa_key;
    use mp_crypto::rsa::RsaPrivateKey;

    struct World {
        ca: CertificateAuthority,
        user_cert: Certificate,
        user_key: &'static RsaPrivateKey,
        user_dn: Dn,
    }

    fn world() -> World {
        let mut ca = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let user_key = test_rsa_key(1);
        let user_dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        let user_cert = ca
            .issue_end_entity(&user_dn, user_key.public_key(), 0, 500_000)
            .unwrap();
        World { ca, user_cert, user_key, user_dn }
    }

    fn make_proxy(
        parent_dn: &Dn,
        parent_key: &RsaPrivateKey,
        key: &RsaPrivateKey,
        policy: ProxyPolicy,
        not_after: u64,
    ) -> Certificate {
        CertBuilder::new(parent_dn.with_cn("proxy"), 0, not_after)
            .proxy(policy, None)
            .sign(parent_dn, parent_key, key.public_key())
            .unwrap()
    }

    #[test]
    fn plain_user_chain_validates() {
        let w = world();
        let roots = [w.ca.certificate().clone()];
        let v = validate_chain(&[w.user_cert.clone()], &roots, 100, &Default::default()).unwrap();
        assert_eq!(v.identity, w.user_dn);
        assert_eq!(v.proxy_depth, 0);
        assert!(!v.is_limited);
        assert_eq!(v.not_after, 500_000);
    }

    #[test]
    fn proxy_chain_validates_with_user_identity() {
        let w = world();
        let proxy_key = test_rsa_key(2);
        let proxy = make_proxy(&w.user_dn, w.user_key, proxy_key, ProxyPolicy::InheritAll, 100_000);
        let roots = [w.ca.certificate().clone()];
        let chain = [proxy, w.user_cert.clone()];
        let v = validate_chain(&chain, &roots, 100, &Default::default()).unwrap();
        assert_eq!(v.identity, w.user_dn, "effective identity is the EE DN");
        assert_eq!(v.proxy_depth, 1);
        assert_eq!(v.not_after, 100_000, "proxy shortens effective lifetime");
    }

    #[test]
    fn chained_delegation_two_levels() {
        let w = world();
        let p1_key = test_rsa_key(2);
        let p1 = make_proxy(&w.user_dn, w.user_key, p1_key, ProxyPolicy::InheritAll, 100_000);
        let p2_key = test_rsa_key(3);
        let p2 = CertBuilder::new(p1.subject().with_cn("proxy"), 0, 50_000)
            .proxy(ProxyPolicy::InheritAll, None)
            .sign(p1.subject(), p1_key, p2_key.public_key())
            .unwrap();
        let roots = [w.ca.certificate().clone()];
        let chain = [p2, p1, w.user_cert.clone()];
        let v = validate_chain(&chain, &roots, 100, &Default::default()).unwrap();
        assert_eq!(v.identity, w.user_dn);
        assert_eq!(v.proxy_depth, 2);
        assert_eq!(v.not_after, 50_000);
    }

    #[test]
    fn expired_proxy_rejected() {
        let w = world();
        let proxy_key = test_rsa_key(2);
        let proxy = make_proxy(&w.user_dn, w.user_key, proxy_key, ProxyPolicy::InheritAll, 1000);
        let roots = [w.ca.certificate().clone()];
        let chain = [proxy, w.user_cert.clone()];
        assert_eq!(
            validate_chain(&chain, &roots, 2000, &Default::default()),
            Err(ChainError::TimeInvalid { index: 0, now: 2000 })
        );
    }

    #[test]
    fn untrusted_root_rejected() {
        let w = world();
        let other_root = CertificateAuthority::new_root(
            Dn::parse("/O=Evil/CN=CA").unwrap(),
            test_rsa_key(5).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let roots = [other_root.certificate().clone()];
        assert_eq!(
            validate_chain(&[w.user_cert.clone()], &roots, 100, &Default::default()),
            Err(ChainError::UntrustedRoot)
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let w = world();
        // Mallory signs a cert claiming alice's CA as issuer.
        let mallory_key = test_rsa_key(6);
        let forged = CertBuilder::new(w.user_dn.clone(), 0, 500_000)
            .end_entity()
            .sign(w.ca.dn(), mallory_key, test_rsa_key(7).public_key())
            .unwrap();
        let roots = [w.ca.certificate().clone()];
        assert_eq!(
            validate_chain(&[forged], &roots, 100, &Default::default()),
            Err(ChainError::BadSignature { index: 0 })
        );
    }

    #[test]
    fn proxy_subject_must_extend_issuer() {
        let w = world();
        let proxy_key = test_rsa_key(2);
        // Subject does not extend the user's DN.
        let bad = CertBuilder::new(Dn::parse("/O=Grid/CN=bob/CN=proxy").unwrap(), 0, 1000)
            .proxy(ProxyPolicy::InheritAll, None)
            .sign(&w.user_dn, w.user_key, proxy_key.public_key())
            .unwrap();
        let roots = [w.ca.certificate().clone()];
        let chain = [bad, w.user_cert.clone()];
        assert_eq!(
            validate_chain(&chain, &roots, 100, &Default::default()),
            Err(ChainError::ProxySubjectMismatch { index: 0 })
        );
    }

    #[test]
    fn proxy_issued_by_ca_rejected() {
        let w = world();
        // The CA key signs a "proxy" whose parent is the CA cert itself.
        let proxy_key = test_rsa_key(2);
        let bad = CertBuilder::new(w.ca.dn().with_cn("proxy"), 0, 1000)
            .proxy(ProxyPolicy::InheritAll, None)
            .sign(w.ca.dn(), test_rsa_key(0), proxy_key.public_key())
            .unwrap();
        let roots = [w.ca.certificate().clone()];
        let chain = [bad, w.ca.certificate().clone()];
        assert_eq!(
            validate_chain(&chain, &roots, 100, &Default::default()),
            Err(ChainError::ProxyIssuedByCa { index: 0 })
        );
    }

    #[test]
    fn limited_proxy_flag_and_rejection() {
        let w = world();
        let proxy_key = test_rsa_key(2);
        let proxy = make_proxy(&w.user_dn, w.user_key, proxy_key, ProxyPolicy::Limited, 1000);
        let roots = [w.ca.certificate().clone()];
        let chain = [proxy, w.user_cert.clone()];
        let v = validate_chain(&chain, &roots, 100, &Default::default()).unwrap();
        assert!(v.is_limited);

        let strict = ValidationOptions { accept_limited: false, ..Default::default() };
        assert_eq!(
            validate_chain(&chain, &roots, 100, &strict),
            Err(ChainError::LimitedProxyRejected)
        );
    }

    #[test]
    fn limited_propagates_through_further_delegation() {
        // Once limited, always limited: a full proxy under a limited one
        // must still yield a limited chain.
        let w = world();
        let p1_key = test_rsa_key(2);
        let p1 = make_proxy(&w.user_dn, w.user_key, p1_key, ProxyPolicy::Limited, 100_000);
        let p2_key = test_rsa_key(3);
        let p2 = CertBuilder::new(p1.subject().with_cn("proxy"), 0, 50_000)
            .proxy(ProxyPolicy::InheritAll, None)
            .sign(p1.subject(), p1_key, p2_key.public_key())
            .unwrap();
        let roots = [w.ca.certificate().clone()];
        let v = validate_chain(&[p2, p1, w.user_cert.clone()], &roots, 100, &Default::default())
            .unwrap();
        assert!(v.is_limited);
    }

    #[test]
    fn proxy_path_len_enforced() {
        let w = world();
        let p1_key = test_rsa_key(2);
        // p1 says: zero further proxies below me.
        let p1 = CertBuilder::new(w.user_dn.with_cn("proxy"), 0, 100_000)
            .proxy(ProxyPolicy::InheritAll, Some(0))
            .sign(&w.user_dn, w.user_key, p1_key.public_key())
            .unwrap();
        let p2_key = test_rsa_key(3);
        let p2 = CertBuilder::new(p1.subject().with_cn("proxy"), 0, 50_000)
            .proxy(ProxyPolicy::InheritAll, None)
            .sign(p1.subject(), p1_key, p2_key.public_key())
            .unwrap();
        let roots = [w.ca.certificate().clone()];
        let err = validate_chain(&[p2, p1, w.user_cert.clone()], &roots, 100, &Default::default())
            .unwrap_err();
        assert_eq!(err, ChainError::ProxyPathLenExceeded { index: 1 });
    }

    #[test]
    fn restricted_policy_collected_and_enforced() {
        let w = world();
        let proxy_key = test_rsa_key(2);
        let proxy = make_proxy(
            &w.user_dn,
            w.user_key,
            proxy_key,
            ProxyPolicy::Restricted("targets=storage;actions=read|stat".into()),
            1000,
        );
        let roots = [w.ca.certificate().clone()];
        let v = validate_chain(&[proxy, w.user_cert.clone()], &roots, 100, &Default::default())
            .unwrap();
        assert_eq!(v.restrictions.len(), 1);
        assert!(v.permits("targets", "storage"));
        assert!(!v.permits("targets", "jobmgr"));
        assert!(v.permits("actions", "read"));
        assert!(!v.permits("actions", "write"));
        assert!(v.permits("anything-else", "x"), "unmentioned keys unrestricted");
    }

    #[test]
    fn restriction_intersection_across_chain() {
        let w = world();
        let p1_key = test_rsa_key(2);
        let p1 = make_proxy(
            &w.user_dn,
            w.user_key,
            p1_key,
            ProxyPolicy::Restricted("targets=storage|jobmgr".into()),
            100_000,
        );
        let p2_key = test_rsa_key(3);
        let p2 = CertBuilder::new(p1.subject().with_cn("proxy"), 0, 50_000)
            .proxy(ProxyPolicy::Restricted("targets=storage".into()), None)
            .sign(p1.subject(), p1_key, p2_key.public_key())
            .unwrap();
        let roots = [w.ca.certificate().clone()];
        let v = validate_chain(&[p2, p1, w.user_cert.clone()], &roots, 100, &Default::default())
            .unwrap();
        assert!(v.permits("targets", "storage"));
        assert!(!v.permits("targets", "jobmgr"), "must satisfy every restriction");
    }

    #[test]
    fn independent_proxy_grants_nothing() {
        let w = world();
        let proxy_key = test_rsa_key(2);
        let proxy = make_proxy(&w.user_dn, w.user_key, proxy_key, ProxyPolicy::Independent, 1000);
        let roots = [w.ca.certificate().clone()];
        let v = validate_chain(&[proxy, w.user_cert.clone()], &roots, 100, &Default::default())
            .unwrap();
        assert!(v.is_independent);
        assert!(!v.permits("targets", "storage"));
    }

    #[test]
    fn intermediate_ca_chain_validates() {
        let mut root = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=Root CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let inter_key = test_rsa_key(8);
        let inter_dn = Dn::parse("/O=Grid/CN=Inter CA").unwrap();
        let inter = root
            .issue_intermediate(&inter_dn, inter_key.public_key(), 0, 900_000, Some(0))
            .unwrap();
        let user_key = test_rsa_key(9);
        let user_dn = Dn::parse("/O=Grid/CN=carol").unwrap();
        let user = CertBuilder::new(user_dn.clone(), 0, 800_000)
            .serial(BigUint::from_u64(77))
            .end_entity()
            .sign(&inter_dn, inter_key, user_key.public_key())
            .unwrap();
        let roots = [root.certificate().clone()];
        let v = validate_chain(&[user, inter], &roots, 100, &Default::default()).unwrap();
        assert_eq!(v.identity, user_dn);
    }

    #[test]
    fn non_ca_cannot_issue_end_entity() {
        let w = world();
        // alice (EE) signs another EE cert for bob — must be rejected.
        let bob_key = test_rsa_key(10);
        let bob = CertBuilder::new(Dn::parse("/O=Grid/CN=bob").unwrap(), 0, 1000)
            .end_entity()
            .sign(&w.user_dn, w.user_key, bob_key.public_key())
            .unwrap();
        let roots = [w.ca.certificate().clone()];
        let err =
            validate_chain(&[bob, w.user_cert.clone()], &roots, 100, &Default::default())
                .unwrap_err();
        assert_eq!(err, ChainError::NotCa { index: 1 });
    }

    #[test]
    fn chain_too_long_rejected() {
        let w = world();
        let opts = ValidationOptions { max_chain_len: 1, ..Default::default() };
        let proxy_key = test_rsa_key(2);
        let proxy = make_proxy(&w.user_dn, w.user_key, proxy_key, ProxyPolicy::InheritAll, 1000);
        let roots = [w.ca.certificate().clone()];
        assert_eq!(
            validate_chain(&[proxy, w.user_cert.clone()], &roots, 100, &opts),
            Err(ChainError::TooLong)
        );
    }

    #[test]
    fn empty_chain_rejected() {
        assert_eq!(
            validate_chain(&[], &[], 0, &Default::default()),
            Err(ChainError::Empty)
        );
    }

    #[test]
    fn restriction_parser_edge_cases() {
        let r = Restriction::parse("");
        assert!(r.allows("anything", "x"));
        let r = Restriction::parse("targets=a|b;;actions=read");
        assert!(r.allows("targets", "b"));
        assert!(!r.allows("actions", "write"));
        // Fail closed on garbage.
        let r = Restriction::parse("no-equals-here");
        assert!(!r.allows("anything", "x"));
    }
}
