//! `BENCH_load.json` has an executable schema, the same way the lint
//! SARIF-lite report does: a *real* (tiny) capacity sweep is run
//! in-process, its emitted JSON is parsed back and validated against
//! the checked-in `docs/bench-load.schema.json`, and the schema is
//! proved non-vacuous by feeding it deliberately broken documents.
//! A second identical sweep must reproduce the identical plan digest —
//! the end-to-end determinism claim CI relies on.

use mp_lint::{json, schema, workspace_root};
use mp_loadgen::{capacity_sweep, LoadReport, SweepConfig};

fn checked_in_schema() -> json::Value {
    let path = workspace_root().join("docs/bench-load.schema.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("schema {} unreadable: {e}", path.display()));
    json::parse(&text).expect("schema parses as JSON")
}

fn tiny_sweep() -> SweepConfig {
    let mut cfg = SweepConfig::default();
    cfg.seed = 7;
    cfg.users = 4;
    cfg.rates = vec![25.0];
    cfg.duration_s = 0.4;
    cfg.fixture.workers = 2;
    cfg.fixture.max_connections = 16;
    cfg
}

fn run_tiny() -> LoadReport {
    capacity_sweep(&tiny_sweep())
}

#[test]
fn real_sweep_report_validates_against_checked_in_schema() {
    let report = run_tiny();
    assert!(report.soak.wal_replay_matches, "soak must hold: {:?}", report.soak.divergence);
    let doc = json::parse(&report.to_json()).expect("emitted report parses as JSON");
    let errors = schema::validate(&doc, &checked_in_schema());
    assert!(errors.is_empty(), "schema violations: {errors:#?}");
}

#[test]
fn identical_sweeps_reproduce_the_identical_plan_digest() {
    let a = run_tiny();
    let b = run_tiny();
    assert_eq!(a.plan_digest, b.plan_digest, "sweep digest must be seed-deterministic");
    for (ra, rb) in a.rates.iter().zip(b.rates.iter()) {
        assert_eq!(ra.plan_digest, rb.plan_digest, "rate {} digest drifted", ra.rate_per_sec);
        assert_eq!(ra.offered_ops, rb.offered_ops);
    }
}

#[test]
fn schema_actually_rejects_malformed_reports() {
    // Guard against a vacuous schema. Start from a real emitted report
    // and break it three ways with surgical string edits: an unknown
    // top-level property, an op kind outside the enum, and a dropped
    // required soak field. All three must be reported.
    let good = run_tiny().to_json();
    let sch = checked_in_schema();

    let extra_prop = good.replacen(
        "\"schema\":\"bench-load-v1\"",
        "\"schema\":\"bench-load-v1\",\"bogus\":1",
        1,
    );
    let doc = json::parse(&extra_prop).expect("mutated doc parses");
    let errors = schema::validate(&doc, &sch);
    assert!(
        errors.iter().any(|e| e.contains("bogus")),
        "unexpected property not caught: {errors:#?}"
    );

    let bad_kind = good.replacen("\"kind\":\"put\"", "\"kind\":\"oops\"", 1);
    let doc = json::parse(&bad_kind).expect("mutated doc parses");
    let errors = schema::validate(&doc, &sch);
    assert!(errors.iter().any(|e| e.contains("enum")), "bad op kind not caught: {errors:#?}");

    let dropped = good.replacen("\"wal_replay_matches\":", "\"wal_replay_renamed\":", 1);
    let doc = json::parse(&dropped).expect("mutated doc parses");
    let errors = schema::validate(&doc, &sch);
    assert!(
        errors.iter().any(|e| e.contains("wal_replay_matches")),
        "missing required soak field not caught: {errors:#?}"
    );
}
