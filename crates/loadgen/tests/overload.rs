//! Drive the open-loop generator well past a deliberately tiny pool
//! (one worker, admission cap 2) and check the RetryPolicy × shedding
//! contract: the server sheds, GET/INFO ride BUSY out with retries,
//! PUT and portal logins never retry, the global retry budget is a
//! hard cap, accounting balances exactly, the queue drains on quiesce,
//! and — even under heavy shedding — the WAL replay soak oracle holds:
//! overload loses requests, never updates.

use mp_loadgen::{run, Fixture, FixtureConfig, OpKind, Plan, PlanConfig, RunConfig};

fn overload_plan(seed: u64) -> Plan {
    Plan::generate(&PlanConfig {
        seed,
        users: 4,
        zipf_exponent: 1.0,
        rate_per_sec: 250.0,
        total_ops: 80,
        ..PlanConfig::default()
    })
}

fn tiny_pool() -> FixtureConfig {
    FixtureConfig { workers: 1, max_connections: 2, users: 4 }
}

fn kind(outcome: &mp_loadgen::RunOutcome, k: OpKind) -> &mp_loadgen::KindStats {
    outcome
        .per_kind
        .iter()
        .find(|s| s.kind == k)
        .unwrap_or_else(|| panic!("missing per-kind stats for {}", k.name()))
}

#[test]
fn overload_sheds_retries_and_keeps_the_store_consistent() {
    let mut fixture = Fixture::new(tiny_pool());
    let plan = overload_plan(11);
    let cfg = RunConfig::default();
    let outcome = run(&fixture, &plan, &cfg);

    // Offered load 250/s against a one-worker pool capped at 2: the
    // server must shed, and some operations must terminally fail BUSY.
    assert!(outcome.shed > 0, "no sheds under 2.5x overload: {outcome:?}");
    assert!(outcome.busy > 0, "no terminal BUSY under overload: {outcome:?}");
    // But the repository is never fully starved either.
    assert!(outcome.ok > 0, "nothing succeeded: {outcome:?}");

    // Accounting balances exactly: every planned op was issued and
    // landed in exactly one terminal bucket.
    assert_eq!(outcome.issued, plan.ops.len() as u64);
    assert_eq!(outcome.ok + outcome.busy + outcome.errors, outcome.issued);

    // Idempotent traffic rides BUSY out with retries...
    let idempotent_retries =
        kind(&outcome, OpKind::Get).retries + kind(&outcome, OpKind::Info).retries;
    assert!(idempotent_retries > 0, "GET/INFO never retried under shedding: {outcome:?}");
    // ...while the non-idempotent kinds never retry, by construction.
    assert_eq!(kind(&outcome, OpKind::Put).retries, 0, "PUT must never retry");
    assert_eq!(kind(&outcome, OpKind::PortalLogin).retries, 0, "portal login must never retry");
    // And the global budget bounds total retry spend.
    assert!(
        outcome.retries <= cfg.retry_budget,
        "retries {} blew the budget {}",
        outcome.retries,
        cfg.retry_budget
    );

    // Quiesce drains everything: no connection left in the queue.
    fixture.quiesce();
    assert_eq!(fixture.net_queue_depth(), 0, "worker queue did not drain on quiesce");

    // The soak oracle: shedding may lose *requests*, never *updates* —
    // the journal's synced image replays to exactly the live store.
    assert_eq!(fixture.soak_divergence(), None);
    // Seeded users are still there regardless of how the run went.
    assert!(fixture.store_entries() >= 4, "seeded credentials vanished");
}

#[test]
fn retry_budget_is_a_hard_cap() {
    let mut fixture = Fixture::new(tiny_pool());
    let plan = overload_plan(13);
    let cfg = RunConfig { retry_budget: 3, ..RunConfig::default() };
    let outcome = run(&fixture, &plan, &cfg);
    assert!(
        outcome.retries <= 3,
        "retries {} exceeded the hard budget of 3",
        outcome.retries
    );
    fixture.quiesce();
    assert_eq!(fixture.soak_divergence(), None);
}

#[test]
fn uncontended_run_needs_no_retries_and_sheds_nothing() {
    // The control group: the same machinery at a rate the pool serves
    // comfortably must not shed, retry, or lose anything.
    let mut fixture = Fixture::new(FixtureConfig::default());
    let plan = Plan::generate(&PlanConfig {
        seed: 17,
        users: 4,
        rate_per_sec: 10.0,
        total_ops: 8,
        ..PlanConfig::default()
    });
    let outcome = run(&fixture, &plan, &RunConfig::default());
    assert_eq!(outcome.ok, outcome.issued, "uncontended ops failed: {outcome:?}");
    assert_eq!(outcome.shed, 0);
    assert_eq!(outcome.retries, 0);
    fixture.quiesce();
    assert_eq!(fixture.soak_divergence(), None);
}
