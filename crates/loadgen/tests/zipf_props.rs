//! Property tests for the zipfian user sampler: seeded determinism
//! (same seed ⇒ the identical draw sequence), range safety, and
//! statistical fidelity (empirical rank frequencies track the
//! analytical zipf probabilities within tolerance).

use mp_loadgen::Zipf;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn same_seed_means_identical_draws(
        seed in any::<u64>(),
        n in 1usize..64,
        s_milli in 0u32..3000,
    ) {
        let zipf = Zipf::new(n, f64::from(s_milli) / 1000.0);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn draws_stay_in_population(
        seed in any::<u64>(),
        n in 1usize..40,
        s_milli in 0u32..3000,
    ) {
        let zipf = Zipf::new(n, f64::from(s_milli) / 1000.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..500 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }

    #[test]
    fn probabilities_are_rank_monotone(
        n in 1usize..50,
        s_milli in 0u32..3000,
    ) {
        // Higher rank (less popular) never gets more probability mass.
        let zipf = Zipf::new(n, f64::from(s_milli) / 1000.0);
        for k in 1..n {
            prop_assert!(zipf.probability(k - 1) >= zipf.probability(k));
        }
    }

    #[test]
    fn empirical_rank_frequency_tracks_analytical(seed in any::<u64>()) {
        // n = 20 at the classic s = 1: draw 20k samples and require
        // every rank's empirical frequency to sit within a tolerance of
        // its analytical probability. Tolerance is max(0.02, 6σ) for a
        // binomial with that rank's p — wide enough to never flake,
        // tight enough that a broken CDF (off-by-one rank, unnormalized
        // weights, biased uniform) lands far outside it.
        const N: usize = 20;
        const DRAWS: usize = 20_000;
        let zipf = Zipf::new(N, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = [0u32; N];
        for _ in 0..DRAWS {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let p = zipf.probability(k);
            let freq = f64::from(c) / DRAWS as f64;
            let sigma = (p * (1.0 - p) / DRAWS as f64).sqrt();
            let tol = (6.0 * sigma).max(0.02);
            prop_assert!(
                (freq - p).abs() <= tol,
                "rank {}: empirical {:.4} vs analytical {:.4} (tol {:.4})",
                k, freq, p, tol
            );
        }
        // The head must dominate: rank 0 is the most frequent draw.
        let head = counts[0];
        prop_assert!(counts.iter().all(|&c| c <= head));
    }
}
