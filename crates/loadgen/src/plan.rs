//! Deterministic open-loop load plans.
//!
//! A [`Plan`] is the *entire* randomness of a load run, materialized up
//! front from one seed: which simulated user issues each operation
//! (zipfian), which operation it is (weighted mix), and when it arrives
//! (jittered fixed-rate schedule). The harness then merely executes the
//! plan on the wall clock — arrivals never depend on response latency,
//! which is what makes the generator *open-loop*: when the server slows
//! down, requests keep arriving on schedule and queueing/shedding
//! become visible instead of being masked by client backpressure.
//!
//! Two plans generated from the same config are identical byte for
//! byte; [`Plan::digest`] is the cheap fingerprint CI uses to prove a
//! rerun replayed the same op sequence.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation kind in the traffic mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `myproxy-init`: deposit a delegated credential (never retried).
    Put,
    /// `myproxy-get-delegation`: retrieve a proxy (idempotent, retried).
    Get,
    /// `myproxy-info`: list stored credentials (idempotent, retried).
    Info,
    /// Full portal round trip: browser login (portal performs the GET
    /// against the repository on the user's behalf) then logout.
    PortalLogin,
}

impl OpKind {
    /// Stable short name, used in metric names and reports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Put => "put",
            OpKind::Get => "get",
            OpKind::Info => "info",
            OpKind::PortalLogin => "portal_login",
        }
    }

    /// Stable wire byte for digesting.
    fn tag(self) -> u8 {
        match self {
            OpKind::Put => b'P',
            OpKind::Get => b'G',
            OpKind::Info => b'I',
            OpKind::PortalLogin => b'L',
        }
    }

    /// All kinds, in report order.
    pub const ALL: [OpKind; 4] = [OpKind::Put, OpKind::Get, OpKind::Info, OpKind::PortalLogin];
}

/// Relative weights of the traffic mix. The defaults model the paper's
/// portal workload: retrieval dominates (§3.3 — many portals fetching
/// on users' behalf), deposits are comparatively rare.
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Weight of PUT.
    pub put: u32,
    /// Weight of GET.
    pub get: u32,
    /// Weight of INFO.
    pub info: u32,
    /// Weight of portal login.
    pub portal_login: u32,
}

impl Default for Mix {
    fn default() -> Self {
        Mix { put: 10, get: 60, info: 10, portal_login: 20 }
    }
}

impl Mix {
    fn total(&self) -> u32 {
        self.put + self.get + self.info + self.portal_login
    }

    fn pick(&self, roll: u32) -> OpKind {
        if roll < self.put {
            OpKind::Put
        } else if roll < self.put + self.get {
            OpKind::Get
        } else if roll < self.put + self.get + self.info {
            OpKind::Info
        } else {
            OpKind::PortalLogin
        }
    }
}

/// Everything that determines a plan. Two identical configs generate
/// identical plans.
#[derive(Clone, Debug)]
pub struct PlanConfig {
    /// Master seed: the only entropy in the whole run.
    pub seed: u64,
    /// Simulated user population (zipf ranks).
    pub users: usize,
    /// Zipf exponent for user popularity.
    pub zipf_exponent: f64,
    /// Target arrival rate, operations per second.
    pub rate_per_sec: f64,
    /// How many operations to schedule.
    pub total_ops: usize,
    /// Traffic mix weights.
    pub mix: Mix,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            seed: 1,
            users: 16,
            zipf_exponent: 1.0,
            rate_per_sec: 20.0,
            total_ops: 40,
            mix: Mix::default(),
        }
    }
}

/// One scheduled operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedOp {
    /// Arrival time, microseconds from run start.
    pub at_micros: u64,
    /// User rank (0 = most popular).
    pub user: u32,
    /// Operation kind.
    pub kind: OpKind,
}

/// A fully materialized schedule.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The generating config (kept for reports).
    pub config: PlanConfig,
    /// Operations in arrival order.
    pub ops: Vec<PlannedOp>,
}

impl Plan {
    /// Generate the plan for `config`. Deterministic: all draws come
    /// from one `StdRng` seeded with `config.seed`.
    pub fn generate(config: &PlanConfig) -> Plan {
        assert!(config.rate_per_sec > 0.0, "arrival rate must be positive");
        assert!(config.mix.total() > 0, "traffic mix must have positive weight");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zipf = Zipf::new(config.users.max(1), config.zipf_exponent);
        let interval_us = 1_000_000.0 / config.rate_per_sec;
        let total_weight = config.mix.total();
        let mut t = 0.0f64;
        let ops = (0..config.total_ops)
            .map(|_| {
                // Jitter each gap uniformly in [0.5, 1.5)× the nominal
                // interval: mean arrival rate stays exact while arrivals
                // de-phase from any server-side periodicity.
                let u = rng.gen_range(0..1 << 20) as f64 / (1u64 << 20) as f64;
                t += interval_us * (0.5 + u);
                let user = zipf.sample(&mut rng) as u32;
                let kind = config.mix.pick(rng.gen_range(0..u64::from(total_weight)) as u32);
                PlannedOp { at_micros: t as u64, user, kind }
            })
            .collect();
        Plan { config: config.clone(), ops }
    }

    /// FNV-1a fingerprint of the op sequence (times, users, kinds), as
    /// a hex string. Equal digests ⇔ identical schedules; CI compares
    /// this against the committed baseline to prove seeded reruns
    /// replay the same op sequence.
    pub fn digest(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for op in &self.ops {
            for b in op.at_micros.to_le_bytes() {
                eat(b);
            }
            for b in op.user.to_le_bytes() {
                eat(b);
            }
            eat(op.kind.tag());
        }
        format!("{h:016x}")
    }

    /// Count of ops of one kind.
    pub fn count_of(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }
}

/// The deterministic per-user retrieval phrase. Both the seeding PUT
/// and every later GET/INFO/login derive it the same way, so any
/// credential deposited by the plan is retrievable by the plan.
pub fn user_pw(user: u32) -> String {
    // Zero-padded to clear the server's minimum pass-phrase length.
    format!("pw-{user:06}")
}

/// The repository account name for a user rank.
pub fn user_name(user: u32) -> String {
    format!("user-{user}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = PlanConfig { seed: 42, total_ops: 200, ..PlanConfig::default() };
        let a = Plan::generate(&cfg);
        let b = Plan::generate(&cfg);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seed_different_plan() {
        let a = Plan::generate(&PlanConfig { seed: 1, total_ops: 100, ..PlanConfig::default() });
        let b = Plan::generate(&PlanConfig { seed: 2, total_ops: 100, ..PlanConfig::default() });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn arrivals_are_monotone_and_near_rate() {
        let cfg = PlanConfig {
            seed: 9,
            rate_per_sec: 100.0,
            total_ops: 500,
            ..PlanConfig::default()
        };
        let plan = Plan::generate(&cfg);
        for w in plan.ops.windows(2) {
            assert!(w[0].at_micros <= w[1].at_micros, "arrivals must be sorted");
        }
        let span_s = plan.ops.last().map(|o| o.at_micros).unwrap_or(0) as f64 / 1e6;
        let achieved = cfg.total_ops as f64 / span_s;
        assert!(
            (achieved - 100.0).abs() < 10.0,
            "offered rate {achieved:.1}/s drifted from nominal 100/s"
        );
    }

    #[test]
    fn mix_weights_are_respected() {
        let cfg = PlanConfig {
            seed: 5,
            total_ops: 2_000,
            mix: Mix { put: 1, get: 1, info: 0, portal_login: 0 },
            ..PlanConfig::default()
        };
        let plan = Plan::generate(&cfg);
        assert_eq!(plan.count_of(OpKind::Info), 0);
        assert_eq!(plan.count_of(OpKind::PortalLogin), 0);
        let puts = plan.count_of(OpKind::Put) as f64;
        let gets = plan.count_of(OpKind::Get) as f64;
        assert!((puts / gets - 1.0).abs() < 0.25, "1:1 mix skewed: {puts} puts vs {gets} gets");
    }
}
