//! Zipfian population sampler.
//!
//! A grid portal's users are anything but uniform: a handful of heavy
//! users dominate the repository's traffic while a long tail logs in
//! once a week. The classic model is a zipfian rank-frequency law —
//! rank *k* drawn with probability proportional to `1 / k^s` — and the
//! load plan samples its per-operation user from exactly that
//! distribution, by inverse-CDF lookup over a precomputed table.
//!
//! Determinism is the point: the sampler owns no randomness. Callers
//! feed it an explicit `Rng`, so the same seeded generator replays the
//! identical draw sequence — the property tests pin both that and the
//! empirical rank-frequency shape.

use rand::Rng;

/// Inverse-CDF zipfian sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative distribution: `cdf[k]` = P(rank ≤ k). The final entry
    /// is exactly 1.0 by construction.
    cdf: Vec<f64>,
    exponent: f64,
}

/// Draws map a 53-bit uniform integer into [0, 1); 53 bits is what an
/// f64 mantissa can hold exactly, the standard construction.
const UNIFORM_BITS: u64 = 1 << 53;

impl Zipf {
    /// Sampler over `n` ranks with exponent `s ≥ 0` (s = 0 degenerates
    /// to uniform, s ≈ 1 is the classic web-traffic shape).
    ///
    /// `n` must be at least 1; the table is O(n) built once.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "zipf population must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite and >= 0");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf, exponent: s }
    }

    /// Number of ranks.
    pub fn population(&self) -> usize {
        self.cdf.len()
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The modelled probability of rank `k` (0-based).
    pub fn probability(&self, k: usize) -> f64 {
        let hi = self.cdf.get(k).copied().unwrap_or(0.0);
        let lo = if k == 0 { 0.0 } else { self.cdf.get(k - 1).copied().unwrap_or(0.0) };
        hi - lo
    }

    /// Draw one rank in `0..n`. Consumes exactly one `u64` from `rng`
    /// in the common case (`gen_range` may reject and redraw, which is
    /// still deterministic for a deterministic generator).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen_range(0..UNIFORM_BITS) as f64 / UNIFORM_BITS as f64;
        // First rank whose cumulative probability covers u.
        self.cdf.partition_point(|c| *c <= u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.probability(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(17, 0.9);
        let total: f64 = (0..17).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
    }
}
