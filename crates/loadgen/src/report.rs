//! Capacity sweep, `BENCH_load.json` emission, and the regression gate.
//!
//! A sweep runs the same seeded plan shape at several arrival rates —
//! each against a *fresh* fixture so shed counters and store contents
//! never bleed between rates — and reports, per rate, the latency
//! distribution, shed/busy/error taxonomy and retry spend, plus the
//! headline figure: the highest tested rate that still meets the
//! latency SLO with (almost) no lost traffic. Every rate run ends with
//! the soak oracle: the WAL's synced image must replay to exactly the
//! live store.
//!
//! The JSON shape is pinned by `docs/bench-load.schema.json` (validated
//! in `tests/schema.rs` with the same executable-schema machinery that
//! gates the lint reports), and [`gate_against_baseline`] compares a
//! fresh run against the committed baseline with a tolerance band — CI
//! fails on throughput-at-SLO regressions, shed-behavior regressions,
//! and on any change to the seeded op sequence (digest mismatch at
//! equal config = lost determinism).

use crate::harness::{run, Fixture, FixtureConfig, RunConfig, RunOutcome};
use crate::plan::{Mix, Plan, PlanConfig};
use mp_lint::json::{self, Value};

/// A latency service-level objective: "the `quantile`-th percentile
/// stays at or below `bound_us`".
#[derive(Clone, Copy, Debug)]
pub struct Slo {
    /// Quantile in (0, 1], e.g. 0.99.
    pub quantile: f64,
    /// Latency bound in microseconds.
    pub bound_us: u64,
}

impl Default for Slo {
    fn default() -> Self {
        // The ISSUE's example objective: p99 ≤ 50 ms.
        Slo { quantile: 0.99, bound_us: 50_000 }
    }
}

/// Everything a sweep needs.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Master seed (the whole run's entropy).
    pub seed: u64,
    /// User population.
    pub users: u32,
    /// Zipf exponent over the population.
    pub zipf_exponent: f64,
    /// Traffic mix.
    pub mix: Mix,
    /// Arrival rates to test, ops/sec, ascending.
    pub rates: Vec<f64>,
    /// Dispatch window per rate, seconds (ops ≈ rate × duration).
    pub duration_s: f64,
    /// Server shape (fixture `users` is overridden by `users` above).
    pub fixture: FixtureConfig,
    /// Client knobs.
    pub run: RunConfig,
    /// The latency objective.
    pub slo: Slo,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 1,
            users: 16,
            zipf_exponent: 1.0,
            mix: Mix::default(),
            rates: vec![15.0, 40.0],
            duration_s: 2.0,
            fixture: FixtureConfig::default(),
            run: RunConfig::default(),
            slo: Slo::default(),
        }
    }
}

/// One rate's results.
#[derive(Clone, Debug)]
pub struct RateReport {
    /// Nominal arrival rate.
    pub rate_per_sec: f64,
    /// Digest of this rate's op sequence.
    pub plan_digest: String,
    /// Scheduled operations.
    pub offered_ops: u64,
    /// Measured outcome.
    pub outcome: RunOutcome,
    /// Did this rate meet the SLO with negligible lost traffic?
    pub slo_met: bool,
}

/// The soak verdict, aggregated over every rate run.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Total operations dispatched across the sweep.
    pub ops: u64,
    /// Store entries live at the end of the last rate run.
    pub entries: u64,
    /// WAL-replay equivalence held after every rate run.
    pub wal_replay_matches: bool,
    /// First divergence, if any.
    pub divergence: Option<String>,
}

/// The full sweep result — what `BENCH_load.json` serializes.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Seed the sweep ran under.
    pub seed: u64,
    /// Population size.
    pub users: u32,
    /// Zipf exponent.
    pub zipf_exponent: f64,
    /// The objective.
    pub slo: Slo,
    /// Digest over all rates' digests: one fingerprint for the whole
    /// sweep's op sequences.
    pub plan_digest: String,
    /// Per-rate results, in tested order.
    pub rates: Vec<RateReport>,
    /// Highest tested rate meeting the SLO (0 when none did).
    pub max_rate_at_slo: f64,
    /// Soak verdict.
    pub soak: SoakReport,
}

/// Allowed lost-traffic fraction for a rate to still count as
/// "sustained": 1 shed/error per 100 offered ops.
const SUSTAINED_LOSS_FRAC: f64 = 0.01;

fn rate_meets(outcome: &RunOutcome, slo: &Slo) -> bool {
    let lost = outcome.busy + outcome.errors;
    outcome.ok > 0
        && (lost as f64) <= (outcome.issued as f64 * SUSTAINED_LOSS_FRAC).max(0.0)
        && outcome.overall.meets_slo(slo.quantile, slo.bound_us)
}

/// Run the sweep. One fresh fixture per rate; quiesces and soak-checks
/// each before moving on.
pub fn capacity_sweep(cfg: &SweepConfig) -> LoadReport {
    let mut rates = Vec::new();
    let mut soak = SoakReport { ops: 0, entries: 0, wal_replay_matches: true, divergence: None };
    for &rate in &cfg.rates {
        let plan = Plan::generate(&PlanConfig {
            seed: cfg.seed,
            users: cfg.users as usize,
            zipf_exponent: cfg.zipf_exponent,
            rate_per_sec: rate,
            total_ops: ((rate * cfg.duration_s).ceil() as usize).max(4),
            mix: cfg.mix,
        });
        let mut fixture = Fixture::new(FixtureConfig { users: cfg.users, ..cfg.fixture.clone() });
        let outcome = run(&fixture, &plan, &cfg.run);
        fixture.quiesce();
        if let Some(diff) = fixture.soak_divergence() {
            if soak.wal_replay_matches {
                soak.divergence = Some(format!("rate {rate}: {diff}"));
            }
            soak.wal_replay_matches = false;
        }
        soak.ops += outcome.issued;
        soak.entries = fixture.store_entries() as u64;
        rates.push(RateReport {
            rate_per_sec: rate,
            plan_digest: plan.digest(),
            offered_ops: plan.ops.len() as u64,
            slo_met: rate_meets(&outcome, &cfg.slo),
            outcome,
        });
    }
    let max_rate_at_slo = rates
        .iter()
        .filter(|r| r.slo_met)
        .map(|r| r.rate_per_sec)
        .fold(0.0f64, f64::max);
    let plan_digest = combine_digests(rates.iter().map(|r| r.plan_digest.as_str()));
    LoadReport {
        seed: cfg.seed,
        users: cfg.users,
        zipf_exponent: cfg.zipf_exponent,
        slo: cfg.slo,
        plan_digest,
        rates,
        max_rate_at_slo,
        soak,
    }
}

fn combine_digests<'a>(parts: impl Iterator<Item = &'a str>) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'|');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl LoadReport {
    /// Serialize to the `bench-load-v1` JSON shape.
    pub fn to_json(&self) -> String {
        let rates: Vec<String> = self.rates.iter().map(rate_json).collect();
        let soak_div = match &self.soak.divergence {
            Some(d) => format!(",\"divergence\":\"{}\"", escape(d)),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"schema\":\"bench-load-v1\",",
                "\"seed\":{},\"users\":{},\"zipf_exponent\":{:.3},",
                "\"plan_digest\":\"{}\",",
                "\"slo\":{{\"quantile\":{:.4},\"bound_us\":{}}},",
                "\"max_rate_at_slo\":{:.1},",
                "\"rates\":[{}],",
                "\"soak\":{{\"ops\":{},\"entries\":{},\"wal_replay_matches\":{}{}}}}}\n"
            ),
            self.seed,
            self.users,
            self.zipf_exponent,
            self.plan_digest,
            self.slo.quantile,
            self.slo.bound_us,
            self.max_rate_at_slo,
            rates.join(","),
            self.soak.ops,
            self.soak.entries,
            self.soak.wal_replay_matches,
            soak_div,
        )
    }
}

fn rate_json(r: &RateReport) -> String {
    let o = &r.outcome;
    let ops: Vec<String> = o
        .per_kind
        .iter()
        .map(|k| {
            format!(
                concat!(
                    "{{\"kind\":\"{}\",\"issued\":{},\"ok\":{},\"busy\":{},",
                    "\"errors\":{},\"retries\":{},\"p50_us\":{},\"p99_us\":{}}}"
                ),
                k.kind.name(),
                k.issued,
                k.ok,
                k.busy,
                k.errors,
                k.retries,
                k.latency.p50(),
                k.latency.p99(),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"rate_per_sec\":{:.1},\"plan_digest\":\"{}\",\"offered_ops\":{},",
            "\"issued\":{},\"ok\":{},\"busy\":{},\"errors\":{},\"retries\":{},\"late\":{},",
            "\"elapsed_s\":{:.3},\"achieved_rps\":{:.1},",
            "\"shed\":{},\"accepted\":{},\"shed_rate\":{:.4},\"queue_depth_end\":{},",
            "\"p50_us\":{},\"p99_us\":{},\"slo_met\":{},",
            "\"ops\":[{}]}}"
        ),
        r.rate_per_sec,
        r.plan_digest,
        r.offered_ops,
        o.issued,
        o.ok,
        o.busy,
        o.errors,
        o.retries,
        o.late,
        o.elapsed_s,
        o.achieved_rps,
        o.shed,
        o.accepted,
        o.shed_rate(),
        o.queue_depth_end,
        o.overall.p50(),
        o.overall.p99(),
        r.slo_met,
        ops.join(","),
    )
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Tolerances for the CI regression gate. Wall-clock throughput on
/// shared CI runners is noisy, so the band is deliberately wide: the
/// gate catches collapses (a serialization bug halving capacity), not
/// single-digit-percent drift.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// `max_rate_at_slo` may not fall below this fraction of baseline.
    pub min_rate_frac: f64,
    /// The lowest tested rate's shed rate may not exceed baseline's by
    /// more than this (absolute).
    pub shed_rate_slack: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { min_rate_frac: 0.5, shed_rate_slack: 0.10 }
    }
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_num)
}

/// Compare a fresh report against the committed baseline JSON. Returns
/// the list of gate failures (empty = pass); `Err` means the baseline
/// itself could not be understood.
pub fn gate_against_baseline(
    current: &LoadReport,
    baseline_json: &str,
    gate: &GateConfig,
) -> Result<Vec<String>, String> {
    let base = json::parse(baseline_json).map_err(|e| format!("baseline unparsable: {e:?}"))?;
    if base.get("schema").and_then(Value::as_str) != Some("bench-load-v1") {
        return Err("baseline is not a bench-load-v1 document".to_string());
    }
    let mut failures = Vec::new();

    if !current.soak.wal_replay_matches {
        failures.push(format!(
            "soak: WAL replay diverged from live store ({})",
            current.soak.divergence.as_deref().unwrap_or("no detail")
        ));
    }

    // Determinism gate: identical config must replay the identical op
    // sequence. Only comparable when the baseline ran the same config.
    let same_config = num(&base, "seed") == Some(current.seed as f64)
        && num(&base, "users") == Some(f64::from(current.users))
        && num(&base, "zipf_exponent")
            .map(|z| (z - current.zipf_exponent).abs() < 1e-9)
            .unwrap_or(false)
        && base
            .get("rates")
            .and_then(Value::as_arr)
            .map(|arr| {
                arr.len() == current.rates.len()
                    && arr.iter().zip(current.rates.iter()).all(|(b, c)| {
                        num(b, "rate_per_sec")
                            .map(|r| (r - c.rate_per_sec).abs() < 1e-6)
                            .unwrap_or(false)
                    })
            })
            .unwrap_or(false);
    if same_config {
        let base_digest = base.get("plan_digest").and_then(Value::as_str).unwrap_or("");
        if base_digest != current.plan_digest {
            failures.push(format!(
                "determinism: plan digest {} != baseline {} at identical config — \
                 the seeded op sequence is no longer reproducible",
                current.plan_digest, base_digest
            ));
        }
    }

    if let Some(base_rate) = num(&base, "max_rate_at_slo") {
        let floor = base_rate * gate.min_rate_frac;
        if base_rate > 0.0 && current.max_rate_at_slo < floor {
            failures.push(format!(
                "throughput: max_rate_at_slo {:.1}/s fell below {:.1}/s ({}% of baseline {:.1}/s)",
                current.max_rate_at_slo,
                floor,
                (gate.min_rate_frac * 100.0) as u32,
                base_rate
            ));
        }
    }

    let base_low_shed = base
        .get("rates")
        .and_then(Value::as_arr)
        .and_then(|arr| arr.first())
        .and_then(|r| num(r, "shed_rate"));
    if let (Some(base_shed), Some(cur)) = (base_low_shed, current.rates.first()) {
        let cur_shed = cur.outcome.shed_rate();
        if cur_shed > base_shed + gate.shed_rate_slack {
            failures.push(format!(
                "shed behavior: lowest-rate shed rate {:.3} exceeds baseline {:.3} + {:.2} slack",
                cur_shed, base_shed, gate.shed_rate_slack
            ));
        }
    }

    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::KindStats;
    use crate::plan::OpKind;
    use mp_obs::HistogramSnapshot;

    fn fake_report() -> LoadReport {
        let hist = HistogramSnapshot::empty(&mp_obs::DEFAULT_BOUNDS);
        let outcome = RunOutcome {
            elapsed_s: 1.0,
            issued: 10,
            ok: 10,
            busy: 0,
            errors: 0,
            retries: 0,
            late: 0,
            achieved_rps: 10.0,
            overall: hist.clone(),
            per_kind: OpKind::ALL
                .iter()
                .map(|&kind| KindStats {
                    kind,
                    issued: 0,
                    ok: 0,
                    busy: 0,
                    errors: 0,
                    retries: 0,
                    latency: hist.clone(),
                })
                .collect(),
            shed: 0,
            accepted: 10,
            queue_depth_end: 0,
        };
        LoadReport {
            seed: 1,
            users: 4,
            zipf_exponent: 1.0,
            slo: Slo::default(),
            plan_digest: "aaaa".into(),
            rates: vec![RateReport {
                rate_per_sec: 20.0,
                plan_digest: "aaaa".into(),
                offered_ops: 10,
                outcome,
                slo_met: true,
            }],
            max_rate_at_slo: 20.0,
            soak: SoakReport { ops: 10, entries: 4, wal_replay_matches: true, divergence: None },
        }
    }

    #[test]
    fn report_json_parses_back() {
        let r = fake_report();
        let v = json::parse(&r.to_json()).expect("self-emitted JSON must parse");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("bench-load-v1"));
        assert_eq!(num(&v, "max_rate_at_slo"), Some(20.0));
    }

    #[test]
    fn gate_passes_against_own_output() {
        let r = fake_report();
        let failures =
            gate_against_baseline(&r, &r.to_json(), &GateConfig::default()).expect("parse");
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn gate_catches_throughput_collapse_and_digest_drift() {
        let mut r = fake_report();
        let baseline = r.to_json();
        r.max_rate_at_slo = 1.0;
        r.plan_digest = "bbbb".into();
        let failures =
            gate_against_baseline(&r, &baseline, &GateConfig::default()).expect("parse");
        assert!(failures.iter().any(|f| f.contains("throughput")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("determinism")), "{failures:?}");
    }

    #[test]
    fn gate_rejects_wrong_schema() {
        let r = fake_report();
        assert!(gate_against_baseline(&r, "{\"schema\":\"other\"}", &GateConfig::default())
            .is_err());
    }
}
