//! `mp-loadgen`: a deterministic, seeded, *open-loop* load harness for
//! the MyProxy repository.
//!
//! The paper's premise is a credential repository hammered by many
//! portals at once (§3.3); the question a bench must answer is not
//! "how fast is one operation" but "how many requests per second can
//! the repository sustain before its latency objective breaks". That
//! number only means something if the generator is **open-loop**:
//! arrivals are scheduled up front at a fixed rate and dispatched on
//! the wall clock regardless of response latency, so when the server
//! saturates the backlog becomes visible as queue depth, BUSY sheds
//! and retries — a closed-loop client would instead politely slow its
//! own offered load and hide the knee entirely.
//!
//! The moving parts:
//!
//! * [`zipf`] — inverse-CDF zipfian user sampler (heavy users dominate,
//!   long tail of occasional ones).
//! * [`plan`] — the whole run's randomness materialized from one seed:
//!   arrival times, users, op kinds. Byte-reproducible; digested for
//!   the CI determinism gate.
//! * [`harness`] — a live in-process grid (repository behind the
//!   bounded worker pool, durable store on a crash VFS, portal routed
//!   through the same pool) plus the injector-thread runner with a
//!   global retry budget.
//! * [`report`] — the rate sweep, `BENCH_load.json` emission, and the
//!   baseline regression gate.
//!
//! This is test infrastructure first, bench second: every run finishes
//! with the WAL-replay soak oracle — the journal's synced image must
//! reproduce the live store exactly, or the run fails.

pub mod harness;
pub mod plan;
pub mod report;
pub mod zipf;

pub use harness::{run, Fixture, FixtureConfig, KindStats, RunConfig, RunOutcome};
pub use plan::{Mix, OpKind, Plan, PlanConfig, PlannedOp};
pub use report::{
    capacity_sweep, gate_against_baseline, GateConfig, LoadReport, RateReport, Slo, SoakReport,
    SweepConfig,
};
pub use zipf::Zipf;
