//! `bench-load`: the open-loop capacity sweep as a CI step.
//!
//! Runs the seeded plan at each requested arrival rate against a live
//! in-process repository (bounded pool, durable store, portal in the
//! mix), writes `BENCH_load.json`, and — when a committed baseline is
//! given — gates on it: throughput-at-SLO collapse, shed-behavior
//! regression, lost determinism (digest drift at identical config) or
//! a failed soak (WAL replay diverging from the live store) all exit
//! non-zero.
//!
//! ```text
//! bench-load [--rates 15,40] [--duration-s 2.0] [--seed 1] [--users 16]
//!            [--workers 4] [--max-connections 32]
//!            [--slo-p 0.99] [--slo-ms 50]
//!            [--out BENCH_load.json] [--baseline FILE] [--write-baseline FILE]
//! ```

use mp_loadgen::{capacity_sweep, gate_against_baseline, GateConfig, SweepConfig};

fn parse_args() -> (SweepConfig, Args) {
    let mut sweep = SweepConfig::default();
    let mut extra = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--rates" => {
                sweep.rates = take(&mut i)
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().expect("--rates wants comma-separated numbers"))
                    .collect();
            }
            "--duration-s" => sweep.duration_s = take(&mut i).parse().expect("--duration-s"),
            "--seed" => sweep.seed = take(&mut i).parse().expect("--seed"),
            "--users" => sweep.users = take(&mut i).parse().expect("--users"),
            "--workers" => sweep.fixture.workers = take(&mut i).parse().expect("--workers"),
            "--max-connections" => {
                sweep.fixture.max_connections = take(&mut i).parse().expect("--max-connections");
            }
            "--slo-p" => sweep.slo.quantile = take(&mut i).parse().expect("--slo-p"),
            "--slo-ms" => {
                sweep.slo.bound_us =
                    take(&mut i).parse::<u64>().expect("--slo-ms").saturating_mul(1_000);
            }
            "--out" => extra.out = take(&mut i),
            "--baseline" => extra.baseline = Some(take(&mut i)),
            "--write-baseline" => extra.write_baseline = Some(take(&mut i)),
            "--min-rate-frac" => {
                extra.gate.min_rate_frac = take(&mut i).parse().expect("--min-rate-frac");
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if sweep.rates.is_empty() {
        eprintln!("need at least one rate");
        std::process::exit(2);
    }
    (sweep, extra)
}

struct Args {
    out: String,
    baseline: Option<String>,
    write_baseline: Option<String>,
    gate: GateConfig,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            out: "BENCH_load.json".to_string(),
            baseline: None,
            write_baseline: None,
            gate: GateConfig::default(),
        }
    }
}

fn main() {
    let (sweep, args) = parse_args();
    println!(
        "bench-load: seed {}, {} users (zipf s={}), rates {:?} ops/s x {:.1}s, SLO p{:.0} <= {} ms",
        sweep.seed,
        sweep.users,
        sweep.zipf_exponent,
        sweep.rates,
        sweep.duration_s,
        sweep.slo.quantile * 100.0,
        sweep.slo.bound_us / 1_000,
    );
    let report = capacity_sweep(&sweep);

    for r in &report.rates {
        let o = &r.outcome;
        println!(
            "rate {:>6.1}/s  ok {:>4}  busy {:>3}  err {:>3}  retries {:>3}  late {:>3}  \
             shed_rate {:.3}  p50 {:>7}us  p99 {:>7}us  slo_met {}",
            r.rate_per_sec,
            o.ok,
            o.busy,
            o.errors,
            o.retries,
            o.late,
            o.shed_rate(),
            o.overall.p50(),
            o.overall.p99(),
            r.slo_met,
        );
    }
    println!(
        "max sustainable rate at SLO: {:.1}/s   plan digest: {}   soak: {} ops, replay matches = {}",
        report.max_rate_at_slo,
        report.plan_digest,
        report.soak.ops,
        report.soak.wal_replay_matches,
    );

    let json = report.to_json();
    std::fs::write(&args.out, &json).expect("write report JSON");
    println!("wrote {}", args.out);
    if let Some(path) = &args.write_baseline {
        std::fs::write(path, &json).expect("write baseline JSON");
        println!("wrote baseline {path}");
    }

    let mut failed = false;
    if !report.soak.wal_replay_matches {
        eprintln!(
            "FAIL: soak oracle — WAL replay diverged from live store: {}",
            report.soak.divergence.as_deref().unwrap_or("no detail")
        );
        failed = true;
    }
    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(baseline) => match gate_against_baseline(&report, &baseline, &args.gate) {
                Ok(failures) if failures.is_empty() => {
                    println!("baseline gate: PASS ({path})");
                }
                Ok(failures) => {
                    for f in &failures {
                        eprintln!("FAIL: {f}");
                    }
                    failed = true;
                }
                Err(e) => {
                    eprintln!("FAIL: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("FAIL: cannot read baseline {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
