//! The live fixture and the open-loop runner.
//!
//! [`Fixture`] stands up a real repository behind the bounded worker
//! pool (`serve_local`, the same accept/shed/deadline machinery TCP
//! uses), a durable store journaling into an in-memory [`CrashVfs`],
//! and a Grid portal whose repository connector dials *through the
//! pool* — so a portal login competes for the same worker slots as
//! direct client traffic and experiences the same BUSY shedding.
//!
//! [`run`] executes a [`Plan`] open-loop: a stripe of injector threads
//! dispatches each operation at its scheduled arrival time regardless
//! of how long earlier operations took. When the server falls behind,
//! arrivals keep coming — queue depth grows, the pool sheds, GETs
//! retry — and all of it lands in the run's metrics instead of being
//! hidden by client backpressure. Injectors that themselves fall
//! behind schedule increment a `late` counter, making coordinated
//! omission measurable rather than silent.

use crate::plan::{user_name, user_pw, OpKind, Plan};
use mp_crypto::HmacDrbg;
use mp_gsi::net::{NetConfig, QueuePusher, ShutdownHandle};
use mp_gsi::transport::{BoxedTransport, Connector};
use mp_gsi::Credential;
use mp_myproxy::client::{GetParams, InitParams, RetryPolicy};
use mp_myproxy::wal::{CrashVfs, WalConfig};
use mp_myproxy::{MyProxyClient, MyProxyServer, ServerPolicy};
use mp_obs::{Histogram, HistogramSnapshot, Registry};
use mp_portal::browser::BrowserMode;
use mp_portal::portal::{GridPortal, PortalConfig};
use mp_portal::Browser;
use mp_x509::test_util::{test_drbg, test_rsa_key};
use mp_x509::{Certificate, CertificateAuthority, Clock, Dn, SimClock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Virtual mount point of the durable store inside the crash VFS.
pub const STORE_DIR: &str = "/loadgen-store";

/// Server-side shape of the fixture.
#[derive(Clone, Debug)]
pub struct FixtureConfig {
    /// Pool worker threads.
    pub workers: usize,
    /// Admission cap (queued + in flight) before BUSY shedding.
    pub max_connections: usize,
    /// Simulated user population; every user is pre-seeded with one
    /// stored credential so GETs always have something to retrieve.
    pub users: u32,
}

impl Default for FixtureConfig {
    fn default() -> Self {
        FixtureConfig { workers: 4, max_connections: 32, users: 16 }
    }
}

/// A live in-process grid: repository behind the bounded pool, durable
/// store on a crash-consistent VFS, portal routed through the pool.
pub struct Fixture {
    /// The repository.
    pub server: MyProxyServer,
    /// The journal's backing VFS (the soak oracle replays its synced
    /// image).
    pub vfs: Arc<CrashVfs>,
    /// Client pinned to the repository identity.
    pub client: MyProxyClient,
    /// The credential every simulated user presents (identity does not
    /// matter under the permissive policy; usernames partition the
    /// store).
    pub user_cred: Credential,
    /// Trust roots.
    pub roots: Vec<Certificate>,
    /// The portal (its MyProxy connector dials through the pool).
    pub portal: Arc<GridPortal>,
    /// Simulated clock (time does not advance during a run).
    pub clock: SimClock,
    /// PBKDF2 iterations the store seals with (needed by the replay
    /// oracle).
    pub pbkdf2_iters: u32,
    push: Arc<QueuePusher<mp_gsi::net::BoxedConn>>,
    pool: Option<ShutdownHandle>,
    config: FixtureConfig,
}

impl Fixture {
    /// Stand the world up and pre-seed one credential per user (the
    /// seeding PUTs run outside the pool so they do not perturb shed
    /// counters).
    pub fn new(config: FixtureConfig) -> Fixture {
        let clock = SimClock::new(mp_x509::time::HPDC_2001);
        let mut ca = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=Loadgen CA").expect("static DN"),
            test_rsa_key(0).clone(),
            0,
            mp_x509::time::HPDC_2001 + 10 * 365 * 24 * 3600,
        )
        .expect("root CA");
        let expiry = mp_x509::time::HPDC_2001 + 365 * 24 * 3600;
        let mut mk = |idx: usize, dn_str: &str| {
            let key = test_rsa_key(idx);
            let d = Dn::parse(dn_str).expect("static DN");
            let cert = ca.issue_end_entity(&d, key.public_key(), 0, expiry).expect("issue");
            Credential::new(vec![cert], key.clone()).expect("credential")
        };
        let user_cred = mk(1, "/O=Grid/CN=loadgen-user");
        let portal_cred = mk(3, "/O=Grid/OU=SDSC/CN=portal.sdsc.edu");
        let myproxy_dn = "/O=Grid/OU=NCSA/CN=myproxy.ncsa.edu";
        let myproxy_cred = mk(4, myproxy_dn);
        let roots = vec![ca.certificate().clone()];

        let server = MyProxyServer::new(
            myproxy_cred,
            roots.clone(),
            ServerPolicy::permissive(),
            Arc::new(clock.clone()),
            HmacDrbg::new(b"loadgen myproxy seed"),
        );
        let pbkdf2_iters = ServerPolicy::permissive().pbkdf2_iterations;
        let vfs = Arc::new(CrashVfs::new());
        server
            .enable_durability_with(
                Path::new(STORE_DIR),
                vfs.clone(),
                WalConfig { compact_every: 0, group_commit: true },
            )
            .expect("attach durable store");

        let net = NetConfig {
            workers: config.workers,
            max_connections: config.max_connections,
            ..NetConfig::default()
        };
        let (push, pool) = server.serve_local(net).expect("serve pool");
        let push = Arc::new(push);

        let client = MyProxyClient::new(roots.clone(), Some(Dn::parse(myproxy_dn).expect("DN")));
        let pool_connector = Self::connector_via(&push);
        let portal = Arc::new(GridPortal::new(PortalConfig {
            credential: portal_cred,
            trust_roots: roots.clone(),
            myproxy: pool_connector,
            myproxy_identity: Some(Dn::parse(myproxy_dn).expect("DN")),
            jobmanager: None,
            storage: None,
            clock: Arc::new(clock.clone()),
            require_tls: true,
            rng: HmacDrbg::new(b"loadgen portal seed"),
        }));

        let fixture = Fixture {
            server,
            vfs,
            client,
            user_cred,
            roots,
            portal,
            clock,
            pbkdf2_iters,
            push,
            pool: Some(pool),
            config,
        };
        fixture.seed_users();
        fixture
    }

    fn connector_via(push: &Arc<QueuePusher<mp_gsi::net::BoxedConn>>) -> Connector {
        let push = push.clone();
        Arc::new(move || {
            let (client_end, server_end) = mp_gsi::duplex();
            push.push(Box::new(server_end))?;
            Ok(Box::new(client_end) as BoxedTransport)
        })
    }

    /// A connector dialing the repository through the bounded pool —
    /// every connection competes for worker slots and can be shed.
    pub fn pool_connector(&self) -> Connector {
        Self::connector_via(&self.push)
    }

    /// Dial one pooled connection.
    pub fn dial(&self) -> std::io::Result<BoxedTransport> {
        let (client_end, server_end) = mp_gsi::duplex();
        self.push.push(Box::new(server_end))?;
        Ok(Box::new(client_end) as BoxedTransport)
    }

    /// A browser pointed at the portal over HTTPS-sim; each portal
    /// connection gets a dedicated handler thread, and the portal's
    /// backend GET rides the bounded pool.
    pub fn browser(&self, label: &str) -> Browser {
        let portal = self.portal.clone();
        let connector: Connector = Arc::new(move || {
            let (client_end, server_end) = mp_gsi::duplex();
            let portal = portal.clone();
            std::thread::spawn(move || {
                let _ = portal.serve_tls(server_end);
            });
            Ok(Box::new(client_end) as BoxedTransport)
        });
        Browser::new(
            connector,
            BrowserMode::Tls { roots: self.roots.clone(), expected: None },
            test_drbg(label),
            self.clock.now(),
        )
    }

    /// One seeding PUT per user, via direct (unpooled) connections.
    fn seed_users(&self) {
        let now = self.clock.now();
        for u in 0..self.config.users {
            let mut rng = test_drbg(&format!("seed-user-{u}"));
            let uname = user_name(u);
            let pw = user_pw(u);
            self.client
                .init(
                    self.server.connect_local(),
                    &self.user_cred,
                    &InitParams::new(&uname, &pw),
                    &mut rng,
                    now,
                )
                .unwrap_or_else(|e| panic!("seeding user {u} failed: {e}"));
        }
        self.server.drain_local_handlers();
    }

    /// Current pool counters, read live from the server registry (the
    /// registry interns by name, so these are the pool's own cells).
    pub fn net_shed(&self) -> u64 {
        self.server.obs().counter("net.myproxy.shed").get()
    }
    /// Connections the pool accepted.
    pub fn net_accepted(&self) -> u64 {
        self.server.obs().counter("net.myproxy.accepted").get()
    }
    /// Live worker-queue depth.
    pub fn net_queue_depth(&self) -> u64 {
        self.server.obs().gauge("net.myproxy.queue_depth").get()
    }

    /// Drain the pool and every detached handler: after this returns no
    /// server-side mutation is in flight, so store and journal are
    /// stable for the soak oracle.
    pub fn quiesce(&mut self) {
        self.server.drain_local_handlers();
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }

    /// The soak oracle: replay the synced journal image and diff
    /// against the live store. `None` = zero lost updates. Call after
    /// [`quiesce`](Self::quiesce).
    pub fn soak_divergence(&self) -> Option<String> {
        mp_myproxy::testutil::replay_divergence(
            self.server.store(),
            &self.vfs,
            Path::new(STORE_DIR),
            self.pbkdf2_iters,
        )
    }

    /// Stored entries currently live.
    pub fn store_entries(&self) -> usize {
        self.server.store().len()
    }
}

/// Client-side knobs for one run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Injector threads dispatching the schedule.
    pub injectors: usize,
    /// Retry policy for idempotent ops (GET/INFO). PUT never retries —
    /// there is no retrying PUT path at all.
    pub retry: RetryPolicy,
    /// Global retry budget for the whole run: the total number of
    /// *extra* attempts the run may spend riding out BUSY. Caps
    /// retry-storm amplification of offered load.
    pub retry_budget: u64,
    /// Dispatch later than this after the scheduled arrival counts as
    /// `late` (the open-loop generator itself falling behind).
    pub late_tolerance_us: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            injectors: 8,
            // Fast retries for in-process runs: cap below the server's
            // 200 ms retry-after hint so tests stay quick.
            retry: RetryPolicy { max_attempts: 3, base_delay_ms: 2, max_delay_ms: 20, jitter_seed: 1 },
            retry_budget: 64,
            late_tolerance_us: 2_000,
        }
    }
}

/// Global retry-token pool.
struct RetryBudget {
    left: AtomicU64,
}

impl RetryBudget {
    fn new(tokens: u64) -> RetryBudget {
        RetryBudget { left: AtomicU64::new(tokens) }
    }

    /// Take up to `want` tokens; returns how many were granted.
    fn reserve(&self, want: u64) -> u64 {
        let mut granted = 0;
        let _ = self.left.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            granted = cur.min(want);
            Some(cur - granted)
        });
        granted
    }

    /// Return unused tokens.
    fn release(&self, n: u64) {
        self.left.fetch_add(n, Ordering::Relaxed);
    }
}

/// Terminal classification of one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpOutcome {
    Ok,
    Busy,
    Error,
}

/// Per-kind tallies of a finished run.
#[derive(Clone, Debug)]
pub struct KindStats {
    /// The op kind.
    pub kind: OpKind,
    /// Operations dispatched.
    pub issued: u64,
    /// Completed successfully (possibly after retries).
    pub ok: u64,
    /// Terminally shed: BUSY after the retry allowance ran out (or
    /// immediately, for non-retried kinds).
    pub busy: u64,
    /// Any other failure.
    pub errors: u64,
    /// Extra attempts spent riding out BUSY/transient errors.
    pub retries: u64,
    /// Latency of successful operations.
    pub latency: HistogramSnapshot,
}

/// Everything measured in one fixed-rate run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Wall-clock duration of the dispatch phase.
    pub elapsed_s: f64,
    /// Total operations dispatched.
    pub issued: u64,
    /// Successes.
    pub ok: u64,
    /// Terminal BUSY.
    pub busy: u64,
    /// Other errors.
    pub errors: u64,
    /// Total retries spent (≤ the configured budget).
    pub retries: u64,
    /// Dispatches later than the tolerance — the generator itself
    /// falling behind schedule (coordinated-omission indicator).
    pub late: u64,
    /// Successful ops per second of elapsed time.
    pub achieved_rps: f64,
    /// Latency over all successful operations.
    pub overall: HistogramSnapshot,
    /// Per-kind breakdown, in [`OpKind::ALL`] order.
    pub per_kind: Vec<KindStats>,
    /// Pool sheds during the run (server side).
    pub shed: u64,
    /// Pool accepts during the run (server side).
    pub accepted: u64,
    /// Worker-queue depth when the run ended (should drain to 0 after
    /// quiesce).
    pub queue_depth_end: u64,
}

impl RunOutcome {
    /// Shed fraction: sheds per accepted connection.
    pub fn shed_rate(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.shed as f64 / self.accepted as f64
        }
    }
}

struct RunMetrics {
    registry: Registry,
    late: AtomicU64,
}

impl RunMetrics {
    fn new() -> RunMetrics {
        RunMetrics { registry: Registry::new(), late: AtomicU64::new(0) }
    }

    fn hist(&self, kind: OpKind) -> Histogram {
        self.registry.histogram(&format!("loadgen.{}", kind.name()))
    }

    fn overall(&self) -> Histogram {
        self.registry.histogram("loadgen.op")
    }

    fn count(&self, kind: OpKind, which: &str) -> mp_obs::Counter {
        self.registry.counter(&format!("loadgen.{}.{which}", kind.name()))
    }
}

/// Execute `plan` against `fixture` open-loop. Returns the measured
/// outcome; the fixture stays up (callers quiesce it before the soak
/// check).
pub fn run(fixture: &Fixture, plan: &Plan, cfg: &RunConfig) -> RunOutcome {
    let metrics = RunMetrics::new();
    let budget = RetryBudget::new(cfg.retry_budget);
    let shed_before = fixture.net_shed();
    let accepted_before = fixture.net_accepted();
    let injectors = cfg.injectors.max(1);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for lane in 0..injectors {
            let metrics = &metrics;
            let budget = &budget;
            scope.spawn(move || {
                for (i, op) in plan.ops.iter().enumerate() {
                    if i % injectors != lane {
                        continue;
                    }
                    let target = Duration::from_micros(op.at_micros);
                    let now = start.elapsed();
                    if now < target {
                        std::thread::sleep(target - now);
                    } else if now - target > Duration::from_micros(cfg.late_tolerance_us) {
                        metrics.late.fetch_add(1, Ordering::Relaxed);
                    }
                    execute_one(fixture, plan, cfg, metrics, budget, i, op.user, op.kind);
                }
            });
        }
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let snap = |kind: OpKind, which: &str| metrics.count(kind, which).get();
    let per_kind: Vec<KindStats> = OpKind::ALL
        .iter()
        .map(|&kind| KindStats {
            kind,
            issued: snap(kind, "issued"),
            ok: snap(kind, "ok"),
            busy: snap(kind, "busy"),
            errors: snap(kind, "error"),
            retries: snap(kind, "retries"),
            latency: metrics.hist(kind).snapshot(),
        })
        .collect();
    let sum = |f: fn(&KindStats) -> u64| per_kind.iter().map(f).sum::<u64>();
    let ok = sum(|k| k.ok);
    RunOutcome {
        elapsed_s,
        issued: sum(|k| k.issued),
        ok,
        busy: sum(|k| k.busy),
        errors: sum(|k| k.errors),
        retries: sum(|k| k.retries),
        late: metrics.late.load(Ordering::Relaxed),
        achieved_rps: if elapsed_s > 0.0 { ok as f64 / elapsed_s } else { 0.0 },
        overall: metrics.overall().snapshot(),
        per_kind,
        shed: fixture.net_shed().saturating_sub(shed_before),
        accepted: fixture.net_accepted().saturating_sub(accepted_before),
        queue_depth_end: fixture.net_queue_depth(),
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_one(
    fixture: &Fixture,
    plan: &Plan,
    cfg: &RunConfig,
    metrics: &RunMetrics,
    budget: &RetryBudget,
    index: usize,
    user: u32,
    kind: OpKind,
) {
    metrics.count(kind, "issued").inc();
    let started = Instant::now();
    let (outcome, retries) = match kind {
        OpKind::Put => (do_put(fixture, plan, index, user), 0),
        OpKind::Get => do_idempotent(fixture, plan, cfg, budget, index, user, false),
        OpKind::Info => do_idempotent(fixture, plan, cfg, budget, index, user, true),
        OpKind::PortalLogin => (do_portal_login(fixture, index, user), 0),
    };
    metrics.count(kind, "retries").add(retries);
    match outcome {
        OpOutcome::Ok => {
            metrics.count(kind, "ok").inc();
            let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            metrics.hist(kind).record(us);
            metrics.overall().record(us);
        }
        OpOutcome::Busy => metrics.count(kind, "busy").inc(),
        OpOutcome::Error => metrics.count(kind, "error").inc(),
    }
}

fn op_rng(plan: &Plan, index: usize) -> StdRng {
    StdRng::seed_from_u64(
        plan.config.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

fn classify(e: &mp_myproxy::MyProxyError) -> OpOutcome {
    if e.is_busy() {
        OpOutcome::Busy
    } else {
        OpOutcome::Error
    }
}

/// PUT: one attempt, ever. Deposits are not idempotent from the
/// client's vantage point (a retry could double-journal a deposit it
/// cannot confirm), so a shed PUT surfaces as BUSY to the caller.
fn do_put(fixture: &Fixture, plan: &Plan, index: usize, user: u32) -> OpOutcome {
    let mut rng = op_rng(plan, index);
    let uname = user_name(user);
    let pw = user_pw(user);
    let transport = match fixture.dial() {
        Ok(t) => t,
        Err(_) => return OpOutcome::Error,
    };
    match fixture.client.init(
        transport,
        &fixture.user_cred,
        &InitParams::new(&uname, &pw),
        &mut rng,
        fixture.clock.now(),
    ) {
        Ok(_) => OpOutcome::Ok,
        Err(e) => classify(&e),
    }
}

/// GET/INFO: idempotent, retried under the run's global budget. Each
/// op reserves at most `max_attempts - 1` tokens up front and returns
/// what it does not spend, so total retries across the run can never
/// exceed the budget.
fn do_idempotent(
    fixture: &Fixture,
    plan: &Plan,
    cfg: &RunConfig,
    budget: &RetryBudget,
    index: usize,
    user: u32,
    info: bool,
) -> (OpOutcome, u64) {
    let mut rng = op_rng(plan, index);
    let uname = user_name(user);
    let pw = user_pw(user);
    let now = fixture.clock.now();
    let want = u64::from(cfg.retry.max_attempts.saturating_sub(1));
    let reserved = budget.reserve(want);
    let policy = RetryPolicy {
        max_attempts: 1 + u32::try_from(reserved).unwrap_or(u32::MAX),
        ..cfg.retry
    };
    let (result, attempts) = policy.run_counted(|| {
        let transport = fixture
            .dial()
            .map_err(|e| mp_myproxy::MyProxyError::Gsi(mp_gsi::GsiError::Io(e)))?;
        if info {
            fixture
                .client
                .info(transport, &fixture.user_cred, &uname, &pw, &mut rng, now)
                .map(|_| ())
        } else {
            let params = GetParams::new(&uname, &pw);
            fixture
                .client
                .get_delegation(transport, &fixture.user_cred, &params, &mut rng, now)
                .map(|_| ())
        }
    });
    let spent = u64::from(attempts.saturating_sub(1));
    budget.release(reserved.saturating_sub(spent));
    let outcome = match result {
        Ok(()) => OpOutcome::Ok,
        Err(e) => classify(&e),
    };
    (outcome, spent)
}

/// Portal round trip: login (the portal GETs a delegation through the
/// pool on the user's behalf) then logout.
fn do_portal_login(fixture: &Fixture, index: usize, user: u32) -> OpOutcome {
    let mut b = fixture.browser(&format!("lg-browser-{index}"));
    let uname = user_name(user);
    let pw = user_pw(user);
    match b.login(&uname, &pw) {
        Ok(resp) if resp.status == 200 => {
            let _ = b.logout();
            OpOutcome::Ok
        }
        Ok(resp) => {
            if resp.text().to_ascii_lowercase().contains("busy") {
                OpOutcome::Busy
            } else {
                OpOutcome::Error
            }
        }
        Err(e) => {
            if format!("{e}").to_ascii_lowercase().contains("busy") {
                OpOutcome::Busy
            } else {
                OpOutcome::Error
            }
        }
    }
}
