//! Edge-case tests of the secure channel: truncation at every
//! handshake stage, message-type confusion, and mismatched
//! configurations. A broken or malicious peer must produce a clean
//! error on the other side — never a hang, panic, or silent success.

use mp_gsi::record::{read_frame, write_frame};
use mp_gsi::transport::duplex;
use mp_gsi::{ChannelConfig, Credential, GsiError, SecureChannel};
use mp_x509::test_util::{test_drbg, test_rsa_key};
use mp_x509::{CertificateAuthority, Dn};

struct Pki {
    ca: CertificateAuthority,
    alice: Credential,
    server: Credential,
}

fn pki() -> Pki {
    let mut ca = CertificateAuthority::new_root(
        Dn::parse("/O=Grid/CN=CA").unwrap(),
        test_rsa_key(0).clone(),
        0,
        1_000_000,
    )
    .unwrap();
    let mk = |ca: &mut CertificateAuthority, i: usize, dn: &str| {
        let key = test_rsa_key(i);
        let dn = Dn::parse(dn).unwrap();
        let cert = ca.issue_end_entity(&dn, key.public_key(), 0, 500_000).unwrap();
        Credential::new(vec![cert], key.clone()).unwrap()
    };
    let alice = mk(&mut ca, 1, "/O=Grid/CN=alice");
    let server = mk(&mut ca, 2, "/O=Grid/CN=server");
    Pki { ca, alice, server }
}

fn cfg(p: &Pki) -> ChannelConfig {
    ChannelConfig::new(vec![p.ca.certificate().clone()])
}

/// Server sees EOF right after ClientHello.
#[test]
fn server_handles_eof_after_hello() {
    let p = pki();
    let (mut ct, st) = duplex();
    let server = p.server.clone();
    let config = cfg(&p);
    let h = std::thread::spawn(move || {
        let mut rng = test_drbg("eof server");
        SecureChannel::accept(st, &server, &config, &mut rng, 100)
    });
    // Minimal well-formed ClientHello, then hang up.
    let mut hello = vec![1u8];
    hello.extend_from_slice(&32u32.to_be_bytes());
    hello.extend_from_slice(&[9u8; 32]);
    write_frame(&mut ct, &hello).unwrap();
    drop(ct);
    assert!(matches!(h.join().unwrap(), Err(GsiError::Io(_))));
}

/// Client sees EOF right after sending ClientHello (server vanishes).
#[test]
fn client_handles_vanishing_server() {
    let p = pki();
    let (ct, st) = duplex();
    drop(st);
    let mut rng = test_drbg("vanish client");
    let res = SecureChannel::connect(ct, &p.alice, &cfg(&p), &mut rng, 100);
    assert!(matches!(res, Err(GsiError::Io(_))));
}

/// A peer that answers ClientHello with the wrong message type.
#[test]
fn client_rejects_wrong_message_type() {
    let p = pki();
    let (ct, mut st) = duplex();
    let h = std::thread::spawn(move || {
        // Read the hello, reply with a Finished (type 4) out of order.
        let _ = read_frame(&mut st).unwrap();
        let mut bogus = vec![4u8];
        bogus.extend_from_slice(&32u32.to_be_bytes());
        bogus.extend_from_slice(&[0u8; 32]);
        write_frame(&mut st, &bogus).unwrap();
        st
    });
    let mut rng = test_drbg("wrong type");
    let res = SecureChannel::connect(ct, &p.alice, &cfg(&p), &mut rng, 100);
    assert!(matches!(res, Err(GsiError::Protocol(_))));
    let _ = h.join();
}

/// A peer that sends an empty certificate list.
#[test]
fn client_rejects_empty_server_chain() {
    let p = pki();
    let (ct, mut st) = duplex();
    let h = std::thread::spawn(move || {
        let _ = read_frame(&mut st).unwrap();
        let mut sh = vec![2u8]; // MSG_SERVER_HELLO
        sh.extend_from_slice(&32u32.to_be_bytes());
        sh.extend_from_slice(&[1u8; 32]);
        sh.extend_from_slice(&0u32.to_be_bytes()); // zero certs
        write_frame(&mut st, &sh).unwrap();
        st
    });
    let mut rng = test_drbg("empty chain");
    let res = SecureChannel::connect(ct, &p.alice, &cfg(&p), &mut rng, 100);
    assert!(res.is_err());
    let _ = h.join();
}

/// Both sides configured but with clocks far apart: the certificate
/// windows don't overlap the validator's time and the handshake fails.
#[test]
fn time_disagreement_fails_validation() {
    let p = pki();
    let (ct, st) = duplex();
    let server = p.server.clone();
    let config = cfg(&p);
    let h = std::thread::spawn(move || {
        let mut rng = test_drbg("time server");
        SecureChannel::accept(st, &server, &config, &mut rng, 100)
    });
    let mut rng = test_drbg("time client");
    // The client thinks it's long past every certificate's expiry.
    let res = SecureChannel::connect(ct, &p.alice, &cfg(&p), &mut rng, 10_000_000);
    assert!(matches!(res, Err(GsiError::Chain(_))));
    let _ = h.join();
}

/// After a successful handshake, a truncated record errors (not hangs)
/// on EOF.
#[test]
fn truncated_record_after_handshake() {
    let p = pki();
    let (ct, st) = duplex();
    let server = p.server.clone();
    let config = cfg(&p);
    let h = std::thread::spawn(move || {
        let mut rng = test_drbg("trunc server");
        let mut ch = SecureChannel::accept(st, &server, &config, &mut rng, 100).unwrap();
        ch.recv()
    });
    let mut rng = test_drbg("trunc client");
    let ch = SecureChannel::connect(ct, &p.alice, &cfg(&p), &mut rng, 100).unwrap();
    // Drop without sending: server's recv must return an error.
    drop(ch);
    assert!(h.join().unwrap().is_err());
}

/// Two sessions between the same parties with the same client seed but
/// fresh server randomness produce different ciphertext for the same
/// plaintext — sessions never share keys.
#[test]
fn sessions_have_independent_keys() {
    let p = pki();
    let run = |server_label: String| {
        let (ct, st) = duplex();
        let (ct_tapped, log) = mp_gsi::transport::Tap::new(ct);
        let server = p.server.clone();
        let config = cfg(&p);
        let h = std::thread::spawn(move || {
            let mut rng = test_drbg(&server_label);
            let mut ch = SecureChannel::accept(st, &server, &config, &mut rng, 100).unwrap();
            ch.recv().unwrap()
        });
        // Same client seed both times: only the server random differs.
        let mut rng = test_drbg("same client seed");
        let mut c = SecureChannel::connect(ct_tapped, &p.alice, &cfg(&p), &mut rng, 100).unwrap();
        c.send(b"identical plaintext").unwrap();
        assert_eq!(h.join().unwrap(), b"identical plaintext");
        let bytes = log.lock().sent.clone();
        bytes
    };
    let wire1 = run("indep server 1".into());
    let wire2 = run("indep server 2".into());
    // The data record is the last frame on each wire; with session keys
    // bound to the server random, the sealed bytes must differ.
    assert_ne!(wire1, wire2, "two sessions produced identical wire bytes");
}
