//! DN-pattern access control lists.
//!
//! Paper §5.1: "A list of authorized clients is defined by two access
//! control lists, one for clients allowed to delegate to the repository
//! (typically users), and a second for clients allowed to request
//! delegations from the repository (typically portals)." This module is
//! that list type; `mp-myproxy` instantiates it twice.

use mp_x509::Dn;

/// One allow pattern: a DN string where a trailing `*` matches any
/// suffix, matching the style of real `myproxy-server.config` entries
/// like `authorized_retrievers "/O=Grid/CN=*"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnPattern {
    prefix: String,
    wildcard: bool,
}

impl DnPattern {
    /// Parse a pattern. `*` is only honoured at the end.
    pub fn new(pattern: &str) -> Self {
        match pattern.strip_suffix('*') {
            Some(prefix) => DnPattern { prefix: prefix.to_string(), wildcard: true },
            None => DnPattern { prefix: pattern.to_string(), wildcard: false },
        }
    }

    /// Does `dn` match?
    pub fn matches(&self, dn: &Dn) -> bool {
        let s = dn.to_string();
        if self.wildcard {
            s.starts_with(&self.prefix)
        } else {
            s == self.prefix
        }
    }
}

/// An ordered list of allow patterns; **default deny**.
///
/// ```
/// use mp_gsi::AccessControlList;
/// use mp_x509::Dn;
/// let acl = AccessControlList::from_patterns(["/O=Grid/OU=NCSA/*", "/O=Grid/CN=alice"]);
/// assert!(acl.is_authorized(&Dn::parse("/O=Grid/OU=NCSA/CN=portal1").unwrap()));
/// assert!(acl.is_authorized(&Dn::parse("/O=Grid/CN=alice").unwrap()));
/// assert!(!acl.is_authorized(&Dn::parse("/O=Grid/CN=mallory").unwrap()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessControlList {
    patterns: Vec<DnPattern>,
}

impl AccessControlList {
    /// Empty list: denies everyone.
    pub fn deny_all() -> Self {
        Self::default()
    }

    /// Build from pattern strings.
    pub fn from_patterns<S: AsRef<str>>(patterns: impl IntoIterator<Item = S>) -> Self {
        AccessControlList {
            patterns: patterns.into_iter().map(|p| DnPattern::new(p.as_ref())).collect(),
        }
    }

    /// Add one pattern.
    pub fn allow(&mut self, pattern: &str) {
        self.patterns.push(DnPattern::new(pattern));
    }

    /// Is `dn` authorized?
    pub fn is_authorized(&self, dn: &Dn) -> bool {
        self.patterns.iter().any(|p| p.matches(dn))
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no patterns are present (deny-all).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        Dn::parse(s).unwrap()
    }

    #[test]
    fn default_deny() {
        let acl = AccessControlList::deny_all();
        assert!(!acl.is_authorized(&dn("/O=Grid/CN=alice")));
        assert!(acl.is_empty());
    }

    #[test]
    fn exact_match() {
        let acl = AccessControlList::from_patterns(["/O=Grid/CN=alice"]);
        assert!(acl.is_authorized(&dn("/O=Grid/CN=alice")));
        assert!(!acl.is_authorized(&dn("/O=Grid/CN=alicea")));
        assert!(!acl.is_authorized(&dn("/O=Grid/CN=bob")));
    }

    #[test]
    fn wildcard_prefix_match() {
        let acl = AccessControlList::from_patterns(["/O=Grid/OU=NCSA/*"]);
        assert!(acl.is_authorized(&dn("/O=Grid/OU=NCSA/CN=portal1")));
        assert!(acl.is_authorized(&dn("/O=Grid/OU=NCSA/CN=portal2")));
        assert!(!acl.is_authorized(&dn("/O=Grid/OU=SDSC/CN=portal")));
    }

    #[test]
    fn bare_star_matches_everyone() {
        let acl = AccessControlList::from_patterns(["*"]);
        assert!(acl.is_authorized(&dn("/O=Anything/CN=at all")));
    }

    #[test]
    fn multiple_patterns_any_match() {
        let mut acl = AccessControlList::from_patterns(["/O=Grid/CN=alice"]);
        acl.allow("/O=Grid/CN=portal*");
        assert!(acl.is_authorized(&dn("/O=Grid/CN=alice")));
        assert!(acl.is_authorized(&dn("/O=Grid/CN=portal.sdsc.edu")));
        assert!(!acl.is_authorized(&dn("/O=Grid/CN=mallory")));
        assert_eq!(acl.len(), 2);
    }

    #[test]
    fn proxy_dn_does_not_match_user_exact_pattern() {
        // A proxy's *subject* has an extra CN; ACLs match effective
        // identity, and this shows why exact patterns must be applied to
        // the validated identity, not the leaf subject.
        let acl = AccessControlList::from_patterns(["/O=Grid/CN=alice"]);
        assert!(!acl.is_authorized(&dn("/O=Grid/CN=alice/CN=proxy")));
    }
}
