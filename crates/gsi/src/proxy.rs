//! `grid-proxy-init`: local proxy-credential creation (paper §2.3, §2.5).
//!
//! "A typical session with GSI would involve the user using their pass
//! phrase and a GSI tool called grid-proxy-init to create a proxy
//! credential from their long-term credential."

use crate::credential::Credential;
use crate::Result;
use mp_crypto::rsa::RsaPrivateKey;
use mp_x509::{CertBuilder, ProxyPolicy};
use rand::Rng;

/// Allowance for clock skew between hosts when back-dating notBefore.
pub const CLOCK_SKEW_SLACK: u64 = 300;

/// Options for proxy creation / delegation.
#[derive(Clone, Debug)]
pub struct ProxyOptions {
    /// Requested proxy lifetime in seconds. Always clipped to the
    /// remaining lifetime of the signing credential. Default 12 hours
    /// ("usually on the order of hours or days", §2.3).
    pub lifetime_secs: u64,
    /// RSA modulus size for the fresh proxy key.
    pub key_bits: usize,
    /// Rights policy for the new proxy.
    pub policy: ProxyPolicy,
    /// Optional cap on further delegation depth below the new proxy.
    pub path_len: Option<u64>,
}

impl Default for ProxyOptions {
    fn default() -> Self {
        ProxyOptions {
            lifetime_secs: 12 * 3600,
            key_bits: 512,
            policy: ProxyPolicy::InheritAll,
            path_len: None,
        }
    }
}

impl ProxyOptions {
    /// Builder: set lifetime.
    pub fn with_lifetime(mut self, secs: u64) -> Self {
        self.lifetime_secs = secs;
        self
    }

    /// Builder: set policy.
    pub fn with_policy(mut self, policy: ProxyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The proxy CN component for this policy, following pre-RFC GSI
    /// convention ("proxy" / "limited proxy").
    pub fn proxy_cn(&self) -> &'static str {
        match self.policy {
            ProxyPolicy::Limited => "limited proxy",
            ProxyPolicy::Restricted(_) => "restricted proxy",
            _ => "proxy",
        }
    }
}

/// Create a proxy credential from `signer` — a fresh keypair and a proxy
/// certificate signed by the signer's key. Works both for the user's
/// local `grid-proxy-init` (signer = long-term credential) and for
/// further chaining (signer = another proxy).
pub fn grid_proxy_init<R: Rng + ?Sized>(
    signer: &Credential,
    opts: &ProxyOptions,
    rng: &mut R,
    now: u64,
) -> Result<Credential> {
    let proxy_key = RsaPrivateKey::generate(rng, opts.key_bits);
    let cert = sign_proxy_cert(signer, opts, proxy_key.public_key(), rng, now)?;
    let mut chain = Vec::with_capacity(signer.chain().len() + 1);
    chain.push(cert);
    chain.extend_from_slice(signer.chain());
    Credential::new(chain, proxy_key)
}

/// Sign a proxy certificate binding `subject_key` below `signer`. This
/// is the signing half of delegation: the key belongs to the *remote*
/// party and never touches this host (paper §2.4).
pub fn sign_proxy_cert<R: Rng + ?Sized>(
    signer: &Credential,
    opts: &ProxyOptions,
    subject_key: &mp_crypto::rsa::RsaPublicKey,
    rng: &mut R,
    now: u64,
) -> Result<mp_x509::Certificate> {
    // A proxy can never outlive the credential that signs it.
    let signer_expiry = signer
        .chain()
        .iter()
        .map(|c| c.not_after())
        .min()
        .expect("credential chain nonempty");
    let not_after = (now + opts.lifetime_secs).min(signer_expiry);
    let not_before = now.saturating_sub(CLOCK_SKEW_SLACK);
    let subject = signer.subject().with_cn(opts.proxy_cn());
    Ok(CertBuilder::new(subject, not_before, not_after)
        .random_serial(rng)
        .proxy(opts.policy.clone(), opts.path_len)
        .sign(signer.subject(), signer.key(), subject_key)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_x509::test_util::{test_drbg, test_rsa_key};
    use mp_x509::{validate_chain, CertificateAuthority, Dn};

    fn user_credential() -> (CertificateAuthority, Credential) {
        let mut ca = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let key = test_rsa_key(1);
        let dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        let cert = ca.issue_end_entity(&dn, key.public_key(), 0, 500_000).unwrap();
        (ca, Credential::new(vec![cert], key.clone()).unwrap())
    }

    #[test]
    fn proxy_init_produces_valid_chain() {
        let (ca, user) = user_credential();
        let mut rng = test_drbg("proxy-init");
        let proxy = grid_proxy_init(&user, &ProxyOptions::default(), &mut rng, 1000).unwrap();
        assert!(proxy.is_proxy());
        assert_eq!(proxy.chain().len(), 2);
        let roots = [ca.certificate().clone()];
        let v = validate_chain(proxy.chain(), &roots, 1000, &Default::default()).unwrap();
        assert_eq!(&v.identity, user.subject());
        assert_eq!(v.proxy_depth, 1);
    }

    #[test]
    fn proxy_lifetime_clipped_to_signer() {
        let (_ca, user) = user_credential();
        let mut rng = test_drbg("clip");
        let opts = ProxyOptions::default().with_lifetime(10_000_000);
        let proxy = grid_proxy_init(&user, &opts, &mut rng, 1000).unwrap();
        assert_eq!(proxy.leaf().not_after(), 500_000, "clipped to user cert expiry");
    }

    #[test]
    fn proxy_notbefore_allows_clock_skew() {
        let (_ca, user) = user_credential();
        let mut rng = test_drbg("skew");
        let proxy = grid_proxy_init(&user, &ProxyOptions::default(), &mut rng, 1000).unwrap();
        assert_eq!(proxy.leaf().not_before(), 700);
    }

    #[test]
    fn limited_proxy_gets_limited_cn_and_policy() {
        let (ca, user) = user_credential();
        let mut rng = test_drbg("limited");
        let opts = ProxyOptions::default().with_policy(ProxyPolicy::Limited);
        let proxy = grid_proxy_init(&user, &opts, &mut rng, 1000).unwrap();
        assert_eq!(proxy.subject().last_cn(), Some("limited proxy"));
        let roots = [ca.certificate().clone()];
        let v = validate_chain(proxy.chain(), &roots, 1000, &Default::default()).unwrap();
        assert!(v.is_limited);
    }

    #[test]
    fn chained_proxy_init() {
        let (ca, user) = user_credential();
        let mut rng = test_drbg("chain");
        let p1 = grid_proxy_init(&user, &ProxyOptions::default(), &mut rng, 1000).unwrap();
        let p2 = grid_proxy_init(&p1, &ProxyOptions::default(), &mut rng, 1000).unwrap();
        assert_eq!(p2.chain().len(), 3);
        let roots = [ca.certificate().clone()];
        let v = validate_chain(p2.chain(), &roots, 1000, &Default::default()).unwrap();
        assert_eq!(v.proxy_depth, 2);
        assert_eq!(&v.identity, user.subject());
    }

    #[test]
    fn fresh_key_differs_from_signer_key() {
        let (_ca, user) = user_credential();
        let mut rng = test_drbg("freshkey");
        let proxy = grid_proxy_init(&user, &ProxyOptions::default(), &mut rng, 1000).unwrap();
        assert_ne!(proxy.key().public_key(), user.key().public_key());
    }
}
