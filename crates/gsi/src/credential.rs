//! Grid credentials: a certificate chain plus the matching private key.
//!
//! Paper §2.1: "entities possess a set of Grid credentials consisting of
//! a certificate and a cryptographic key known as the private key."
//! On disk this is the Globus PEM layout: leaf certificate, private key,
//! then the rest of the chain.

use crate::{GsiError, Result};
use mp_crypto::rsa::RsaPrivateKey;
use mp_x509::pem::{self, label};
use mp_x509::{keys, validate_chain, Certificate, Dn, ValidatedChain, ValidationOptions};

/// A certificate chain (leaf first) and the leaf's private key.
#[derive(Clone)]
pub struct Credential {
    chain: Vec<Certificate>,
    key: RsaPrivateKey,
}

impl Credential {
    /// Construct, checking the key matches the leaf certificate.
    pub fn new(chain: Vec<Certificate>, key: RsaPrivateKey) -> Result<Self> {
        let leaf = chain
            .first()
            .ok_or_else(|| GsiError::Protocol("credential needs at least one certificate".into()))?;
        if leaf.public_key() != key.public_key() {
            return Err(GsiError::Crypto("private key does not match leaf certificate"));
        }
        Ok(Credential { chain, key })
    }

    /// The leaf certificate (the one this key can speak for).
    pub fn leaf(&self) -> &Certificate {
        &self.chain[0]
    }

    /// Full chain, leaf first.
    pub fn chain(&self) -> &[Certificate] {
        &self.chain
    }

    /// The private key.
    pub fn key(&self) -> &RsaPrivateKey {
        &self.key
    }

    /// The leaf subject DN.
    pub fn subject(&self) -> &Dn {
        self.leaf().subject()
    }

    /// Is the leaf a proxy certificate?
    pub fn is_proxy(&self) -> bool {
        self.leaf().is_proxy()
    }

    /// Remaining validity of the whole chain at `now` (min over certs).
    pub fn remaining_lifetime(&self, now: u64) -> u64 {
        self.chain
            .iter()
            .map(|c| c.remaining_lifetime(now))
            .min()
            .unwrap_or(0)
    }

    /// Validate this credential's own chain.
    pub fn validate(
        &self,
        trust_roots: &[Certificate],
        now: u64,
        options: &ValidationOptions,
    ) -> Result<ValidatedChain> {
        Ok(validate_chain(&self.chain, trust_roots, now, options)?)
    }

    /// Serialize to the Globus PEM layout: leaf cert, key, rest of chain.
    ///
    /// Note this is the **unencrypted** proxy-file layout of paper §2.3
    /// ("proxy credentials are stored unencrypted on the local file
    /// system, protected only by file system permissions"). Long-term
    /// keys at rest should instead go through
    /// [`mp_crypto::ctr::SecretBox`], which is what the MyProxy
    /// repository does.
    pub fn to_pem(&self) -> String {
        let mut out = pem::encode(label::CERTIFICATE, self.chain[0].to_der());
        out.push_str(&pem::encode(label::RSA_PRIVATE_KEY, &keys::private_key_to_der(&self.key)));
        for cert in &self.chain[1..] {
            out.push_str(&pem::encode(label::CERTIFICATE, cert.to_der()));
        }
        out
    }

    /// Parse the Globus PEM layout back.
    pub fn from_pem(text: &str) -> Result<Self> {
        let blocks = pem::decode_all(text)?;
        let mut certs = Vec::new();
        let mut key = None;
        for block in blocks {
            match block.label.as_str() {
                label::CERTIFICATE => certs.push(Certificate::from_der(&block.data)?),
                label::RSA_PRIVATE_KEY => {
                    if key.is_some() {
                        return Err(GsiError::Protocol("multiple private keys in PEM".into()));
                    }
                    key = Some(keys::private_key_from_der(&block.data)?);
                }
                _ => {} // tolerate unknown blocks
            }
        }
        let key = key.ok_or_else(|| GsiError::Protocol("no private key in PEM".into()))?;
        Credential::new(certs, key)
    }

    /// DER of every certificate in the chain (for wire transfer).
    pub fn chain_der(&self) -> Vec<Vec<u8>> {
        self.chain.iter().map(|c| c.to_der().to_vec()).collect()
    }
}

impl std::fmt::Debug for Credential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Credential(subject={}, chain_len={}, proxy={})",
            self.subject(),
            self.chain.len(),
            self.is_proxy()
        )
    }
}

/// Parse a chain received on the wire (list of DER certs, leaf first).
pub fn chain_from_der(ders: &[Vec<u8>]) -> Result<Vec<Certificate>> {
    ders.iter()
        .map(|d| Certificate::from_der(d).map_err(GsiError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_x509::test_util::test_rsa_key;
    use mp_x509::CertificateAuthority;

    fn make_user_credential() -> (CertificateAuthority, Credential) {
        let mut ca = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let key = test_rsa_key(1);
        let dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        let cert = ca.issue_end_entity(&dn, key.public_key(), 0, 500_000).unwrap();
        (ca, Credential::new(vec![cert], key.clone()).unwrap())
    }

    #[test]
    fn key_mismatch_rejected() {
        let (_ca, cred) = make_user_credential();
        let err = Credential::new(cred.chain().to_vec(), test_rsa_key(2).clone());
        assert!(err.is_err());
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(Credential::new(vec![], test_rsa_key(0).clone()).is_err());
    }

    #[test]
    fn pem_roundtrip() {
        let (_ca, cred) = make_user_credential();
        let pem = cred.to_pem();
        let back = Credential::from_pem(&pem).unwrap();
        assert_eq!(back.subject(), cred.subject());
        assert_eq!(back.chain().len(), cred.chain().len());
        // The restored key signs things the original key's cert verifies.
        let sig = back.key().sign(b"test").unwrap();
        cred.leaf().public_key().verify(b"test", &sig).unwrap();
    }

    #[test]
    fn pem_without_key_rejected() {
        let (_ca, cred) = make_user_credential();
        let pem = mp_x509::pem::encode(label::CERTIFICATE, cred.leaf().to_der());
        assert!(Credential::from_pem(&pem).is_err());
    }

    #[test]
    fn validates_under_issuing_ca() {
        let (ca, cred) = make_user_credential();
        let roots = [ca.certificate().clone()];
        let v = cred.validate(&roots, 100, &Default::default()).unwrap();
        assert_eq!(&v.identity, cred.subject());
    }

    #[test]
    fn remaining_lifetime_is_min_over_chain() {
        let (_ca, cred) = make_user_credential();
        assert_eq!(cred.remaining_lifetime(400_000), 100_000);
        assert_eq!(cred.remaining_lifetime(600_000), 0);
    }
}
