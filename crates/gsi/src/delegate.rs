//! The GSI delegation protocol (paper §2.4), run over an established
//! [`SecureChannel`].
//!
//! "Delegation is very similar to proxy credential creation … the
//! difference is that the creation occurs over a GSI-authenticated
//! connection, with the result being the remote process acquiring proxy
//! credentials for the user." The defining security property: **the
//! private key never crosses the wire.** The receiver generates a fresh
//! keypair, sends a certification request; the delegator checks proof of
//! possession and answers with a signed proxy certificate plus its own
//! chain.

use crate::channel::SecureChannel;
use crate::credential::{chain_from_der, Credential};
use crate::proxy::{sign_proxy_cert, ProxyOptions};
use crate::transport::Transport;
use crate::wire::{WireReader, WireWriter};
use crate::{GsiError, Result};
use mp_crypto::rsa::RsaPrivateKey;
use mp_obs::Span;
use mp_x509::{Certificate, CertRequest, ProxyPolicy};
use rand::Rng;

/// Delegator-side policy for answering a delegation request.
#[derive(Clone, Debug)]
pub struct DelegationPolicy {
    /// Hard cap on the lifetime granted, regardless of what was asked.
    pub max_lifetime_secs: u64,
    /// Policy stamped into the issued proxy.
    pub policy: ProxyPolicy,
    /// Optional delegation-depth cap for the issued proxy.
    pub path_len: Option<u64>,
}

impl Default for DelegationPolicy {
    fn default() -> Self {
        DelegationPolicy {
            max_lifetime_secs: 12 * 3600,
            policy: ProxyPolicy::InheritAll,
            path_len: None,
        }
    }
}

/// Receiver side: generate a keypair, request delegation, return the new
/// proxy credential. `key_bits` sizes the fresh key;
/// `requested_lifetime_secs` is advisory (the delegator clips it).
pub fn accept_delegation<T: Transport, R: Rng + ?Sized>(
    channel: &mut SecureChannel<T>,
    requested_lifetime_secs: u64,
    key_bits: usize,
    rng: &mut R,
) -> Result<Credential> {
    // One delegation round on the receiving side, keygen included.
    let _span = Span::enter("gsi.delegate.accept");
    let key = RsaPrivateKey::generate(rng, key_bits);
    // The CSR subject is advisory — the delegator constructs the real
    // subject from its own DN. We request under our eventual parent's
    // name as a placeholder CN.
    let placeholder = mp_x509::Dn::parse("/CN=delegation request").unwrap();
    let csr = CertRequest::create(&placeholder, &key)?;

    let mut msg = WireWriter::new();
    msg.u64(requested_lifetime_secs);
    msg.bytes(csr.to_der());
    channel.send(&msg.into_bytes())?;

    let resp = channel.recv()?;
    let mut r = WireReader::new(&resp);
    let status = r.u8()?;
    if status != 0 {
        let reason = r.string()?;
        return Err(GsiError::Denied(reason));
    }
    let chain_der = r.byte_list()?;
    r.finish()?;
    let chain = chain_from_der(&chain_der)?;
    // Sanity: the leaf must certify the key we just generated.
    let leaf: &Certificate = chain
        .first()
        .ok_or_else(|| GsiError::Protocol("empty delegated chain".into()))?;
    if leaf.public_key() != key.public_key() {
        return Err(GsiError::Crypto("delegated certificate binds a different key"));
    }
    Credential::new(chain, key)
}

/// Delegator side: read one delegation request from the channel, issue a
/// proxy from `cred` under `policy`, send the full new chain back.
///
/// Returns the certificate that was issued.
pub fn delegate<T: Transport, R: Rng + ?Sized>(
    channel: &mut SecureChannel<T>,
    cred: &Credential,
    policy: &DelegationPolicy,
    rng: &mut R,
    now: u64,
) -> Result<Certificate> {
    // One delegation round on the issuing side (refusals included).
    let _span = Span::enter("gsi.delegate.issue");
    let req = channel.recv()?;
    let mut r = WireReader::new(&req);
    let requested = r.u64()?;
    let csr_der = r.bytes()?;
    r.finish()?;

    let csr = match CertRequest::from_der(csr_der) {
        Ok(c) => c,
        Err(e) => {
            refuse(channel, &format!("malformed CSR: {e}"))?;
            return Err(e.into());
        }
    };
    if !csr.verify_pop() {
        refuse(channel, "certification request failed proof of possession")?;
        return Err(GsiError::Crypto("CSR proof of possession failed"));
    }

    let opts = ProxyOptions {
        lifetime_secs: requested.min(policy.max_lifetime_secs),
        key_bits: 0, // unused by sign_proxy_cert
        policy: policy.policy.clone(),
        path_len: policy.path_len,
    };
    let cert = sign_proxy_cert(cred, &opts, csr.public_key(), rng, now)?;

    let mut chain_der = Vec::with_capacity(cred.chain().len() + 1);
    chain_der.push(cert.to_der().to_vec());
    chain_der.extend(cred.chain_der());
    let mut resp = WireWriter::new();
    resp.u8(0);
    resp.byte_list(&chain_der);
    channel.send(&resp.into_bytes())?;
    Ok(cert)
}

/// Send a refusal on the delegation sub-protocol.
fn refuse<T: Transport>(channel: &mut SecureChannel<T>, reason: &str) -> Result<()> {
    let mut resp = WireWriter::new();
    resp.u8(1);
    resp.string(reason);
    channel.send(&resp.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelConfig;
    use crate::proxy::grid_proxy_init;
    use crate::transport::{duplex, Tap};
    use mp_x509::test_util::{test_drbg, test_rsa_key};
    use mp_x509::{validate_chain, CertificateAuthority, Dn};

    struct Pki {
        ca: CertificateAuthority,
        alice: Credential,
        portal: Credential,
    }

    fn pki() -> Pki {
        let mut ca = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let alice_key = test_rsa_key(1);
        let alice_dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        let alice_cert = ca.issue_end_entity(&alice_dn, alice_key.public_key(), 0, 500_000).unwrap();
        let portal_key = test_rsa_key(2);
        let portal_dn = Dn::parse("/O=Grid/CN=portal.sdsc.edu").unwrap();
        let portal_cert = ca.issue_end_entity(&portal_dn, portal_key.public_key(), 0, 500_000).unwrap();
        Pki {
            alice: Credential::new(vec![alice_cert], alice_key.clone()).unwrap(),
            portal: Credential::new(vec![portal_cert], portal_key.clone()).unwrap(),
            ca,
        }
    }

    /// Run: alice connects to the portal and delegates a proxy to it.
    fn run_delegation(
        p: &Pki,
        policy: DelegationPolicy,
        requested: u64,
    ) -> (Credential, Certificate) {
        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (at, pt) = duplex();
        let portal = p.portal.clone();
        let portal_cfg = cfg.clone();
        let receiver = std::thread::spawn(move || {
            let mut rng = test_drbg("deleg receiver");
            let mut ch = SecureChannel::accept(pt, &portal, &portal_cfg, &mut rng, 100).unwrap();
            accept_delegation(&mut ch, requested, 512, &mut rng).unwrap()
        });
        let mut rng = test_drbg("deleg sender");
        let mut ch = SecureChannel::connect(at, &p.alice, &cfg, &mut rng, 100).unwrap();
        let issued = delegate(&mut ch, &p.alice, &policy, &mut rng, 100).unwrap();
        let received = receiver.join().unwrap();
        (received, issued)
    }

    #[test]
    fn delegated_credential_validates_as_user() {
        let p = pki();
        let (received, issued) = run_delegation(&p, DelegationPolicy::default(), 3600);
        assert_eq!(received.leaf().to_der(), issued.to_der());
        let roots = [p.ca.certificate().clone()];
        let v = validate_chain(received.chain(), &roots, 200, &Default::default()).unwrap();
        assert_eq!(v.identity.to_string(), "/O=Grid/CN=alice");
        assert_eq!(v.proxy_depth, 1);
    }

    #[test]
    fn lifetime_clipped_by_delegator_policy() {
        let p = pki();
        let policy = DelegationPolicy { max_lifetime_secs: 1000, ..Default::default() };
        let (received, _) = run_delegation(&p, policy, 999_999);
        assert_eq!(received.leaf().not_after(), 1100, "now=100 + cap=1000");
    }

    #[test]
    fn private_key_never_crosses_the_wire() {
        let p = pki();
        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (at, pt) = duplex();
        let (at_tapped, log) = Tap::new(at);
        let portal = p.portal.clone();
        let portal_cfg = cfg.clone();
        let receiver = std::thread::spawn(move || {
            let mut rng = test_drbg("tap receiver");
            let mut ch = SecureChannel::accept(pt, &portal, &portal_cfg, &mut rng, 100).unwrap();
            accept_delegation(&mut ch, 3600, 512, &mut rng).unwrap()
        });
        let mut rng = test_drbg("tap sender");
        let mut ch = SecureChannel::connect(at_tapped, &p.alice, &cfg, &mut rng, 100).unwrap();
        delegate(&mut ch, &p.alice, &DelegationPolicy::default(), &mut rng, 100).unwrap();
        let received = receiver.join().unwrap();

        // Neither the delegator's private key nor the newly generated
        // proxy private key appears anywhere in the raw traffic — even
        // though this tap sees *pre-encryption plaintext would-be leaks*
        // only in ciphertext form, check both key serializations.
        let log = log.lock();
        let alice_key_der = mp_x509::keys::private_key_to_der(p.alice.key());
        let proxy_key_der = mp_x509::keys::private_key_to_der(received.key());
        assert!(!log.contains(&alice_key_der));
        assert!(!log.contains(&proxy_key_der));
        // Even the raw private exponents never appear.
        assert!(!log.contains(&p.alice.key().d().to_be_bytes()));
        assert!(!log.contains(&received.key().d().to_be_bytes()));
    }

    #[test]
    fn delegation_can_chain() {
        // alice delegates to portal; portal further delegates to a job.
        let p = pki();
        let (portal_proxy, _) = run_delegation(&p, DelegationPolicy::default(), 3600);

        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (jt, pt) = duplex();
        let job_cred = {
            // The job endpoint authenticates with its own host cert; for
            // the test, reuse the CA to issue one.
            let mut ca = CertificateAuthority::new_root(
                Dn::parse("/O=Grid/CN=CA").unwrap(),
                test_rsa_key(0).clone(),
                0,
                1_000_000,
            )
            .unwrap();
            let key = test_rsa_key(3);
            let dn = Dn::parse("/O=Grid/CN=jobhost").unwrap();
            let cert = ca.issue_end_entity(&dn, key.public_key(), 0, 500_000).unwrap();
            Credential::new(vec![cert], key.clone()).unwrap()
        };
        let job_cfg = cfg.clone();
        let receiver = std::thread::spawn(move || {
            let mut rng = test_drbg("chain receiver");
            let mut ch = SecureChannel::accept(jt, &job_cred, &job_cfg, &mut rng, 100).unwrap();
            accept_delegation(&mut ch, 600, 512, &mut rng).unwrap()
        });
        let mut rng = test_drbg("chain sender");
        let mut ch = SecureChannel::connect(pt, &portal_proxy, &cfg, &mut rng, 100).unwrap();
        delegate(&mut ch, &portal_proxy, &DelegationPolicy::default(), &mut rng, 100).unwrap();
        let job_proxy = receiver.join().unwrap();

        let roots = [p.ca.certificate().clone()];
        let v = validate_chain(job_proxy.chain(), &roots, 200, &Default::default()).unwrap();
        assert_eq!(v.identity.to_string(), "/O=Grid/CN=alice");
        assert_eq!(v.proxy_depth, 2, "delegation chained twice");
    }

    #[test]
    fn restricted_delegation_carries_policy() {
        let p = pki();
        let policy = DelegationPolicy {
            policy: mp_x509::ProxyPolicy::Restricted("targets=storage".into()),
            ..Default::default()
        };
        let (received, _) = run_delegation(&p, policy, 3600);
        let roots = [p.ca.certificate().clone()];
        let v = validate_chain(received.chain(), &roots, 200, &Default::default()).unwrap();
        assert!(v.permits("targets", "storage"));
        assert!(!v.permits("targets", "jobmgr"));
    }

    #[test]
    fn delegator_with_proxy_can_delegate() {
        // A proxy (not the long-term credential) can itself delegate —
        // the myproxy-init flow runs exactly this way.
        let p = pki();
        let mut rng = test_drbg("pre-proxy");
        let alice_proxy = grid_proxy_init(&p.alice, &Default::default(), &mut rng, 100).unwrap();

        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (at, pt) = duplex();
        let portal = p.portal.clone();
        let portal_cfg = cfg.clone();
        let receiver = std::thread::spawn(move || {
            let mut rng = test_drbg("pp receiver");
            let mut ch = SecureChannel::accept(pt, &portal, &portal_cfg, &mut rng, 100).unwrap();
            accept_delegation(&mut ch, 3600, 512, &mut rng).unwrap()
        });
        let mut rng2 = test_drbg("pp sender");
        let mut ch = SecureChannel::connect(at, &alice_proxy, &cfg, &mut rng2, 100).unwrap();
        delegate(&mut ch, &alice_proxy, &DelegationPolicy::default(), &mut rng2, 100).unwrap();
        let received = receiver.join().unwrap();
        let roots = [p.ca.certificate().clone()];
        let v = validate_chain(received.chain(), &roots, 200, &Default::default()).unwrap();
        assert_eq!(v.proxy_depth, 2);
        assert_eq!(v.identity.to_string(), "/O=Grid/CN=alice");
    }
}
