//! The GSI secure channel: an SSL-shaped handshake plus sealed records.
//!
//! Paper §2.2: "GSI uses SSL to implement authentication, message
//! integrity and message privacy." This module provides those three
//! properties with the same construction shape as SSL 3.0 — mutual
//! certificate authentication, RSA key transport, transcript binding,
//! finished MACs — over any [`Transport`].
//!
//! ```text
//! C -> S  ClientHello   { random_c }
//! S -> C  ServerHello   { random_s, server chain }
//! C       validate server chain (+ expected DN), make premaster
//! C -> S  KeyExchange   { client chain, RSA_enc(server, premaster),
//!                         sign_client(SHA256(transcript)) }
//! S       validate client chain, verify signature, decrypt premaster
//! S -> C  Finished      { HMAC(master, "server" || transcript) }
//! C -> S  Finished      { HMAC(master, "client" || transcript) }
//! —— sealed records (AES-CTR + HMAC, per-direction keys + sequence) ——
//! ```
//!
//! Client authentication is by *signature* (explicit proof of
//! possession); server authentication is by *decryption* (only the
//! certified key can recover the premaster and produce a valid
//! Finished MAC).

use crate::credential::{chain_from_der, Credential};
use crate::record::{read_frame, write_frame, DirectionKeys, SealedRecords};
use crate::transport::Transport;
use crate::wire::{WireReader, WireWriter};
use crate::{GsiError, Result};
use mp_crypto::hmac::HmacSha256;
use mp_crypto::{ct_eq, Sha256};
use mp_obs::Span;
use mp_x509::{validate_chain, Certificate, CertRevocationList, Dn, ValidatedChain, ValidationOptions};
use rand::Rng;

const MSG_CLIENT_HELLO: u8 = 1;
const MSG_SERVER_HELLO: u8 = 2;
const MSG_KEY_EXCHANGE: u8 = 3;
const MSG_FINISHED_SERVER: u8 = 4;
const MSG_FINISHED_CLIENT: u8 = 5;
/// Pre-handshake refusal: an overloaded server answers the ClientHello
/// with this frame instead of a ServerHello, so clients get a clean
/// "server busy" error rather than a hang or an opaque disconnect.
const MSG_BUSY: u8 = 6;

/// Server-side load shed: answer a just-accepted connection's
/// ClientHello with a BUSY frame carrying `reason`. No key material is
/// involved — this happens before any handshake state exists.
pub fn send_busy<T: Transport>(transport: &mut T, reason: &str) -> Result<()> {
    let _hello = read_frame(transport)?; // consume the ClientHello
    let mut busy = WireWriter::new();
    busy.u8(MSG_BUSY);
    busy.bytes(reason.as_bytes());
    write_frame(transport, &busy.into_bytes())?;
    Ok(())
}

/// How a channel endpoint validates its peer.
#[derive(Clone)]
pub struct ChannelConfig {
    /// CA certificates the peer chain must anchor to.
    pub trust_roots: Vec<Certificate>,
    /// Accept peers presenting limited proxies? (GRAM job managers say
    /// no for job submission; everything else usually yes.)
    pub accept_limited: bool,
    /// If set, the peer's *effective identity* must equal this DN
    /// (clients pin the expected server identity to stop impersonation,
    /// paper §5.1: "MyProxy clients also require mutual authentication
    /// of the repository").
    pub expected_peer: Option<Dn>,
    /// CRLs to consult while validating the peer chain.
    pub crls: Vec<CertRevocationList>,
}

impl ChannelConfig {
    /// Config trusting `roots`, accepting limited proxies, any identity.
    pub fn new(trust_roots: Vec<Certificate>) -> Self {
        ChannelConfig { trust_roots, accept_limited: true, expected_peer: None, crls: Vec::new() }
    }

    /// Pin the expected peer identity.
    pub fn expecting(mut self, dn: Dn) -> Self {
        self.expected_peer = Some(dn);
        self
    }

    /// Refuse limited proxies.
    pub fn rejecting_limited(mut self) -> Self {
        self.accept_limited = false;
        self
    }

    fn validation_options(&self) -> ValidationOptions {
        ValidationOptions {
            accept_limited: self.accept_limited,
            crls: self.crls.clone(),
            ..Default::default()
        }
    }
}

/// An established, mutually-authenticated channel.
pub struct SecureChannel<T: Transport> {
    transport: T,
    records: SealedRecords,
    peer: ValidatedChain,
}

struct KeySchedule {
    client: DirectionKeys,
    server: DirectionKeys,
    master: [u8; 32],
}

fn derive_keys(premaster: &[u8], random_c: &[u8; 32], random_s: &[u8; 32]) -> KeySchedule {
    let expand = |label: &[u8]| -> [u8; 32] {
        let mut mac = HmacSha256::new(premaster);
        mac.update(label);
        mac.update(random_c);
        mac.update(random_s);
        mac.finalize()
    };
    KeySchedule {
        client: DirectionKeys { enc: expand(b"c2s enc"), mac: expand(b"c2s mac") },
        server: DirectionKeys { enc: expand(b"s2c enc"), mac: expand(b"s2c mac") },
        master: expand(b"master secret"),
    }
}

fn finished_mac(master: &[u8; 32], label: &[u8], transcript: &[u8; 32]) -> [u8; 32] {
    let mut mac = HmacSha256::new(master);
    mac.update(label);
    mac.update(transcript);
    mac.finalize()
}

fn expect_msg(payload: &[u8], expected: u8) -> Result<&[u8]> {
    match payload.split_first() {
        Some((&t, rest)) if t == expected => Ok(rest),
        Some((&t, _)) => Err(GsiError::Protocol(format!(
            "unexpected handshake message type {t}, wanted {expected}"
        ))),
        None => Err(GsiError::Protocol("empty handshake message".into())),
    }
}

fn validate_peer(
    chain_der: &[Vec<u8>],
    config: &ChannelConfig,
    now: u64,
) -> Result<(ValidatedChain, Vec<Certificate>)> {
    let chain = chain_from_der(chain_der)?;
    let validated = validate_chain(&chain, &config.trust_roots, now, &config.validation_options())?;
    if let Some(expected) = &config.expected_peer {
        if &validated.identity != expected {
            return Err(GsiError::Denied(format!(
                "peer identity {} does not match expected {expected}",
                validated.identity
            )));
        }
    }
    Ok((validated, chain))
}

impl<T: Transport> SecureChannel<T> {
    /// Client side of the handshake.
    pub fn connect<R: Rng + ?Sized>(
        mut transport: T,
        cred: &Credential,
        config: &ChannelConfig,
        rng: &mut R,
        now: u64,
    ) -> Result<Self> {
        // Records into `gsi.handshake.client` on every exit — success
        // or error — so refused/aborted handshakes still show up.
        let _span = Span::enter("gsi.handshake.client");
        let mut transcript = Sha256::new();

        // -> ClientHello
        let mut random_c = [0u8; 32];
        rng.fill(&mut random_c);
        let mut hello = WireWriter::new();
        hello.u8(MSG_CLIENT_HELLO);
        hello.bytes(&random_c);
        let hello = hello.into_bytes();
        transcript.update(&hello);
        write_frame(&mut transport, &hello)?;

        // <- ServerHello (or a pre-handshake BUSY refusal)
        let server_hello = read_frame(&mut transport)?;
        if let Some((&MSG_BUSY, rest)) = server_hello.split_first() {
            let mut r = WireReader::new(rest);
            let reason = String::from_utf8_lossy(r.bytes()?).into_owned();
            return Err(GsiError::Denied(format!("server busy: {reason}")));
        }
        transcript.update(&server_hello);
        let body = expect_msg(&server_hello, MSG_SERVER_HELLO)?;
        let mut r = WireReader::new(body);
        let random_s: [u8; 32] = r
            .bytes()?
            .try_into()
            .map_err(|_| GsiError::Protocol("bad server random".into()))?;
        let server_chain_der = r.byte_list()?;
        r.finish()?;
        let (server_validated, server_chain) = {
            let _v = Span::enter("gsi.handshake.validate");
            validate_peer(&server_chain_der, config, now)?
        };

        // -> KeyExchange
        let kex_span = Span::enter("gsi.handshake.kex");
        let mut premaster = [0u8; 48];
        rng.fill(&mut premaster);
        let server_leaf = server_chain
            .first()
            .ok_or_else(|| GsiError::Protocol("empty server certificate chain".into()))?;
        let enc_premaster = server_leaf
            .public_key()
            .encrypt(rng, &premaster)
            .map_err(|_| GsiError::Crypto("premaster encryption failed"))?;
        let client_chain_der = cred.chain_der();

        // Sign the transcript up to (and including) this message's fields.
        let mut to_sign = transcript.clone();
        for der in &client_chain_der {
            to_sign.update(der);
        }
        to_sign.update(&enc_premaster);
        let digest = to_sign.finalize();
        let signature = cred
            .key()
            .sign(&digest)
            .map_err(|_| GsiError::Crypto("transcript signing failed"))?;
        drop(kex_span); // premaster made+encrypted, transcript signed

        let mut kx = WireWriter::new();
        kx.u8(MSG_KEY_EXCHANGE);
        kx.byte_list(&client_chain_der);
        kx.bytes(&enc_premaster);
        kx.bytes(&signature);
        let kx = kx.into_bytes();
        transcript.update(&kx);
        write_frame(&mut transport, &kx)?;

        let keys = derive_keys(&premaster, &random_c, &random_s);
        let transcript_hash = transcript.finalize();

        // <- Finished (server)
        let fin_s = read_frame(&mut transport)?;
        let body = expect_msg(&fin_s, MSG_FINISHED_SERVER)?;
        let mut r = WireReader::new(body);
        let their_mac = r.bytes()?;
        r.finish()?;
        let expect = finished_mac(&keys.master, b"server finished", &transcript_hash);
        if !ct_eq(their_mac, &expect) {
            return Err(GsiError::Crypto("server Finished MAC mismatch"));
        }

        // -> Finished (client)
        let mine = finished_mac(&keys.master, b"client finished", &transcript_hash);
        let mut fin_c = WireWriter::new();
        fin_c.u8(MSG_FINISHED_CLIENT);
        fin_c.bytes(&mine);
        write_frame(&mut transport, &fin_c.into_bytes())?;

        Ok(SecureChannel {
            transport,
            records: SealedRecords::new(keys.client, keys.server, true),
            peer: server_validated,
        })
    }

    /// Server side of the handshake.
    pub fn accept<R: Rng + ?Sized>(
        mut transport: T,
        cred: &Credential,
        config: &ChannelConfig,
        rng: &mut R,
        now: u64,
    ) -> Result<Self> {
        // Records into `gsi.handshake.server` on every exit path.
        let _span = Span::enter("gsi.handshake.server");
        let mut transcript = Sha256::new();

        // <- ClientHello
        let hello = read_frame(&mut transport)?;
        transcript.update(&hello);
        let body = expect_msg(&hello, MSG_CLIENT_HELLO)?;
        let mut r = WireReader::new(body);
        let _random_c: [u8; 32] = r
            .bytes()?
            .try_into()
            .map_err(|_| GsiError::Protocol("bad client random".into()))?;
        let random_c = _random_c;
        r.finish()?;

        // -> ServerHello
        let mut random_s = [0u8; 32];
        rng.fill(&mut random_s);
        let mut sh = WireWriter::new();
        sh.u8(MSG_SERVER_HELLO);
        sh.bytes(&random_s);
        sh.byte_list(&cred.chain_der());
        let sh = sh.into_bytes();
        transcript.update(&sh);
        write_frame(&mut transport, &sh)?;

        // <- KeyExchange
        let kx = read_frame(&mut transport)?;
        let body = expect_msg(&kx, MSG_KEY_EXCHANGE)?;
        let mut r = WireReader::new(body);
        let client_chain_der = r.byte_list()?;
        let enc_premaster = r.bytes()?.to_vec();
        let signature = r.bytes()?.to_vec();
        r.finish()?;

        let (client_validated, _client_chain) = {
            let _v = Span::enter("gsi.handshake.validate");
            validate_peer(&client_chain_der, config, now)?
        };

        let kex_span = Span::enter("gsi.handshake.kex");
        // Verify the client's transcript signature with its leaf key —
        // this is its proof of possession.
        let mut to_sign = transcript.clone();
        for der in &client_chain_der {
            to_sign.update(der);
        }
        to_sign.update(&enc_premaster);
        let digest = to_sign.finalize();
        client_validated
            .leaf_public_key
            .verify(&digest, &signature)
            .map_err(|_| GsiError::Crypto("client transcript signature invalid"))?;

        transcript.update(&kx);

        let premaster = cred
            .key()
            .decrypt(&enc_premaster)
            .map_err(|_| GsiError::Crypto("premaster decryption failed"))?;
        if premaster.len() != 48 {
            return Err(GsiError::Crypto("premaster has wrong length"));
        }
        drop(kex_span); // client proof verified, premaster recovered

        let keys = derive_keys(&premaster, &random_c, &random_s);
        let transcript_hash = transcript.finalize();

        // -> Finished (server)
        let mine = finished_mac(&keys.master, b"server finished", &transcript_hash);
        let mut fin_s = WireWriter::new();
        fin_s.u8(MSG_FINISHED_SERVER);
        fin_s.bytes(&mine);
        write_frame(&mut transport, &fin_s.into_bytes())?;

        // <- Finished (client)
        let fin_c = read_frame(&mut transport)?;
        let body = expect_msg(&fin_c, MSG_FINISHED_CLIENT)?;
        let mut r = WireReader::new(body);
        let their_mac = r.bytes()?;
        r.finish()?;
        let expect = finished_mac(&keys.master, b"client finished", &transcript_hash);
        if !ct_eq(their_mac, &expect) {
            return Err(GsiError::Crypto("client Finished MAC mismatch"));
        }

        Ok(SecureChannel {
            transport,
            records: SealedRecords::new(keys.client, keys.server, false),
            peer: client_validated,
        })
    }

    /// Send one encrypted, authenticated message.
    pub fn send(&mut self, data: &[u8]) -> Result<()> {
        self.records.send(&mut self.transport, data)
    }

    /// Receive one message.
    pub fn recv(&mut self) -> Result<Vec<u8>> {
        self.records.recv(&mut self.transport)
    }

    /// Who is on the other end (validated chain, including effective
    /// identity, limited flag and restrictions).
    pub fn peer(&self) -> &ValidatedChain {
        &self.peer
    }

    /// Borrow the underlying transport (e.g. to adjust deadlines after
    /// the handshake has completed).
    pub fn transport_ref(&self) -> &T {
        &self.transport
    }

    /// Mutably borrow the underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::{grid_proxy_init, ProxyOptions};
    use crate::transport::{duplex, Tap};
    use mp_x509::test_util::{test_drbg, test_rsa_key};
    use mp_x509::{CertificateAuthority, ProxyPolicy};

    struct TestPki {
        ca: CertificateAuthority,
        alice: Credential,
        server: Credential,
    }

    fn pki() -> TestPki {
        let mut ca = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let alice_key = test_rsa_key(1);
        let alice_dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        let alice_cert = ca
            .issue_end_entity(&alice_dn, alice_key.public_key(), 0, 500_000)
            .unwrap();
        let server_key = test_rsa_key(2);
        let server_dn = Dn::parse("/O=Grid/CN=myproxy.ncsa.edu").unwrap();
        let server_cert = ca
            .issue_end_entity(&server_dn, server_key.public_key(), 0, 500_000)
            .unwrap();
        TestPki {
            alice: Credential::new(vec![alice_cert], alice_key.clone()).unwrap(),
            server: Credential::new(vec![server_cert], server_key.clone()).unwrap(),
            ca,
        }
    }

    fn run_handshake(
        p: &TestPki,
        client_cfg: ChannelConfig,
        server_cfg: ChannelConfig,
    ) -> (Result<SecureChannel<crate::transport::MemStream>>, Result<SecureChannel<crate::transport::MemStream>>) {
        let (ct, st) = duplex();
        let alice = p.alice.clone();
        let server = p.server.clone();
        let s_thread = std::thread::spawn(move || {
            let mut rng = test_drbg("server hs");
            SecureChannel::accept(st, &server, &server_cfg, &mut rng, 100)
        });
        let mut rng = test_drbg("client hs");
        let c = SecureChannel::connect(ct, &alice, &client_cfg, &mut rng, 100);
        let s = s_thread.join().unwrap();
        (c, s)
    }

    #[test]
    fn handshake_and_data_exchange() {
        let p = pki();
        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (c, s) = run_handshake(&p, cfg.clone(), cfg);
        let mut c = c.unwrap();
        let mut s = s.unwrap();
        assert_eq!(c.peer().identity.to_string(), "/O=Grid/CN=myproxy.ncsa.edu");
        assert_eq!(s.peer().identity.to_string(), "/O=Grid/CN=alice");
        c.send(b"GET /credential").unwrap();
        assert_eq!(s.recv().unwrap(), b"GET /credential");
        s.send(b"OK").unwrap();
        assert_eq!(c.recv().unwrap(), b"OK");
    }

    #[test]
    fn client_with_proxy_chain_authenticates_as_user() {
        let p = pki();
        let mut rng = test_drbg("proxy for channel");
        let proxy = grid_proxy_init(&p.alice, &ProxyOptions::default(), &mut rng, 100).unwrap();
        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (ct, st) = duplex();
        let server = p.server.clone();
        let server_cfg = cfg.clone();
        let s_thread = std::thread::spawn(move || {
            let mut rng = test_drbg("server hs2");
            SecureChannel::accept(st, &server, &server_cfg, &mut rng, 100).unwrap()
        });
        let mut rng2 = test_drbg("client hs2");
        let _c = SecureChannel::connect(ct, &proxy, &cfg, &mut rng2, 100).unwrap();
        let s = s_thread.join().unwrap();
        assert_eq!(s.peer().identity.to_string(), "/O=Grid/CN=alice");
        assert_eq!(s.peer().proxy_depth, 1);
    }

    #[test]
    fn client_rejects_wrong_server_identity() {
        let p = pki();
        let client_cfg = ChannelConfig::new(vec![p.ca.certificate().clone()])
            .expecting(Dn::parse("/O=Grid/CN=some-other-server").unwrap());
        let server_cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (c, _s) = run_handshake(&p, client_cfg, server_cfg);
        assert!(matches!(c, Err(GsiError::Denied(_))));
    }

    #[test]
    fn client_rejects_untrusted_server() {
        let p = pki();
        // Client trusts a different CA entirely.
        let other_ca = CertificateAuthority::new_root(
            Dn::parse("/O=Other/CN=CA").unwrap(),
            test_rsa_key(9).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let client_cfg = ChannelConfig::new(vec![other_ca.certificate().clone()]);
        let server_cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (c, _s) = run_handshake(&p, client_cfg, server_cfg);
        assert!(matches!(c, Err(GsiError::Chain(_))));
    }

    #[test]
    fn server_rejects_limited_proxy_when_configured() {
        let p = pki();
        let mut rng = test_drbg("limited proxy");
        let opts = ProxyOptions::default().with_policy(ProxyPolicy::Limited);
        let limited = grid_proxy_init(&p.alice, &opts, &mut rng, 100).unwrap();
        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let server_cfg = cfg.clone().rejecting_limited();
        let (ct, st) = duplex();
        let server = p.server.clone();
        let s_thread = std::thread::spawn(move || {
            let mut rng = test_drbg("server hs3");
            SecureChannel::accept(st, &server, &server_cfg, &mut rng, 100)
        });
        let mut rng2 = test_drbg("client hs3");
        let _ = SecureChannel::connect(ct, &limited, &cfg, &mut rng2, 100);
        let s = s_thread.join().unwrap();
        assert!(matches!(s, Err(GsiError::Chain(_))));
    }

    #[test]
    fn impersonating_server_without_key_fails() {
        // Mallory presents the real server's certificate chain but holds
        // a different private key: premaster decryption garbles, so the
        // Finished MAC can't be produced. We simulate by giving the
        // server endpoint a mismatched credential — construction itself
        // catches it, which is the first line of defense.
        let p = pki();
        let err = Credential::new(p.server.chain().to_vec(), test_rsa_key(7).clone());
        assert!(err.is_err());
    }

    #[test]
    fn passphrase_never_in_cleartext_on_wire() {
        // The §5.1 eavesdropper: tap the client side of the transport,
        // send a secret through the channel, grep the capture.
        let p = pki();
        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (ct, st) = duplex();
        let (tapped, log) = Tap::new(ct);
        let server = p.server.clone();
        let server_cfg = cfg.clone();
        let s_thread = std::thread::spawn(move || {
            let mut rng = test_drbg("server hs4");
            let mut s = SecureChannel::accept(st, &server, &server_cfg, &mut rng, 100).unwrap();
            s.recv().unwrap()
        });
        let mut rng = test_drbg("client hs4");
        let mut c = SecureChannel::connect(tapped, &p.alice, &cfg, &mut rng, 100).unwrap();
        c.send(b"PASSPHRASE=swordfish-9000").unwrap();
        let received = s_thread.join().unwrap();
        assert_eq!(received, b"PASSPHRASE=swordfish-9000");
        assert!(!log.lock().contains(b"swordfish-9000"), "secret leaked in cleartext");
    }

    #[test]
    fn busy_refusal_reaches_client_as_denied() {
        let p = pki();
        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let (ct, mut st) = duplex();
        let s_thread = std::thread::spawn(move || {
            send_busy(&mut st, "connection limit reached").unwrap();
        });
        let mut rng = test_drbg("busy client");
        let Err(err) = SecureChannel::connect(ct, &p.alice, &cfg, &mut rng, 100) else {
            panic!("handshake against a BUSY server unexpectedly succeeded");
        };
        match err {
            GsiError::Denied(msg) => {
                assert!(msg.contains("busy"), "{msg}");
                assert!(msg.contains("connection limit reached"), "{msg}");
            }
            other => panic!("expected Denied, got {other}"),
        }
        s_thread.join().unwrap();
    }

    #[test]
    fn works_over_real_tcp() {
        let p = pki();
        let cfg = ChannelConfig::new(vec![p.ca.certificate().clone()]);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = p.server.clone();
        let server_cfg = cfg.clone();
        let s_thread = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut rng = test_drbg("tcp server");
            let mut s = SecureChannel::accept(sock, &server, &server_cfg, &mut rng, 100).unwrap();
            let msg = s.recv().unwrap();
            s.send(&msg).unwrap();
        });
        let sock = std::net::TcpStream::connect(addr).unwrap();
        let mut rng = test_drbg("tcp client");
        let mut c = SecureChannel::connect(sock, &p.alice, &cfg, &mut rng, 100).unwrap();
        c.send(b"echo over tcp").unwrap();
        assert_eq!(c.recv().unwrap(), b"echo over tcp");
        s_thread.join().unwrap();
    }
}
