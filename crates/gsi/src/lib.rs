//! Grid Security Infrastructure (GSI) substrate.
//!
//! Everything the MyProxy paper assumes from "the GSI" (§2):
//!
//! * [`credential`] — Grid credentials: a certificate chain + private key,
//!   with the Globus on-disk PEM layout
//! * [`proxy`] — `grid-proxy-init`: local proxy-credential creation (§2.3)
//! * [`transport`] — byte transports: TCP, in-memory duplex pipes, and a
//!   wiretap wrapper used by the §5.2 snooping experiments
//! * [`channel`] — the SSL-shaped mutually-authenticated secure channel
//!   (§2.2): handshake with certificate exchange, RSA key transport,
//!   transcript-bound signatures, then an encrypt-then-MAC record layer
//! * [`mod@delegate`] — the GSI delegation protocol (§2.4): the private key
//!   never crosses the wire; the receiver generates a keypair and the
//!   delegator signs a proxy certificate over an established channel
//! * [`acl`] / [`gridmap`] — authorization: DN pattern lists (the two
//!   MyProxy ACLs of §5.1) and DN→local-account mapping (§2.1)
//! * [`net`] — the shared service substrate every daemon runs on:
//!   bounded worker pools with load shedding, per-phase deadlines,
//!   resilient accept loops, graceful shutdown, fault injection

pub mod acl;
pub mod channel;
pub mod credential;
pub mod delegate;
pub mod gridmap;
pub mod net;
pub mod proxy;
pub mod record;
pub mod transport;
pub mod wire;

pub use acl::AccessControlList;
pub use channel::{ChannelConfig, SecureChannel};
pub use credential::Credential;
pub use delegate::{accept_delegation, delegate, DelegationPolicy};
pub use gridmap::Gridmap;
pub use net::{
    accept_queue, serve, BoxedConn, DeadlineControl, FaultyTransport, HandlerSet, NetConfig,
    NetStats, Outcome, Service, ShutdownHandle, ShutdownReport, TcpAcceptor,
};
pub use proxy::{grid_proxy_init, ProxyOptions};
pub use transport::{duplex, MemStream, Tap};

use mp_x509::{ChainError, X509Error};

/// Errors across the GSI layer.
#[derive(Debug)]
pub enum GsiError {
    /// I/O on the underlying transport.
    Io(std::io::Error),
    /// Certificate/PEM/DER problem.
    X509(X509Error),
    /// Peer chain failed validation.
    Chain(ChainError),
    /// Handshake or record-layer protocol violation.
    Protocol(String),
    /// Cryptographic failure (MAC mismatch, bad signature, ...).
    Crypto(&'static str),
    /// The operation was denied by policy (ACL, lifetime, restriction).
    Denied(String),
}

impl From<std::io::Error> for GsiError {
    fn from(e: std::io::Error) -> Self {
        GsiError::Io(e)
    }
}

impl From<X509Error> for GsiError {
    fn from(e: X509Error) -> Self {
        GsiError::X509(e)
    }
}

impl From<ChainError> for GsiError {
    fn from(e: ChainError) -> Self {
        GsiError::Chain(e)
    }
}

impl std::fmt::Display for GsiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GsiError::Io(e) => write!(f, "I/O error: {e}"),
            GsiError::X509(e) => write!(f, "certificate error: {e}"),
            GsiError::Chain(e) => write!(f, "chain validation failed: {e}"),
            GsiError::Protocol(what) => write!(f, "protocol error: {what}"),
            GsiError::Crypto(what) => write!(f, "cryptographic failure: {what}"),
            GsiError::Denied(why) => write!(f, "denied: {why}"),
        }
    }
}

impl std::error::Error for GsiError {}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, GsiError>;
