//! Shared service substrate: the accept loop every daemon in this
//! workspace runs on.
//!
//! The paper positions the repository as long-lived shared
//! infrastructure that portals hammer on behalf of whole user
//! communities (§3–§4). That forces four availability properties that
//! a naive `for conn in listener.incoming()` loop does not have:
//!
//! 1. **Bounded concurrency** — a fixed worker pool with a connection
//!    cap. Beyond the cap the server *load-sheds*: the connection is
//!    refused with an in-protocol BUSY frame (see
//!    [`crate::channel::send_busy`]) and a `shed` counter is bumped,
//!    instead of spawning an unbounded thread.
//! 2. **Per-phase deadlines** — a handshake deadline is armed on every
//!    accepted connection before it reaches a worker, and services
//!    re-arm a per-request idle deadline once the handshake completes.
//!    [`MemStream`] mirrors `TcpStream`'s timeout surface so in-memory
//!    tests exercise the same eviction paths.
//! 3. **Accept-error resilience** — `accept(2)` failures are
//!    classified: `EMFILE`-class and connection-racing errors are
//!    retried with capped exponential backoff; only listener teardown
//!    stops the loop.
//! 4. **Graceful shutdown** — [`ShutdownHandle::shutdown`] stops
//!    accepting, drains in-flight handlers within a grace period,
//!    aborts what is still queued, and joins every thread, so process
//!    exit cannot race an in-flight credential write.
//!
//! [`FaultyTransport`] is the fault-injection half: a transport wrapper
//! that drops, errors, or stalls the connection at exact protocol-frame
//! boundaries, used by `tests/robustness.rs` to prove the above.

use crate::transport::MemStream;
use mp_obs::{Counter, Gauge, Registry};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`serve`] pool.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Worker threads handling connections (minimum 1).
    pub workers: usize,
    /// Connections admitted (queued + in flight) before load-shedding.
    pub max_connections: usize,
    /// Deadline armed on a connection between accept and the end of the
    /// handshake. `None` = no deadline (not recommended in production).
    pub handshake_deadline: Option<Duration>,
    /// Idle deadline services arm per request once the handshake is
    /// done.
    pub idle_deadline: Option<Duration>,
    /// How long [`ShutdownHandle::shutdown`] waits for in-flight
    /// handlers before abandoning the drain.
    pub shutdown_grace: Duration,
    /// Accept-loop sleep when the listener has nothing for us.
    pub poll_interval: Duration,
    /// First retry delay after a transient accept error; doubles per
    /// consecutive failure.
    pub accept_backoff_start: Duration,
    /// Backoff ceiling.
    pub accept_backoff_max: Duration,
    /// How often the accept thread calls [`Service::sweep`] (expired
    /// credential purging, persistence flushes). `None` disables it.
    pub sweep_interval: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 8,
            max_connections: 64,
            handshake_deadline: Some(Duration::from_secs(10)),
            idle_deadline: Some(Duration::from_secs(30)),
            shutdown_grace: Duration::from_secs(5),
            poll_interval: Duration::from_millis(5),
            accept_backoff_start: Duration::from_millis(5),
            accept_backoff_max: Duration::from_secs(1),
            sweep_interval: Some(Duration::from_secs(30)),
        }
    }
}

/// Counters exported by a pool. All monotonic except `active`, which is
/// a gauge of connections admitted but not yet finished.
///
/// These are `mp_obs` metric handles: [`serve`] gives each pool a
/// private detached set, while [`serve_scoped`] interns them into a
/// caller-supplied [`Registry`] under `net.<scope>.*` so they show up
/// on that service's scrape surface. Either way the cells follow
/// mp-obs's one documented ordering (`Relaxed`) — this replaced the
/// previous `AcqRel`/`Acquire` pairing here, which implied a
/// cross-memory synchronization guarantee no reader may rely on.
#[derive(Clone, Default)]
pub struct NetStats {
    accepted: Counter,
    active: Gauge,
    queued: Gauge,
    shed: Counter,
    timeouts: Counter,
    handler_errors: Counter,
    accept_retries: Counter,
    completed: Counter,
    aborted: Counter,
    panics: Counter,
}

impl NetStats {
    /// Intern this stat set into `registry` as `net.<scope>.*`.
    pub fn scoped(registry: &Registry, scope: &str) -> Self {
        let m = |field: &str| registry.counter(&format!("net.{scope}.{field}"));
        NetStats {
            accepted: m("accepted"),
            active: registry.gauge(&format!("net.{scope}.active")),
            queued: registry.gauge(&format!("net.{scope}.queue_depth")),
            shed: m("shed"),
            timeouts: m("timeouts"),
            handler_errors: m("handler_errors"),
            accept_retries: m("accept_retries"),
            completed: m("completed"),
            aborted: m("aborted"),
            panics: m("panics"),
        }
    }

    /// Connections the listener handed us (including ones later shed).
    pub fn accepted(&self) -> u64 {
        self.accepted.get()
    }
    /// Connections admitted and not yet finished (queued + in flight).
    pub fn active(&self) -> u64 {
        self.active.get()
    }
    /// Connections sitting in the worker queue, not yet picked up.
    /// `active - queue_depth` is therefore the in-flight handler count.
    pub fn queue_depth(&self) -> u64 {
        self.queued.get()
    }
    /// Connections refused at the cap with a BUSY frame.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }
    /// Handlers that ended by deadline eviction.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.get()
    }
    /// Handlers that ended in a non-timeout error.
    pub fn handler_errors(&self) -> u64 {
        self.handler_errors.get()
    }
    /// Transient accept errors survived via backoff.
    pub fn accept_retries(&self) -> u64 {
        self.accept_retries.get()
    }
    /// Handlers that completed cleanly.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }
    /// Connections dropped from the queue at shutdown, never served.
    pub fn aborted(&self) -> u64 {
        self.aborted.get()
    }
    /// Pool threads (accept or worker) that terminated by panicking.
    pub fn panics(&self) -> u64 {
        self.panics.get()
    }
}

/// How one handled connection ended, for the pool's accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Served to completion (including clean protocol-level refusals).
    Ok,
    /// Evicted by a read/write deadline.
    Timeout,
    /// Failed some other way.
    Error,
}

/// A connection handler the pool drives. One value is shared by every
/// worker, so implementations hold their mutable state behind locks.
pub trait Service<C>: Send + Sync + 'static {
    /// Serve one connection to completion. `idle_deadline` is the
    /// post-handshake deadline the service should arm per request.
    fn handle(&self, conn: C, idle_deadline: Option<Duration>) -> Outcome;

    /// The pool is at its connection cap: refuse `conn` with a protocol
    /// error if the wire format has one. Default: just hang up.
    fn shed(&self, conn: C) {
        drop(conn);
    }

    /// Periodic housekeeping (purge expired credentials, flush
    /// persistence). Called from the accept thread on
    /// [`NetConfig::sweep_interval`].
    fn sweep(&self) {}
}

/// Arm read/write deadlines on a connection. Mirrors
/// `TcpStream::set_read_timeout`/`set_write_timeout` but infallible:
/// transports that cannot honor a deadline simply ignore it.
pub trait DeadlineControl {
    /// Set both directions' deadlines (`None` clears them).
    fn set_deadlines(&self, read: Option<Duration>, write: Option<Duration>);
}

impl DeadlineControl for std::net::TcpStream {
    fn set_deadlines(&self, read: Option<Duration>, write: Option<Duration>) {
        // TcpStream rejects a zero Duration; normalize it to "no
        // deadline". The setters only fail on that rejected input, so
        // after normalization the discard is dead code.
        let norm = |t: Option<Duration>| t.filter(|d| !d.is_zero());
        let _ = self.set_read_timeout(norm(read));
        let _ = self.set_write_timeout(norm(write));
    }
}

impl DeadlineControl for MemStream {
    fn set_deadlines(&self, read: Option<Duration>, write: Option<Duration>) {
        self.set_read_timeout(read);
        self.set_write_timeout(write);
    }
}

/// Connection type for pools that mix concrete transports (plain
/// [`MemStream`], [`FaultyTransport`]-wrapped streams, ...).
pub type BoxedConn = Box<dyn FlexConn>;

/// Object-safe bundle behind [`BoxedConn`].
pub trait FlexConn: Read + Write + Send + DeadlineControl {}
impl<T: Read + Write + Send + DeadlineControl> FlexConn for T {}

impl DeadlineControl for BoxedConn {
    fn set_deadlines(&self, read: Option<Duration>, write: Option<Duration>) {
        (**self).set_deadlines(read, write);
    }
}

/// A source of inbound connections the accept loop polls.
pub trait Acceptor: Send + 'static {
    /// The connection type this acceptor yields.
    type Conn: Send + 'static;
    /// Try to accept one connection. `WouldBlock`-class errors mean
    /// "nothing right now"; see [`classify_accept_error`].
    fn poll_accept(&mut self) -> io::Result<Self::Conn>;
}

/// [`Acceptor`] over a real TCP listener (non-blocking accept).
pub struct TcpAcceptor {
    listener: std::net::TcpListener,
}

impl TcpAcceptor {
    /// Wrap `listener`, switching it to non-blocking mode so shutdown
    /// can interrupt the accept loop.
    pub fn new(listener: std::net::TcpListener) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        Ok(TcpAcceptor { listener })
    }
}

impl Acceptor for TcpAcceptor {
    type Conn = std::net::TcpStream;
    fn poll_accept(&mut self) -> io::Result<std::net::TcpStream> {
        let (sock, _peer) = self.listener.accept()?;
        // The accepted socket may inherit non-blocking mode; handlers
        // expect blocking reads bounded by deadlines. A socket we
        // cannot configure is indistinguishable from one that hung up.
        sock.set_nonblocking(false)
            .map_err(|e| io::Error::new(io::ErrorKind::ConnectionAborted, e))?;
        Ok(sock)
    }
}

enum QueueItem<C> {
    Conn(C),
    Fault(io::Error),
}

struct AcceptQueueState<C> {
    items: VecDeque<QueueItem<C>>,
    closed: bool,
}

struct AcceptQueueShared<C> {
    state: Mutex<AcceptQueueState<C>>,
    ready: Condvar,
}

/// Producer half of an in-memory accept queue: the "network" side that
/// dials connections (and, in tests, injects accept errors).
pub struct QueuePusher<C> {
    shared: Arc<AcceptQueueShared<C>>,
}

impl<C> Clone for QueuePusher<C> {
    fn clone(&self) -> Self {
        QueuePusher { shared: self.shared.clone() }
    }
}

/// Consumer half: an [`Acceptor`] the pool polls.
pub struct QueueAcceptor<C> {
    shared: Arc<AcceptQueueShared<C>>,
}

impl<C> QueuePusher<C> {
    /// Enqueue one inbound connection.
    pub fn push(&self, conn: C) -> io::Result<()> {
        let mut st = self.shared.state.lock();
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "accept queue closed"));
        }
        st.items.push_back(QueueItem::Conn(conn));
        self.shared.ready.notify_all();
        Ok(())
    }

    /// Enqueue an accept *error* — the next `poll_accept` returns it.
    /// This is how tests inject `EMFILE`-class failures.
    pub fn push_err(&self, err: io::Error) {
        let mut st = self.shared.state.lock();
        st.items.push_back(QueueItem::Fault(err));
        self.shared.ready.notify_all();
    }

    /// Close the queue: once drained, `poll_accept` reports listener
    /// teardown and the accept loop exits.
    pub fn close(&self) {
        let mut st = self.shared.state.lock();
        st.closed = true;
        self.shared.ready.notify_all();
    }
}

impl<C> Drop for QueuePusher<C> {
    fn drop(&mut self) {
        // Last pusher gone (only the acceptor's reference remains):
        // behave like a closed listener.
        if Arc::strong_count(&self.shared) <= 2 {
            self.close();
        }
    }
}

impl<C: Send + 'static> Acceptor for QueueAcceptor<C> {
    type Conn = C;
    fn poll_accept(&mut self) -> io::Result<C> {
        let mut st = self.shared.state.lock();
        loop {
            match st.items.pop_front() {
                Some(QueueItem::Conn(c)) => return Ok(c),
                Some(QueueItem::Fault(e)) => return Err(e),
                None if st.closed => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "accept queue closed",
                    ));
                }
                None => {
                    let res = self
                        .shared
                        .ready
                        .wait_for(&mut st, Duration::from_millis(2));
                    if res.timed_out() && st.items.is_empty() && !st.closed {
                        return Err(io::Error::new(io::ErrorKind::WouldBlock, "no connection"));
                    }
                }
            }
        }
    }
}

/// A connected in-memory "listener": push connections on one side, let
/// a [`serve`] pool accept them on the other.
pub fn accept_queue<C: Send + 'static>() -> (QueuePusher<C>, QueueAcceptor<C>) {
    let shared = Arc::new(AcceptQueueShared {
        state: Mutex::new(AcceptQueueState { items: VecDeque::new(), closed: false }),
        ready: Condvar::new(),
    });
    (QueuePusher { shared: shared.clone() }, QueueAcceptor { shared })
}

/// What the accept loop should do with an `accept()` error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcceptDisposition {
    /// Nothing to accept right now; poll again shortly.
    Idle,
    /// Transient failure (`ECONNABORTED`, `EMFILE`/`ENFILE`, ...):
    /// retry with backoff. This is the availability bug the old loops
    /// had — they treated these as fatal and exited.
    Transient,
    /// The listener is gone; stop accepting.
    Fatal,
}

/// Classify an accept error. `WouldBlock`-class means idle;
/// connection-racing and fd-exhaustion errors are transient; anything
/// else is listener teardown.
pub fn classify_accept_error(e: &io::Error) -> AcceptDisposition {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted => {
            AcceptDisposition::Idle
        }
        io::ErrorKind::ConnectionAborted | io::ErrorKind::ConnectionReset => {
            AcceptDisposition::Transient
        }
        _ => match e.raw_os_error() {
            // ENFILE (23) / EMFILE (24): fd exhaustion under load —
            // exactly the situation a credential repository must ride
            // out, not die from.
            Some(23) | Some(24) => AcceptDisposition::Transient,
            _ => AcceptDisposition::Fatal,
        },
    }
}

struct PoolShared<C> {
    queue: Mutex<VecDeque<C>>,
    work_ready: Condvar,
    stop: AtomicBool,
    stats: Arc<NetStats>,
}

/// Type-erased view of the pool that [`ShutdownHandle`] drives.
trait PoolControl: Send + Sync {
    fn request_stop(&self);
    fn wake_all(&self);
    fn clear_queue(&self) -> u64;
    fn active(&self) -> u64;
}

impl<C: Send> PoolControl for PoolShared<C> {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
    fn wake_all(&self) {
        self.work_ready.notify_all();
    }
    fn clear_queue(&self) -> u64 {
        let dropped = {
            let mut q = self.queue.lock();
            let n = q.len() as u64;
            q.clear();
            n
        };
        for _ in 0..dropped {
            self.stats.aborted.inc();
            self.stats.active.dec();
            self.stats.queued.dec();
        }
        dropped
    }
    fn active(&self) -> u64 {
        self.stats.active()
    }
}

fn worker_loop<C, S>(shared: Arc<PoolShared<C>>, service: Arc<S>, idle: Option<Duration>)
where
    C: Send + 'static,
    S: Service<C>,
{
    loop {
        let conn = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(c) = q.pop_front() {
                    shared.stats.queued.dec();
                    break Some(c);
                }
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                shared.work_ready.wait(&mut q);
            }
        };
        let Some(conn) = conn else { return };
        // The guard is gone: the (possibly long) handler runs outside
        // any pool lock.
        let outcome = service.handle(conn, idle);
        match outcome {
            Outcome::Ok => shared.stats.completed.inc(),
            Outcome::Timeout => shared.stats.timeouts.inc(),
            Outcome::Error => shared.stats.handler_errors.inc(),
        }
        shared.stats.active.dec();
    }
}

fn accept_loop<A, S>(mut acceptor: A, shared: Arc<PoolShared<A::Conn>>, service: Arc<S>, cfg: NetConfig)
where
    A: Acceptor,
    A::Conn: DeadlineControl,
    S: Service<A::Conn>,
{
    let mut backoff = cfg.accept_backoff_start;
    let mut last_sweep = Instant::now();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        if let Some(interval) = cfg.sweep_interval {
            if last_sweep.elapsed() >= interval {
                service.sweep();
                last_sweep = Instant::now();
            }
        }
        match acceptor.poll_accept() {
            Ok(conn) => {
                backoff = cfg.accept_backoff_start;
                shared.stats.accepted.inc();
                // Arm the handshake deadline before the connection can
                // block anyone — including the shed path right below.
                conn.set_deadlines(cfg.handshake_deadline, cfg.handshake_deadline);
                if shared.stats.active() >= cfg.max_connections as u64 {
                    shared.stats.shed.inc();
                    service.shed(conn);
                    continue;
                }
                shared.stats.active.inc();
                {
                    let mut q = shared.queue.lock();
                    q.push_back(conn);
                    shared.stats.queued.inc();
                }
                shared.work_ready.notify_one();
            }
            Err(e) => match classify_accept_error(&e) {
                AcceptDisposition::Idle => std::thread::sleep(cfg.poll_interval),
                AcceptDisposition::Transient => {
                    shared.stats.accept_retries.inc();
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2).min(cfg.accept_backoff_max);
                }
                AcceptDisposition::Fatal => return,
            },
        }
    }
}

/// Result of a [`ShutdownHandle::shutdown`]/[`ShutdownHandle::join`].
#[derive(Clone, Copy, Debug)]
pub struct ShutdownReport {
    /// Did every in-flight handler finish within the grace period?
    pub drained: bool,
    /// Queued connections dropped unserved.
    pub aborted: u64,
    /// Worker threads joined.
    pub workers_joined: usize,
}

/// Handle to a running [`serve`] pool.
///
/// Dropping the handle *detaches* the pool (it keeps serving for the
/// life of the process), preserving the fire-and-forget behavior of
/// the old `serve_tcp`. Call [`shutdown`](Self::shutdown) for the
/// graceful path or [`join`](Self::join) to block until the listener
/// dies on its own.
pub struct ShutdownHandle {
    control: Arc<dyn PoolControl>,
    stats: Arc<NetStats>,
    grace: Duration,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShutdownHandle {
    /// Live counters for this pool.
    pub fn stats(&self) -> Arc<NetStats> {
        self.stats.clone()
    }

    /// Stop accepting, drain in-flight handlers for up to the grace
    /// period, abort whatever is still queued, and join every thread.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.control.request_stop();
        self.control.wake_all();
        if let Some(h) = self.accept.take() {
            join_counting_panics(h, &self.stats);
        }
        self.teardown()
    }

    /// Block until the accept loop exits on its own (listener
    /// teardown), then drain and join like [`shutdown`](Self::shutdown).
    pub fn join(mut self) -> ShutdownReport {
        if let Some(h) = self.accept.take() {
            join_counting_panics(h, &self.stats);
        }
        self.control.request_stop();
        self.teardown()
    }

    fn teardown(&mut self) -> ShutdownReport {
        // Grace period: in-flight handlers (bounded by their deadlines)
        // get a chance to finish before we abandon the drain.
        let deadline = Instant::now().checked_add(self.grace);
        let mut drained;
        loop {
            drained = self.control.active() == 0;
            let within_grace = match deadline {
                Some(d) => Instant::now() < d,
                None => false,
            };
            if drained || !within_grace {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let aborted = self.control.clear_queue();
        self.control.request_stop();
        self.control.wake_all();
        let workers: Vec<_> = self.workers.drain(..).collect();
        let mut joined = 0;
        for h in workers {
            join_counting_panics(h, &self.stats);
            joined += 1;
        }
        ShutdownReport { drained, aborted, workers_joined: joined }
    }
}

/// Join a pool thread; a panicked thread is recorded in
/// [`NetStats::panics`] rather than silently discarded.
fn join_counting_panics(h: JoinHandle<()>, stats: &NetStats) {
    if h.join().is_err() {
        stats.panics.inc();
    }
}

impl Drop for ShutdownHandle {
    fn drop(&mut self) {
        // Detach: dropping JoinHandles leaves the pool running.
        self.accept.take();
        self.workers.clear();
    }
}

/// Start a pool: one accept thread polling `acceptor`, `cfg.workers`
/// worker threads driving `service`. The pool's [`NetStats`] are
/// private to the returned handle; use [`serve_scoped`] to surface them
/// on a service's scrape registry.
pub fn serve<A, S>(acceptor: A, service: Arc<S>, cfg: NetConfig) -> io::Result<ShutdownHandle>
where
    A: Acceptor,
    A::Conn: DeadlineControl,
    S: Service<A::Conn>,
{
    serve_with_stats(acceptor, service, cfg, Arc::new(NetStats::default()))
}

/// [`serve`], with the pool's counters interned into `registry` as
/// `net.<scope>.*` so a `/metrics` scrape or GSI INFO snapshot sees
/// them. Each pool needs its own `scope` — two pools sharing one
/// (notably the `active` gauge, which enforces the connection cap)
/// would corrupt each other's accounting.
pub fn serve_scoped<A, S>(
    acceptor: A,
    service: Arc<S>,
    cfg: NetConfig,
    registry: &Registry,
    scope: &str,
) -> io::Result<ShutdownHandle>
where
    A: Acceptor,
    A::Conn: DeadlineControl,
    S: Service<A::Conn>,
{
    serve_with_stats(acceptor, service, cfg, Arc::new(NetStats::scoped(registry, scope)))
}

fn serve_with_stats<A, S>(
    acceptor: A,
    service: Arc<S>,
    cfg: NetConfig,
    stats: Arc<NetStats>,
) -> io::Result<ShutdownHandle>
where
    A: Acceptor,
    A::Conn: DeadlineControl,
    S: Service<A::Conn>,
{
    let shared = Arc::new(PoolShared {
        queue: Mutex::new(VecDeque::new()),
        work_ready: Condvar::new(),
        stop: AtomicBool::new(false),
        stats: stats.clone(),
    });

    let mut workers = Vec::new();
    for i in 0..cfg.workers.max(1) {
        let sh = shared.clone();
        let svc = service.clone();
        let idle = cfg.idle_deadline;
        let spawned = std::thread::Builder::new()
            .name(format!("net-worker-{i}"))
            .spawn(move || worker_loop(sh, svc, idle));
        match spawned {
            Ok(h) => workers.push(h),
            Err(e) => {
                // Unwind: stop the workers we did start, then report.
                shared.stop.store(true, Ordering::Release);
                shared.work_ready.notify_all();
                for h in workers {
                    join_counting_panics(h, &stats);
                }
                return Err(e);
            }
        }
    }

    let sh = shared.clone();
    let svc = service.clone();
    let loop_cfg = cfg.clone();
    let accept = std::thread::Builder::new()
        .name("net-accept".into())
        .spawn(move || accept_loop(acceptor, sh, svc, loop_cfg));
    let accept = match accept {
        Ok(h) => h,
        Err(e) => {
            shared.stop.store(true, Ordering::Release);
            shared.work_ready.notify_all();
            for h in workers {
                join_counting_panics(h, &stats);
            }
            return Err(e);
        }
    };

    Ok(ShutdownHandle {
        control: shared,
        stats,
        grace: cfg.shutdown_grace,
        accept: Some(accept),
        workers,
    })
}

/// How a [`FaultyTransport`] sabotages reads once armed.
#[derive(Clone, Copy, Debug)]
enum ReadFault {
    Eof,
    Error(io::ErrorKind),
    Stall,
}

/// Fault-injection transport wrapper.
///
/// All our protocols (handshake, sealed records, HTTP-free GRAM
/// framing) ride on 4-byte big-endian length-prefixed frames, so the
/// wrapper counts *frames*, not bytes: reads never cross a frame
/// boundary, and a fault armed "after k frames" fires at a
/// deterministic protocol state regardless of read fragmentation.
/// `eof_after_read_frames(1)` on a server-side connection is a
/// mid-handshake disconnect (ClientHello arrived, KeyExchange never
/// will); during a PUT, frame 4 is the request record, so
/// `eof_after_read_frames(4)` kills the connection mid-delegation.
pub struct FaultyTransport<T> {
    inner: T,
    short_reads: bool,
    read_fault: Option<(u64, ReadFault)>,
    write_fault: Option<(u64, io::ErrorKind)>,
    frames_completed: u64,
    bytes_written: u64,
    header_have: usize,
    header: [u8; 4],
    body_remaining: usize,
    deadline: Cell<Option<Duration>>,
}

impl<T> FaultyTransport<T> {
    /// Wrap `inner` with no faults armed (a passthrough).
    pub fn new(inner: T) -> Self {
        FaultyTransport {
            inner,
            short_reads: false,
            read_fault: None,
            write_fault: None,
            frames_completed: 0,
            bytes_written: 0,
            header_have: 0,
            header: [0u8; 4],
            body_remaining: 0,
            deadline: Cell::new(None),
        }
    }

    /// Deliver at most one byte per read call (maximal fragmentation).
    pub fn short_reads(mut self) -> Self {
        self.short_reads = true;
        self
    }

    /// Reads return EOF once `frames` whole frames have been consumed —
    /// the peer "disconnected" at that protocol state.
    pub fn eof_after_read_frames(mut self, frames: u64) -> Self {
        self.read_fault = Some((frames, ReadFault::Eof));
        self
    }

    /// Reads fail with `kind` once `frames` whole frames have been
    /// consumed.
    pub fn error_after_read_frames(mut self, frames: u64, kind: io::ErrorKind) -> Self {
        self.read_fault = Some((frames, ReadFault::Error(kind)));
        self
    }

    /// Reads hang once `frames` whole frames have been consumed — a
    /// half-open peer. The hang respects the transport's own deadline
    /// (set via [`DeadlineControl`]); with none set it gives up after
    /// 30 s so a buggy pool cannot wedge the test suite.
    pub fn stall_after_read_frames(mut self, frames: u64) -> Self {
        self.read_fault = Some((frames, ReadFault::Stall));
        self
    }

    /// Writes fail with `kind` once `bytes` bytes have gone through.
    pub fn error_after_write_bytes(mut self, bytes: u64, kind: io::ErrorKind) -> Self {
        self.write_fault = Some((bytes, kind));
        self
    }

    /// Whole frames read so far.
    pub fn frames_read(&self) -> u64 {
        self.frames_completed
    }

    /// Largest read this call may perform without crossing a frame
    /// boundary.
    fn unit_remaining(&self) -> usize {
        if self.body_remaining > 0 {
            self.body_remaining
        } else {
            4 - self.header_have
        }
    }

    /// Account `chunk` (bytes just read) against the frame tracker.
    fn advance(&mut self, chunk: &[u8]) {
        for &b in chunk {
            if self.body_remaining > 0 {
                self.body_remaining -= 1;
            } else {
                if let Some(slot) = self.header.get_mut(self.header_have) {
                    *slot = b;
                }
                self.header_have += 1;
                if self.header_have == 4 {
                    self.body_remaining = u32::from_be_bytes(self.header) as usize;
                    self.header_have = 0;
                }
            }
            if self.body_remaining == 0 && self.header_have == 0 {
                self.frames_completed += 1;
            }
        }
    }

    fn stall(&self) -> io::Result<usize> {
        let cap = match self.deadline.get() {
            Some(d) => d,
            None => Duration::from_secs(30),
        };
        std::thread::sleep(cap);
        Err(io::Error::new(io::ErrorKind::TimedOut, "stalled peer: read deadline exceeded"))
    }
}

impl<T: Read> Read for FaultyTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some((after, fault)) = self.read_fault {
            if self.frames_completed >= after {
                return match fault {
                    ReadFault::Eof => Ok(0),
                    ReadFault::Error(kind) => {
                        Err(io::Error::new(kind, "injected read fault"))
                    }
                    ReadFault::Stall => self.stall(),
                };
            }
        }
        let mut cap = self.unit_remaining().min(buf.len());
        if self.short_reads {
            cap = cap.min(1);
        }
        let Some(slice) = buf.get_mut(..cap) else {
            return Ok(0);
        };
        let n = self.inner.read(slice)?;
        if let Some(chunk) = slice.get(..n) {
            let copied: Vec<u8> = chunk.to_vec();
            self.advance(&copied);
        }
        Ok(n)
    }
}

impl<T: Write> Write for FaultyTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some((after, kind)) = self.write_fault {
            if self.bytes_written >= after {
                return Err(io::Error::new(kind, "injected write fault"));
            }
        }
        let n = self.inner.write(buf)?;
        self.bytes_written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<T: DeadlineControl> DeadlineControl for FaultyTransport<T> {
    fn set_deadlines(&self, read: Option<Duration>, write: Option<Duration>) {
        self.deadline.set(read);
        self.inner.set_deadlines(read, write);
    }
}

/// Tracked handler threads for the fire-and-forget `connect_local`
/// paths: spawn like `std::thread::spawn`, but keep the `JoinHandle`
/// so shutdown can join instead of racing process exit.
#[derive(Default)]
pub struct HandlerSet {
    handles: Mutex<Vec<JoinHandle<()>>>,
    panicked: Counter,
}

impl HandlerSet {
    /// An empty set.
    pub fn new() -> Self {
        HandlerSet::default()
    }

    /// Handlers that terminated by panicking (observed at drain time).
    pub fn panicked(&self) -> u64 {
        self.panicked.get()
    }

    /// Spawn a named handler thread and track its handle. Finished
    /// handles are reaped opportunistically so the set stays small.
    pub fn spawn<F>(&self, name: &str, f: F) -> io::Result<()>
    where
        F: FnOnce() + Send + 'static,
    {
        let handle = std::thread::Builder::new().name(name.to_string()).spawn(f)?;
        let mut v = self.handles.lock();
        v.retain(|h| !h.is_finished());
        v.push(handle);
        Ok(())
    }

    /// Join every tracked handler; returns how many were joined.
    pub fn drain(&self) -> usize {
        let handles: Vec<JoinHandle<()>> = {
            let mut v = self.handles.lock();
            v.drain(..).collect()
        };
        let n = handles.len();
        for h in handles {
            if h.join().is_err() {
                self.panicked.inc();
            }
        }
        n
    }

    /// Handlers currently tracked (may include already-finished ones
    /// not yet reaped).
    pub fn len(&self) -> usize {
        self.handles.lock().len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex;
    use std::io::{Read, Write};

    struct Echo;
    impl Service<BoxedConn> for Echo {
        fn handle(&self, mut conn: BoxedConn, idle: Option<Duration>) -> Outcome {
            conn.set_deadlines(idle, idle);
            let mut buf = [0u8; 64];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) => return Outcome::Ok,
                    Ok(n) => {
                        let Some(chunk) = buf.get(..n) else { return Outcome::Error };
                        if conn.write_all(chunk).is_err() {
                            return Outcome::Error;
                        }
                        if conn.flush().is_err() {
                            return Outcome::Error;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::TimedOut => return Outcome::Timeout,
                    Err(_) => return Outcome::Error,
                }
            }
        }
    }

    fn quick_cfg() -> NetConfig {
        NetConfig {
            workers: 2,
            max_connections: 8,
            handshake_deadline: Some(Duration::from_millis(500)),
            idle_deadline: Some(Duration::from_millis(500)),
            shutdown_grace: Duration::from_secs(2),
            poll_interval: Duration::from_millis(1),
            accept_backoff_start: Duration::from_millis(1),
            accept_backoff_max: Duration::from_millis(20),
            sweep_interval: None,
        }
    }

    #[test]
    fn pool_serves_and_shuts_down() {
        let (push, accept) = accept_queue::<BoxedConn>();
        let handle = serve(accept, Arc::new(Echo), quick_cfg()).unwrap();
        let (mut client, server_end) = duplex();
        push.push(Box::new(server_end)).unwrap();
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        drop(client);
        let stats = handle.stats();
        let report = handle.shutdown();
        assert!(report.drained);
        assert_eq!(report.workers_joined, 2);
        assert_eq!(stats.completed(), 1);
    }

    #[test]
    fn accept_loop_survives_transient_errors() {
        let (push, accept) = accept_queue::<BoxedConn>();
        let handle = serve(accept, Arc::new(Echo), quick_cfg()).unwrap();
        push.push_err(io::Error::new(io::ErrorKind::ConnectionAborted, "aborted"));
        push.push_err(io::Error::from_raw_os_error(24)); // EMFILE
        let (mut client, server_end) = duplex();
        push.push(Box::new(server_end)).unwrap();
        client.write_all(b"ok").unwrap();
        let mut buf = [0u8; 2];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ok");
        drop(client);
        let stats = handle.stats();
        handle.shutdown();
        assert!(stats.accept_retries() >= 2, "retries = {}", stats.accept_retries());
    }

    #[test]
    fn classification_table() {
        use AcceptDisposition::*;
        let k = |kind: io::ErrorKind| classify_accept_error(&io::Error::new(kind, "x"));
        assert_eq!(k(io::ErrorKind::WouldBlock), Idle);
        assert_eq!(k(io::ErrorKind::Interrupted), Idle);
        assert_eq!(k(io::ErrorKind::ConnectionAborted), Transient);
        assert_eq!(classify_accept_error(&io::Error::from_raw_os_error(24)), Transient);
        assert_eq!(classify_accept_error(&io::Error::from_raw_os_error(23)), Transient);
        assert_eq!(k(io::ErrorKind::NotConnected), Fatal);
    }

    #[test]
    fn faulty_transport_counts_frames() {
        let (mut a, b) = duplex();
        // Two frames: 3-byte body and 1-byte body.
        a.write_all(&[0, 0, 0, 3, b'x', b'y', b'z']).unwrap();
        a.write_all(&[0, 0, 0, 1, b'q']).unwrap();
        let mut ft = FaultyTransport::new(b).short_reads().eof_after_read_frames(2);
        let mut out = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            match ft.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(buf.get(..n).unwrap()),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // Both frames delivered in full, then EOF — never a third.
        assert_eq!(out, vec![0, 0, 0, 3, b'x', b'y', b'z', 0, 0, 0, 1, b'q']);
        assert_eq!(ft.frames_read(), 2);
    }

    #[test]
    fn faulty_transport_write_fault_fires() {
        let (a, _b) = duplex();
        let mut ft = FaultyTransport::new(a).error_after_write_bytes(4, io::ErrorKind::BrokenPipe);
        ft.write_all(&[1, 2, 3, 4]).unwrap();
        let err = ft.write_all(&[5]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn handler_set_joins_all() {
        use std::sync::atomic::AtomicU64;
        let set = HandlerSet::new();
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..4 {
            let c = counter.clone();
            set.spawn(&format!("h{i}"), move || {
                std::thread::sleep(Duration::from_millis(5));
                c.fetch_add(1, Ordering::AcqRel);
            })
            .unwrap();
        }
        assert_eq!(set.drain(), 4);
        assert_eq!(counter.load(Ordering::Acquire), 4);
    }
}
