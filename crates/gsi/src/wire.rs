//! Tiny length-prefixed binary serialization for handshake and
//! delegation messages. Big-endian, explicit lengths, hard caps — no
//! self-describing cleverness.

use crate::GsiError;

/// Maximum length of any single field (certificates are a few KB; this
/// bounds hostile inputs).
pub const MAX_FIELD: usize = 1 << 20;

/// Maximum entries in a byte-string list (a proxy chain is a handful of
/// certificates; enforced symmetrically by writer and reader).
pub const MAX_LIST: usize = 64;

/// Append-only writer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Length-prefixed bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        // lint:allow(R1) local invariant, not attacker input: callers only write reader-bounded or locally built fields; a cap break is a bug best caught loudly
        assert!(v.len() <= MAX_FIELD, "wire field too large");
        // lint:allow(R4) cannot truncate: v.len() <= MAX_FIELD (1 MiB) asserted on the line above
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// A list of length-prefixed byte strings.
    pub fn byte_list(&mut self, items: &[Vec<u8>]) -> &mut Self {
        // lint:allow(R1) mirrors the reader's MAX_LIST cap; a longer list is a local logic error
        assert!(items.len() <= MAX_LIST, "wire list too long");
        // lint:allow(R4) cannot truncate: items.len() <= MAX_LIST (64) asserted on the line above
        self.u32(items.len() as u32);
        for item in items {
            self.bytes(item);
        }
        self
    }
}

/// Consuming reader with strict bounds checking.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], GsiError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| GsiError::Protocol("wire message truncated".into()))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| GsiError::Protocol("wire message truncated".into()))?;
        self.pos = end;
        Ok(slice)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, GsiError> {
        Ok(self.take(1)?[0])
    }

    /// Big-endian u32.
    pub fn u32(&mut self) -> Result<u32, GsiError> {
        let arr: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| GsiError::Protocol("wire message truncated".into()))?;
        Ok(u32::from_be_bytes(arr))
    }

    /// Big-endian u64.
    pub fn u64(&mut self) -> Result<u64, GsiError> {
        let arr: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| GsiError::Protocol("wire message truncated".into()))?;
        Ok(u64::from_be_bytes(arr))
    }

    /// Length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], GsiError> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD {
            return Err(GsiError::Protocol("wire field exceeds limit".into()));
        }
        self.take(len)
    }

    /// Length-prefixed string.
    pub fn string(&mut self) -> Result<String, GsiError> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| GsiError::Protocol("wire string not UTF-8".into()))
    }

    /// List of byte strings.
    pub fn byte_list(&mut self) -> Result<Vec<Vec<u8>>, GsiError> {
        let count = self.u32()? as usize;
        if count > 64 {
            return Err(GsiError::Protocol("wire list too long".into()));
        }
        (0..count).map(|_| Ok(self.bytes()?.to_vec())).collect()
    }

    /// Error unless fully consumed.
    pub fn finish(&self) -> Result<(), GsiError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(GsiError::Protocol("trailing bytes in wire message".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = WireWriter::new();
        w.u8(7)
            .u32(0xdeadbeef)
            .u64(u64::MAX)
            .bytes(b"hello")
            .string("world")
            .byte_list(&[b"a".to_vec(), b"bb".to_vec()]);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.string().unwrap(), "world");
        assert_eq!(r.byte_list().unwrap(), vec![b"a".to_vec(), b"bb".to_vec()]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut w = WireWriter::new();
        w.bytes(b"hello");
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf[..buf.len() - 1]);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.u8(1).u8(2);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        // Claims a 4GB field.
        let buf = [0xff, 0xff, 0xff, 0xff];
        let mut r = WireReader::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn hostile_list_count_rejected() {
        let buf = [0x00, 0x00, 0xff, 0x00];
        let mut r = WireReader::new(&buf);
        assert!(r.byte_list().is_err());
    }
}
