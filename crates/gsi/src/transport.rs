//! Byte transports: anything `Read + Write + Send` works under the
//! secure channel. Real deployments use TCP ([`std::net::TcpStream`]
//! already qualifies); tests and benches use the in-memory [`duplex`]
//! pipe; the §5.2 snooping experiments wrap either in a [`Tap`].

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A bidirectional byte stream usable by the channel layer.
pub trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// A boxed transport, for components (like the Grid portal) that are
/// configured with connector closures rather than concrete stream types.
pub type BoxedTransport = Box<dyn ReadWriteSend>;

/// Object-safe supertrait bundle behind [`BoxedTransport`].
pub trait ReadWriteSend: Read + Write + Send {}
impl<T: Read + Write + Send> ReadWriteSend for T {}

/// A connector: dials a fresh connection to some service.
pub type Connector = std::sync::Arc<dyn Fn() -> std::io::Result<BoxedTransport> + Send + Sync>;

/// Shared state of one direction of a [`duplex`] pipe.
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
}

impl Pipe {
    fn new() -> Arc<Self> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState { buf: VecDeque::new(), closed: false }),
            readable: Condvar::new(),
        })
    }

    fn write(&self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        st.buf.extend(data);
        self.readable.notify_all();
        Ok(data.len())
    }

    fn read(&self, out: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        // A deadline, not a per-wait timeout: spurious wakeups and
        // partial waits never extend the total blocking time.
        let deadline = timeout.and_then(|t| Instant::now().checked_add(t));
        let mut st = self.state.lock();
        while st.buf.is_empty() {
            if st.closed {
                return Ok(0); // EOF
            }
            match deadline {
                None => self.readable.wait(&mut st),
                Some(dl) => {
                    let left = dl.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "read deadline exceeded",
                        ));
                    }
                    let _ = self.readable.wait_for(&mut st, left);
                }
            }
        }
        let n = out.len().min(st.buf.len());
        for (slot, byte) in out.iter_mut().zip(st.buf.drain(..n)) {
            *slot = byte;
        }
        Ok(n)
    }

    fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        self.readable.notify_all();
    }
}

/// One endpoint of an in-memory duplex connection.
///
/// Mirrors [`std::net::TcpStream`]'s deadline surface: an optional
/// read timeout turns a blocked read into `ErrorKind::TimedOut`, so
/// in-memory tests exercise the same eviction paths as real sockets.
pub struct MemStream {
    read_from: Arc<Pipe>,
    write_to: Arc<Pipe>,
    read_timeout: Cell<Option<Duration>>,
    write_timeout: Cell<Option<Duration>>,
}

impl MemStream {
    /// Cap how long a read may block (`None` = block forever), like
    /// [`std::net::TcpStream::set_read_timeout`] but infallible.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) {
        self.read_timeout.set(timeout);
    }

    /// Mirror of [`std::net::TcpStream::set_write_timeout`]. The pipe's
    /// buffer is unbounded so writes never block; the value is stored
    /// for API parity and introspection.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) {
        self.write_timeout.set(timeout);
    }

    /// The currently configured read timeout.
    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout.get()
    }

    /// The currently configured write timeout.
    pub fn write_timeout(&self) -> Option<Duration> {
        self.write_timeout.get()
    }
}

impl Read for MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.read_from.read(buf, self.read_timeout.get())
    }
}

impl Write for MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_to.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for MemStream {
    fn drop(&mut self) {
        // Closing our write side EOFs the peer's reads; closing our read
        // side makes the peer's writes fail fast.
        self.write_to.close();
        self.read_from.close();
    }
}

/// Create a connected pair of in-memory streams. Blocking semantics
/// mirror a TCP socket: reads wait for data, EOF on peer drop.
pub fn duplex() -> (MemStream, MemStream) {
    let a_to_b = Pipe::new();
    let b_to_a = Pipe::new();
    (
        MemStream {
            read_from: b_to_a.clone(),
            write_to: a_to_b.clone(),
            read_timeout: Cell::new(None),
            write_timeout: Cell::new(None),
        },
        MemStream {
            read_from: a_to_b,
            write_to: b_to_a,
            read_timeout: Cell::new(None),
            write_timeout: Cell::new(None),
        },
    )
}

/// A wiretap: records every byte that passes in either direction.
///
/// Used by the security-property tests to play the network eavesdropper
/// of paper §5.1/§5.2 ("all data passing to and from the server is
/// encrypted") and to measure wire overhead in benches.
pub struct Tap<T> {
    inner: T,
    log: Arc<Mutex<TapLog>>,
}

/// Everything a [`Tap`] captured.
#[derive(Default, Clone)]
pub struct TapLog {
    /// Bytes written through the tap.
    pub sent: Vec<u8>,
    /// Bytes read through the tap.
    pub received: Vec<u8>,
}

impl TapLog {
    /// All captured bytes, both directions.
    pub fn all(&self) -> Vec<u8> {
        let mut v = self.sent.clone();
        v.extend_from_slice(&self.received);
        v
    }

    /// Does the capture contain `needle` as a substring?
    pub fn contains(&self, needle: &[u8]) -> bool {
        let all = self.all();
        !needle.is_empty() && all.windows(needle.len()).any(|w| w == needle)
    }
}

impl<T> Tap<T> {
    /// Wrap `inner`, returning the tap and a handle to its capture log.
    pub fn new(inner: T) -> (Self, Arc<Mutex<TapLog>>) {
        let log = Arc::new(Mutex::new(TapLog::default()));
        (Tap { inner, log: log.clone() }, log)
    }
}

impl<T: Read> Read for Tap<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        // Read contract says n <= buf.len(); don't panic if inner lies.
        if let Some(chunk) = buf.get(..n) {
            self.log.lock().received.extend_from_slice(chunk);
        }
        Ok(n)
    }
}

impl<T: Write> Write for Tap<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        // Write contract says n <= buf.len(); don't panic if inner lies.
        if let Some(chunk) = buf.get(..n) {
            self.log.lock().sent.extend_from_slice(chunk);
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn duplex_carries_bytes_both_ways() {
        let (mut a, mut b) = duplex();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn duplex_blocks_until_data_arrives() {
        let (mut a, mut b) = duplex();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        a.write_all(b"later").unwrap();
        assert_eq!(&t.join().unwrap(), b"later");
    }

    #[test]
    fn read_timeout_fires_on_idle_pipe() {
        let (mut a, _b) = duplex();
        a.set_read_timeout(Some(std::time::Duration::from_millis(10)));
        let mut buf = [0u8; 1];
        let err = a.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        // Clearing the timeout restores blocking reads (data already
        // queued, so this returns immediately).
        a.set_read_timeout(None);
        drop(_b);
        assert_eq!(a.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn read_timeout_does_not_drop_buffered_data() {
        let (mut a, mut b) = duplex();
        b.write_all(b"x").unwrap();
        a.set_read_timeout(Some(std::time::Duration::from_millis(1)));
        let mut buf = [0u8; 1];
        assert_eq!(a.read(&mut buf).unwrap(), 1);
        assert_eq!(&buf, b"x");
    }

    #[test]
    fn drop_gives_eof() {
        let (a, mut b) = duplex();
        drop(a);
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn write_after_peer_drop_fails() {
        let (mut a, b) = duplex();
        drop(b);
        assert!(a.write_all(b"x").is_err());
    }

    #[test]
    fn tap_records_both_directions() {
        let (a, mut b) = duplex();
        let (mut tapped, log) = Tap::new(a);
        tapped.write_all(b"secret-out").unwrap();
        b.write_all(b"secret-in").unwrap();
        let mut buf = [0u8; 9];
        tapped.read_exact(&mut buf).unwrap();
        let log = log.lock();
        assert!(log.contains(b"secret-out"));
        assert!(log.contains(b"secret-in"));
        assert!(!log.contains(b"never-sent"));
    }
}
