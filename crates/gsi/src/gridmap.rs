//! The gridmap file: DN → local account mapping.
//!
//! Paper §2.1: "Resources then typically have local configuration for
//! mapping the DN to a local identity (e.g. Unix hosts have a file
//! containing DN and username pairs)." `mp-gram` consults this on every
//! authenticated request.

use mp_x509::Dn;
use std::collections::HashMap;

/// A DN → username map, parseable from the classic grid-mapfile format.
///
/// ```
/// use mp_gsi::Gridmap;
/// use mp_x509::Dn;
/// let text = "# comments and blank lines ignored\n\"/O=Grid/OU=ANL/CN=Jason Novotny\" jnovotny\n";
/// let map = Gridmap::parse(text).unwrap();
/// let dn = Dn::parse("/O=Grid/OU=ANL/CN=Jason Novotny").unwrap();
/// assert_eq!(map.lookup(&dn), Some("jnovotny"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gridmap {
    entries: HashMap<String, String>,
}

impl Gridmap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a mapping.
    pub fn add(&mut self, dn: &Dn, local_user: &str) {
        self.entries.insert(dn.to_string(), local_user.to_string());
    }

    /// Look up the local account for a validated Grid identity.
    pub fn lookup(&self, dn: &Dn) -> Option<&str> {
        self.entries.get(&dn.to_string()).map(String::as_str)
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parse the grid-mapfile text format. Lines are
    /// `"<quoted DN>" <username>`; `#` starts a comment.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut map = Gridmap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line
                .strip_prefix('"')
                .ok_or_else(|| format!("line {}: DN must be quoted", lineno + 1))?;
            let (dn_str, after) = rest
                .split_once('"')
                .ok_or_else(|| format!("line {}: unterminated quote", lineno + 1))?;
            let user = after.trim();
            if user.is_empty() || user.contains(char::is_whitespace) {
                return Err(format!("line {}: expected exactly one username", lineno + 1));
            }
            let dn = Dn::parse(dn_str).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            map.add(&dn, user);
        }
        Ok(map)
    }

    /// Render back to the grid-mapfile format (sorted for determinism).
    pub fn to_text(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|(dn, user)| format!("\"{dn}\" {user}"))
            .collect();
        lines.sort();
        lines.join("\n") + "\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut map = Gridmap::new();
        let dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        map.add(&dn, "alice");
        assert_eq!(map.lookup(&dn), Some("alice"));
        assert_eq!(map.lookup(&Dn::parse("/O=Grid/CN=bob").unwrap()), None);
    }

    #[test]
    fn parse_classic_format() {
        let text = r#"
# Grid mapfile
"/O=Grid/OU=ANL/CN=Jason Novotny" jnovotny
"/O=Grid/CN=alice" alice

"#;
        let map = Gridmap::parse(text).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(
            map.lookup(&Dn::parse("/O=Grid/OU=ANL/CN=Jason Novotny").unwrap()),
            Some("jnovotny")
        );
    }

    #[test]
    fn parse_errors() {
        assert!(Gridmap::parse("/O=Grid/CN=x alice").is_err()); // unquoted
        assert!(Gridmap::parse("\"/O=Grid/CN=x alice").is_err()); // unterminated
        assert!(Gridmap::parse("\"/O=Grid/CN=x\"").is_err()); // no user
        assert!(Gridmap::parse("\"/O=Grid/CN=x\" a b").is_err()); // two users
    }

    #[test]
    fn text_roundtrip() {
        let mut map = Gridmap::new();
        map.add(&Dn::parse("/O=Grid/CN=alice").unwrap(), "alice");
        map.add(&Dn::parse("/O=Grid/CN=bob").unwrap(), "bob");
        let map2 = Gridmap::parse(&map.to_text()).unwrap();
        assert_eq!(map2.len(), 2);
        assert_eq!(map2.lookup(&Dn::parse("/O=Grid/CN=bob").unwrap()), Some("bob"));
    }

    #[test]
    fn proxy_subject_not_mapped_directly() {
        // gridmaps hold user identities; proxies map via their effective
        // identity after validation.
        let mut map = Gridmap::new();
        map.add(&Dn::parse("/O=Grid/CN=alice").unwrap(), "alice");
        assert_eq!(map.lookup(&Dn::parse("/O=Grid/CN=alice/CN=proxy").unwrap()), None);
    }
}
