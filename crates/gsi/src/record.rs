//! Length-framed records, plaintext and sealed.
//!
//! The plaintext frames carry the handshake; after key agreement the
//! [`SealedRecords`] layer gives the confidentiality + integrity +
//! anti-replay properties SSL gives GSI (paper §2.2), via AES-CTR +
//! HMAC-SHA256 with per-direction keys and sequence numbers.

use crate::{GsiError, Result};
use mp_crypto::ctr::KeyedBox;
use std::io::{Read, Write};

/// Cap on any record (handshake or data). Certificates and MyProxy
/// payloads are small; this bounds a hostile peer.
pub const MAX_RECORD_LEN: usize = 4 << 20;

/// Validate a wire-decoded length prefix *while it is still a `u32`*,
/// before any widening cast or allocation sees it. Returns the clamped
/// value as `usize` only once it is known to fit under
/// [`MAX_RECORD_LEN`].
pub fn checked_record_len(wire: u32) -> Result<usize> {
    if wire as u64 > MAX_RECORD_LEN as u64 {
        return Err(GsiError::Protocol("incoming record too large".into()));
    }
    Ok(wire as usize)
}

/// Write one `u32`-length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_RECORD_LEN {
        return Err(GsiError::Protocol("outgoing record too large".into()));
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| GsiError::Protocol("outgoing record too large".into()))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = checked_record_len(u32::from_be_bytes(len_buf))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Directional key material derived by the handshake.
#[derive(Clone)]
pub struct DirectionKeys {
    /// AES-256 key.
    pub enc: [u8; 32],
    /// HMAC-SHA256 key.
    pub mac: [u8; 32],
}

/// Sealing/opening of records for one side of a channel.
///
/// Each record is sealed with a nonce derived from the direction label
/// and a monotonically increasing sequence number, and the sequence
/// number is bound into the MAC (as AAD) — so replayed, reordered or
/// cross-direction-reflected records all fail to open.
pub struct SealedRecords {
    send_keys: DirectionKeys,
    recv_keys: DirectionKeys,
    send_seq: u64,
    recv_seq: u64,
    send_label: u8,
    recv_label: u8,
}

impl SealedRecords {
    /// Build from handshake keys. `is_client` picks which direction is
    /// which.
    pub fn new(client_keys: DirectionKeys, server_keys: DirectionKeys, is_client: bool) -> Self {
        let (send_keys, recv_keys, send_label, recv_label) = if is_client {
            (client_keys, server_keys, b'C', b'S')
        } else {
            (server_keys, client_keys, b'S', b'C')
        };
        SealedRecords { send_keys, recv_keys, send_seq: 0, recv_seq: 0, send_label, recv_label }
    }

    fn nonce(label: u8, seq: u64) -> [u8; 16] {
        let mut n = [0u8; 16];
        n[0] = label;
        n[8..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Seal and send one record.
    pub fn send<W: Write>(&mut self, w: &mut W, plaintext: &[u8]) -> Result<()> {
        let nonce = Self::nonce(self.send_label, self.send_seq);
        let aad = self.send_seq.to_be_bytes();
        let sealed = KeyedBox::seal(&self.send_keys.enc, &self.send_keys.mac, &nonce, plaintext, &aad);
        self.send_seq = self
            .send_seq
            .checked_add(1)
            .ok_or_else(|| GsiError::Protocol("send sequence exhausted".into()))?;
        write_frame(w, &sealed)
    }

    /// Receive and open one record.
    pub fn recv<R: Read>(&mut self, r: &mut R) -> Result<Vec<u8>> {
        let sealed = read_frame(r)?;
        let nonce = Self::nonce(self.recv_label, self.recv_seq);
        let aad = self.recv_seq.to_be_bytes();
        let plaintext = KeyedBox::open(&self.recv_keys.enc, &self.recv_keys.mac, &nonce, &sealed, &aad)
            .map_err(|_| GsiError::Crypto("record MAC verification failed"))?;
        self.recv_seq += 1;
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex;

    fn keys(tag: u8) -> DirectionKeys {
        DirectionKeys { enc: [tag; 32], mac: [tag ^ 0xff; 32] }
    }

    fn pair() -> (SealedRecords, SealedRecords) {
        (
            SealedRecords::new(keys(1), keys(2), true),
            SealedRecords::new(keys(1), keys(2), false),
        )
    }

    #[test]
    fn frame_roundtrip() {
        let (mut a, mut b) = duplex();
        write_frame(&mut a, b"hello frames").unwrap();
        assert_eq!(read_frame(&mut b).unwrap(), b"hello frames");
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let (mut a, mut b) = duplex();
        a.write_all(&(u32::MAX).to_be_bytes()).unwrap();
        assert!(matches!(read_frame(&mut b), Err(GsiError::Protocol(_))));
    }

    #[test]
    fn record_len_boundary() {
        // Exactly the cap is fine; one past it is rejected while the
        // value is still a u32 — no allocation sees the raw length.
        assert_eq!(checked_record_len(MAX_RECORD_LEN as u32).unwrap(), MAX_RECORD_LEN);
        assert!(matches!(
            checked_record_len(MAX_RECORD_LEN as u32 + 1),
            Err(GsiError::Protocol(_))
        ));
        assert!(matches!(checked_record_len(u32::MAX), Err(GsiError::Protocol(_))));
        assert_eq!(checked_record_len(0).unwrap(), 0);
    }

    #[test]
    fn adversarial_length_prefix_never_allocates() {
        // A hostile peer advertising a huge frame must be cut off at
        // the length prefix: `read_frame` errors without ever asking
        // for the advertised buffer (the body bytes are absent, so a
        // pre-check allocation would hang or OOM instead of erroring).
        for adv in [MAX_RECORD_LEN as u32 + 1, 1 << 30, u32::MAX] {
            let (mut a, mut b) = duplex();
            a.write_all(&adv.to_be_bytes()).unwrap();
            assert!(
                matches!(read_frame(&mut b), Err(GsiError::Protocol(_))),
                "length {adv} was not rejected"
            );
        }
    }

    #[test]
    fn sealed_roundtrip_both_directions() {
        let (mut c, mut s) = pair();
        let (mut ct, mut st) = duplex();
        c.send(&mut ct, b"from client").unwrap();
        assert_eq!(s.recv(&mut st).unwrap(), b"from client");
        s.send(&mut st, b"from server").unwrap();
        assert_eq!(c.recv(&mut ct).unwrap(), b"from server");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let (mut c, _s) = pair();
        let (mut ct, mut st) = duplex();
        c.send(&mut ct, b"TOP-SECRET-PASSPHRASE").unwrap();
        let raw = read_frame(&mut st).unwrap();
        assert!(!raw.windows(21).any(|w| w == b"TOP-SECRET-PASSPHRASE"));
    }

    #[test]
    fn replayed_record_rejected() {
        let (mut c, mut s) = pair();
        let (mut ct, mut st) = duplex();
        c.send(&mut ct, b"one").unwrap();
        let raw = read_frame(&mut st).unwrap();
        // Deliver it once legitimately...
        let mut replay_buf = Vec::new();
        replay_buf.extend_from_slice(&(raw.len() as u32).to_be_bytes());
        replay_buf.extend_from_slice(&raw);
        let mut cursor = std::io::Cursor::new(replay_buf.clone());
        assert_eq!(s.recv(&mut cursor).unwrap(), b"one");
        // ...then replay: the sequence number has advanced, MAC fails.
        let mut cursor = std::io::Cursor::new(replay_buf);
        assert!(s.recv(&mut cursor).is_err());
    }

    #[test]
    fn tampered_record_rejected() {
        let (mut c, mut s) = pair();
        let (mut ct, mut st) = duplex();
        c.send(&mut ct, b"payload").unwrap();
        let mut raw = read_frame(&mut st).unwrap();
        raw[0] ^= 1;
        let mut buf = Vec::new();
        buf.extend_from_slice(&(raw.len() as u32).to_be_bytes());
        buf.extend_from_slice(&raw);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(s.recv(&mut cursor).is_err());
    }

    #[test]
    fn reflected_record_rejected() {
        // A record sealed by the client cannot be opened by the client
        // (direction label differs), blocking reflection attacks.
        let (mut c, _s) = pair();
        let (mut ct, mut st) = duplex();
        c.send(&mut ct, b"to server").unwrap();
        let raw = read_frame(&mut st).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&(raw.len() as u32).to_be_bytes());
        buf.extend_from_slice(&raw);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(c.recv(&mut cursor).is_err());
    }

    #[test]
    fn wrong_keys_fail() {
        let mut c = SealedRecords::new(keys(1), keys(2), true);
        let mut s = SealedRecords::new(keys(3), keys(4), false);
        let (mut ct, mut st) = duplex();
        c.send(&mut ct, b"x").unwrap();
        assert!(s.recv(&mut st).is_err());
    }
}
