//! DER edge cases: length-encoding boundaries, deep nesting, and the
//! exact time-format corners X.509 parsing depends on.

use mp_asn1::{Decoder, Encoder, Tag};
use mp_bignum::BigUint;

/// Octet strings at every length-encoding boundary round-trip.
#[test]
fn length_encoding_boundaries() {
    for len in [0usize, 1, 127, 128, 129, 255, 256, 257, 65_535, 65_536, 100_000] {
        let data = vec![0x5au8; len];
        let mut enc = Encoder::new();
        enc.octet_string(&data);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.octet_string().unwrap(), &data[..], "len={len}");
        dec.finish().unwrap();
    }
}

/// The length header itself must be minimal at the boundaries.
#[test]
fn length_header_sizes() {
    let header_len = |content: usize| {
        let mut enc = Encoder::new();
        enc.octet_string(&vec![0u8; content]);
        enc.into_bytes().len() - content
    };
    assert_eq!(header_len(127), 2); // tag + short length
    assert_eq!(header_len(128), 3); // tag + 0x81 + 1 byte
    assert_eq!(header_len(255), 3);
    assert_eq!(header_len(256), 4); // tag + 0x82 + 2 bytes
}

/// Deeply nested sequences encode and decode without blowing the stack
/// at reasonable depths.
#[test]
fn deep_nesting() {
    const DEPTH: usize = 200;
    fn nest(enc: &mut Encoder, depth: usize) {
        if depth == 0 {
            enc.uint_u64(7);
        } else {
            enc.sequence(|inner| nest(inner, depth - 1));
        }
    }
    let mut enc = Encoder::new();
    nest(&mut enc, DEPTH);
    let bytes = enc.into_bytes();

    fn unnest(dec: &mut Decoder, depth: usize) -> u64 {
        if depth == 0 {
            dec.uint_u64().unwrap()
        } else {
            let mut inner = dec.sequence().unwrap();
            unnest(&mut inner, depth - 1)
        }
    }
    let mut dec = Decoder::new(&bytes);
    assert_eq!(unnest(&mut dec, DEPTH), 7);
}

/// INTEGER encodings are minimal: exactly one leading zero only when
/// the high bit would flip the sign.
#[test]
fn integer_minimality_sweep() {
    for v in [0u64, 1, 0x7f, 0x80, 0xff, 0x100, 0x7fff, 0x8000, u64::MAX] {
        let mut enc = Encoder::new();
        enc.uint_u64(v);
        let bytes = enc.into_bytes();
        let content = &bytes[2..];
        if content.len() > 1 {
            // No gratuitous leading zero...
            assert!(
                content[0] != 0 || content[1] & 0x80 != 0,
                "non-minimal INTEGER for {v:#x}: {content:?}"
            );
        }
        // ...and the high bit of the value is never the first bit.
        assert_eq!(content[0] & 0x80, 0, "INTEGER {v:#x} would read as negative");
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.uint_u64().unwrap(), v);
    }
}

/// Very large INTEGERs (RSA-modulus sized) round-trip.
#[test]
fn huge_integer_roundtrip() {
    let n = BigUint::from_be_bytes(&vec![0xffu8; 256]); // 2048-bit all-ones
    let mut enc = Encoder::new();
    enc.uint(&n);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    assert_eq!(dec.uint().unwrap(), n);
}

/// Time boundaries: the 2049/2050 UTCTime pivot and GeneralizedTime
/// beyond it; leap-day handling.
#[test]
fn time_corners() {
    // 2049-12-31 23:59:59 via UTCTime.
    let mut enc = Encoder::new();
    enc.utc_time(2_524_607_999);
    let bytes = enc.into_bytes();
    assert_eq!(Decoder::new(&bytes).time().unwrap(), 2_524_607_999);

    // Same instant as GeneralizedTime.
    let mut enc = Encoder::new();
    enc.generalized_time(2_524_607_999);
    let bytes = enc.into_bytes();
    assert_eq!(Decoder::new(&bytes).time().unwrap(), 2_524_607_999);

    // 2000-02-29 (leap day in a century year divisible by 400).
    let leap = 951_782_400; // 2000-02-29 00:00:00 UTC
    let mut enc = Encoder::new();
    enc.generalized_time(leap);
    let bytes = enc.into_bytes();
    assert_eq!(&bytes[2..], b"20000229000000Z");
    assert_eq!(Decoder::new(&bytes).time().unwrap(), leap);
}

/// Context tags with the same number but different classes do not
/// confuse the decoder.
#[test]
fn context_tag_discrimination() {
    let mut enc = Encoder::new();
    enc.constructed(Tag::context(0), |c| {
        c.uint_u64(1);
    });
    enc.tlv(Tag::context_primitive(0), &[0xaa]);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    let mut ctx = dec.context(0).unwrap();
    assert_eq!(ctx.uint_u64().unwrap(), 1);
    assert_eq!(dec.expect(Tag::context_primitive(0)).unwrap(), &[0xaa]);
    dec.finish().unwrap();
}

/// `optional` does not consume on mismatch and works at end-of-input.
#[test]
fn optional_behaviour() {
    let mut enc = Encoder::new();
    enc.uint_u64(5);
    let bytes = enc.into_bytes();
    let mut dec = Decoder::new(&bytes);
    assert!(dec.optional(Tag::OCTET_STRING).unwrap().is_none());
    assert_eq!(dec.uint_u64().unwrap(), 5);
    assert!(dec.optional(Tag::OCTET_STRING).unwrap().is_none());
    dec.finish().unwrap();
}
