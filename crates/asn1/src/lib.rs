//! Minimal ASN.1 DER encoding and decoding.
//!
//! Implements exactly the subset of DER that X.509 certificates, CSRs,
//! CRLs and RSA keys need: definite lengths only, the universal types
//! below, and context-specific constructed/primitive tags.
//!
//! * [`Encoder`] — push-style writer producing canonical DER
//! * [`Decoder`] — pull-style reader with strict length checking
//! * [`Oid`] — object identifiers with the dotted-decimal notation
//! * [`Tag`] — the tag vocabulary
//!
//! ```
//! use mp_asn1::{Encoder, Decoder};
//! let mut enc = Encoder::new();
//! enc.sequence(|s| {
//!     s.uint_u64(65537);
//!     s.utf8_string("hello");
//! });
//! let der = enc.into_bytes();
//! let mut dec = Decoder::new(&der);
//! let mut seq = dec.sequence().unwrap();
//! assert_eq!(seq.uint_u64().unwrap(), 65537);
//! assert_eq!(seq.string().unwrap(), "hello");
//! seq.finish().unwrap();
//! ```

mod decode;
mod encode;
pub mod oid;

pub use decode::{Decoder, DecodeError};
pub use encode::Encoder;
pub use oid::Oid;

/// ASN.1 tags used by this workspace (class | constructed | number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u8);

impl Tag {
    pub const BOOLEAN: Tag = Tag(0x01);
    pub const INTEGER: Tag = Tag(0x02);
    pub const BIT_STRING: Tag = Tag(0x03);
    pub const OCTET_STRING: Tag = Tag(0x04);
    pub const NULL: Tag = Tag(0x05);
    pub const OID: Tag = Tag(0x06);
    pub const UTF8_STRING: Tag = Tag(0x0c);
    pub const PRINTABLE_STRING: Tag = Tag(0x13);
    pub const IA5_STRING: Tag = Tag(0x16);
    pub const UTC_TIME: Tag = Tag(0x17);
    pub const GENERALIZED_TIME: Tag = Tag(0x18);
    pub const SEQUENCE: Tag = Tag(0x30);
    pub const SET: Tag = Tag(0x31);

    /// Context-specific constructed tag `[n]`.
    pub const fn context(n: u8) -> Tag {
        Tag(0xa0 | n)
    }

    /// Context-specific primitive tag `[n] IMPLICIT` over a primitive.
    pub const fn context_primitive(n: u8) -> Tag {
        Tag(0x80 | n)
    }

    /// Whether the constructed bit is set.
    pub fn is_constructed(self) -> bool {
        self.0 & 0x20 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_constants_match_der() {
        assert_eq!(Tag::SEQUENCE.0, 0x30);
        assert!(Tag::SEQUENCE.is_constructed());
        assert!(!Tag::INTEGER.is_constructed());
        assert_eq!(Tag::context(0).0, 0xa0);
        assert_eq!(Tag::context(3).0, 0xa3);
        assert_eq!(Tag::context_primitive(1).0, 0x81);
    }
}
