//! Object identifiers, with constants for everything the PKI layer uses.

/// An OBJECT IDENTIFIER as a list of arcs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Oid(pub Vec<u64>);

impl Oid {
    /// From arcs, e.g. `Oid::new(&[1, 2, 840, 113549, 1, 1, 11])`.
    pub fn new(arcs: &[u64]) -> Self {
        assert!(arcs.len() >= 2, "OID needs at least two arcs");
        Oid(arcs.to_vec())
    }

    /// DER content octets (without tag/length).
    pub fn der_content(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.0.len() + 1);
        out.extend(encode_base128(self.0[0] * 40 + self.0[1]));
        for &arc in &self.0[2..] {
            out.extend(encode_base128(arc));
        }
        out
    }

    /// Parse DER content octets.
    pub fn from_der_content(content: &[u8]) -> Option<Self> {
        if content.is_empty() || content.last().is_some_and(|b| b & 0x80 != 0) {
            return None;
        }
        let mut arcs = Vec::new();
        let mut acc: u64 = 0;
        for &b in content {
            acc = acc.checked_mul(128)?.checked_add((b & 0x7f) as u64)?;
            if b & 0x80 == 0 {
                if arcs.is_empty() {
                    let first = (acc / 40).min(2);
                    arcs.push(first);
                    arcs.push(acc - first * 40);
                } else {
                    arcs.push(acc);
                }
                acc = 0;
            }
        }
        Some(Oid(arcs))
    }

    /// Dotted-decimal rendering.
    pub fn to_string_dotted(&self) -> String {
        self.0
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }
}

fn encode_base128(mut v: u64) -> Vec<u8> {
    let mut bytes = vec![(v & 0x7f) as u8];
    v >>= 7;
    while v > 0 {
        bytes.push((v & 0x7f) as u8 | 0x80);
        v >>= 7;
    }
    bytes.reverse();
    bytes
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_string_dotted())
    }
}

/// Well-known OIDs used by the MyProxy PKI.
pub mod known {
    use super::Oid;

    /// sha256WithRSAEncryption (1.2.840.113549.1.1.11).
    pub fn sha256_with_rsa() -> Oid {
        Oid::new(&[1, 2, 840, 113549, 1, 1, 11])
    }

    /// rsaEncryption (1.2.840.113549.1.1.1).
    pub fn rsa_encryption() -> Oid {
        Oid::new(&[1, 2, 840, 113549, 1, 1, 1])
    }

    /// commonName (2.5.4.3).
    pub fn common_name() -> Oid {
        Oid::new(&[2, 5, 4, 3])
    }

    /// organizationName (2.5.4.10).
    pub fn organization() -> Oid {
        Oid::new(&[2, 5, 4, 10])
    }

    /// organizationalUnitName (2.5.4.11).
    pub fn organizational_unit() -> Oid {
        Oid::new(&[2, 5, 4, 11])
    }

    /// countryName (2.5.4.6).
    pub fn country() -> Oid {
        Oid::new(&[2, 5, 4, 6])
    }

    /// basicConstraints (2.5.29.19).
    pub fn basic_constraints() -> Oid {
        Oid::new(&[2, 5, 29, 19])
    }

    /// keyUsage (2.5.29.15).
    pub fn key_usage() -> Oid {
        Oid::new(&[2, 5, 29, 15])
    }

    /// RFC 3820 proxyCertInfo (1.3.6.1.5.5.7.1.14).
    pub fn proxy_cert_info() -> Oid {
        Oid::new(&[1, 3, 6, 1, 5, 5, 7, 1, 14])
    }

    /// RFC 3820 id-ppl-inheritAll (1.3.6.1.5.5.7.21.1).
    pub fn ppl_inherit_all() -> Oid {
        Oid::new(&[1, 3, 6, 1, 5, 5, 7, 21, 1])
    }

    /// RFC 3820 id-ppl-independent (1.3.6.1.5.5.7.21.2).
    pub fn ppl_independent() -> Oid {
        Oid::new(&[1, 3, 6, 1, 5, 5, 7, 21, 2])
    }

    /// Pre-RFC GSI "limited proxy" policy language
    /// (1.3.6.1.4.1.3536.1.1.1.9, the Globus arc).
    pub fn ppl_limited() -> Oid {
        Oid::new(&[1, 3, 6, 1, 4, 1, 3536, 1, 1, 1, 9])
    }

    /// Workspace-local restricted-delegation policy language carrying a
    /// policy expression (DESIGN.md §6.5 substitution for the GGF draft).
    pub fn ppl_restricted() -> Oid {
        Oid::new(&[1, 3, 6, 1, 4, 1, 3536, 1, 1, 1, 10])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_rsa_oid_der() {
        // 1.2.840.113549.1.1.1 => 2a 86 48 86 f7 0d 01 01 01
        let content = known::rsa_encryption().der_content();
        assert_eq!(content, vec![0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x01, 0x01]);
    }

    #[test]
    fn roundtrip_all_known() {
        for oid in [
            known::sha256_with_rsa(),
            known::rsa_encryption(),
            known::common_name(),
            known::basic_constraints(),
            known::key_usage(),
            known::proxy_cert_info(),
            known::ppl_inherit_all(),
            known::ppl_limited(),
            known::ppl_restricted(),
        ] {
            let content = oid.der_content();
            assert_eq!(Oid::from_der_content(&content).unwrap(), oid);
        }
    }

    #[test]
    fn first_two_arcs_packing() {
        // 2.5.4.3 => first octet 2*40+5 = 85 = 0x55
        assert_eq!(known::common_name().der_content(), vec![0x55, 0x04, 0x03]);
    }

    #[test]
    fn rejects_dangling_continuation() {
        assert!(Oid::from_der_content(&[0x80]).is_none());
        assert!(Oid::from_der_content(&[]).is_none());
    }

    #[test]
    fn dotted_rendering() {
        assert_eq!(known::common_name().to_string_dotted(), "2.5.4.3");
    }
}
