//! DER decoder: strict, definite-length-only pull parser.

use crate::{Oid, Tag};
use mp_bignum::BigUint;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the announced structure did.
    Truncated,
    /// Found a different tag than expected.
    UnexpectedTag { expected: u8, found: u8 },
    /// Length octets malformed (indefinite or > usize).
    BadLength,
    /// Content octets malformed for the type.
    BadValue(&'static str),
    /// Trailing bytes after a complete parse.
    TrailingData,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "DER input truncated"),
            DecodeError::UnexpectedTag { expected, found } => {
                write!(f, "expected tag 0x{expected:02x}, found 0x{found:02x}")
            }
            DecodeError::BadLength => write!(f, "malformed DER length"),
            DecodeError::BadValue(what) => write!(f, "malformed DER value: {what}"),
            DecodeError::TrailingData => write!(f, "trailing data after DER structure"),
        }
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

/// Pull-style reader over a DER byte slice.
#[derive(Clone)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Start reading `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Decoder { input, pos: 0 }
    }

    /// True when all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Error unless fully consumed.
    pub fn finish(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::TrailingData)
        }
    }

    /// Peek the next tag byte without consuming.
    pub fn peek_tag(&self) -> Option<Tag> {
        self.input.get(self.pos).map(|&b| Tag(b))
    }

    /// Read one TLV with the expected `tag`, returning its content.
    pub fn expect(&mut self, tag: Tag) -> Result<&'a [u8]> {
        let found = *self.input.get(self.pos).ok_or(DecodeError::Truncated)?;
        if found != tag.0 {
            return Err(DecodeError::UnexpectedTag { expected: tag.0, found });
        }
        self.pos += 1;
        let len = self.read_len()?;
        let start = self.pos;
        let end = start.checked_add(len).ok_or(DecodeError::BadLength)?;
        if end > self.input.len() {
            return Err(DecodeError::Truncated);
        }
        self.pos = end;
        Ok(&self.input[start..end])
    }

    /// Read any TLV, returning (tag, content).
    pub fn any(&mut self) -> Result<(Tag, &'a [u8])> {
        let found = *self.input.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        let len = self.read_len()?;
        let start = self.pos;
        let end = start.checked_add(len).ok_or(DecodeError::BadLength)?;
        if end > self.input.len() {
            return Err(DecodeError::Truncated);
        }
        self.pos = end;
        Ok((Tag(found), &self.input[start..end]))
    }

    /// Read any TLV and return the raw bytes of the whole TLV (header
    /// included) — used to re-hash `tbsCertificate` exactly as received.
    pub fn any_raw(&mut self) -> Result<(Tag, &'a [u8])> {
        let start = self.pos;
        let (tag, _) = self.any()?;
        Ok((tag, &self.input[start..self.pos]))
    }

    /// If the next tag matches, read it; otherwise leave position alone.
    pub fn optional(&mut self, tag: Tag) -> Result<Option<&'a [u8]>> {
        if self.peek_tag() == Some(tag) {
            Ok(Some(self.expect(tag)?))
        } else {
            Ok(None)
        }
    }

    /// SEQUENCE content as a nested decoder.
    pub fn sequence(&mut self) -> Result<Decoder<'a>> {
        Ok(Decoder::new(self.expect(Tag::SEQUENCE)?))
    }

    /// SET content as a nested decoder.
    pub fn set(&mut self) -> Result<Decoder<'a>> {
        Ok(Decoder::new(self.expect(Tag::SET)?))
    }

    /// Context-specific constructed `[n]` content as a nested decoder.
    pub fn context(&mut self, n: u8) -> Result<Decoder<'a>> {
        Ok(Decoder::new(self.expect(Tag::context(n))?))
    }

    /// INTEGER as an unsigned big integer. Rejects negative values
    /// (never valid in the X.509 fields we parse).
    pub fn uint(&mut self) -> Result<BigUint> {
        let content = self.expect(Tag::INTEGER)?;
        if content.is_empty() {
            return Err(DecodeError::BadValue("empty INTEGER"));
        }
        if content[0] & 0x80 != 0 {
            return Err(DecodeError::BadValue("negative INTEGER"));
        }
        Ok(BigUint::from_be_bytes(content))
    }

    /// INTEGER as u64 (for versions, small counters).
    pub fn uint_u64(&mut self) -> Result<u64> {
        self.uint()?
            .to_u64()
            .ok_or(DecodeError::BadValue("INTEGER exceeds u64"))
    }

    /// BOOLEAN.
    pub fn boolean(&mut self) -> Result<bool> {
        let content = self.expect(Tag::BOOLEAN)?;
        match content {
            [0x00] => Ok(false),
            [0xff] => Ok(true),
            _ => Err(DecodeError::BadValue("non-canonical BOOLEAN")),
        }
    }

    /// NULL.
    pub fn null(&mut self) -> Result<()> {
        let content = self.expect(Tag::NULL)?;
        if content.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::BadValue("non-empty NULL"))
        }
    }

    /// OBJECT IDENTIFIER.
    pub fn oid(&mut self) -> Result<Oid> {
        let content = self.expect(Tag::OID)?;
        Oid::from_der_content(content).ok_or(DecodeError::BadValue("malformed OID"))
    }

    /// OCTET STRING content.
    pub fn octet_string(&mut self) -> Result<&'a [u8]> {
        self.expect(Tag::OCTET_STRING)
    }

    /// BIT STRING content; only zero unused bits are accepted.
    pub fn bit_string(&mut self) -> Result<&'a [u8]> {
        let content = self.expect(Tag::BIT_STRING)?;
        match content.split_first() {
            Some((0, rest)) => Ok(rest),
            Some(_) => Err(DecodeError::BadValue("BIT STRING with unused bits")),
            None => Err(DecodeError::BadValue("empty BIT STRING")),
        }
    }

    /// Any of the string types, as UTF-8.
    pub fn string(&mut self) -> Result<String> {
        let (tag, content) = self.any()?;
        if ![Tag::UTF8_STRING, Tag::PRINTABLE_STRING, Tag::IA5_STRING].contains(&tag) {
            return Err(DecodeError::UnexpectedTag { expected: Tag::UTF8_STRING.0, found: tag.0 });
        }
        String::from_utf8(content.to_vec()).map_err(|_| DecodeError::BadValue("invalid UTF-8"))
    }

    /// UTCTime or GeneralizedTime as unix seconds.
    pub fn time(&mut self) -> Result<u64> {
        let (tag, content) = self.any()?;
        let s = std::str::from_utf8(content).map_err(|_| DecodeError::BadValue("time not ASCII"))?;
        match tag {
            Tag::UTC_TIME => parse_utc_time(s),
            Tag::GENERALIZED_TIME => parse_generalized_time(s),
            _ => Err(DecodeError::UnexpectedTag { expected: Tag::UTC_TIME.0, found: tag.0 }),
        }
    }

    fn read_len(&mut self) -> Result<usize> {
        let first = *self.input.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        if first < 0x80 {
            return Ok(first as usize);
        }
        let n_octets = (first & 0x7f) as usize;
        if n_octets == 0 || n_octets > 8 {
            return Err(DecodeError::BadLength); // indefinite or absurd
        }
        let mut len = 0usize;
        for _ in 0..n_octets {
            let b = *self.input.get(self.pos).ok_or(DecodeError::Truncated)?;
            self.pos += 1;
            len = len.checked_shl(8).ok_or(DecodeError::BadLength)? | b as usize;
        }
        Ok(len)
    }
}

fn two_digits(s: &[u8]) -> Result<u32> {
    if s.len() < 2 || !s[0].is_ascii_digit() || !s[1].is_ascii_digit() {
        return Err(DecodeError::BadValue("bad time digits"));
    }
    Ok(((s[0] - b'0') as u32) * 10 + (s[1] - b'0') as u32)
}

fn parse_utc_time(s: &str) -> Result<u64> {
    // YYMMDDHHMMSSZ
    let b = s.as_bytes();
    if b.len() != 13 || b[12] != b'Z' {
        return Err(DecodeError::BadValue("bad UTCTime"));
    }
    let yy = two_digits(&b[0..])? as i64;
    // RFC 5280: two-digit years 00-49 are 20xx, 50-99 are 19xx.
    let year = if yy < 50 { 2000 + yy } else { 1900 + yy };
    to_unix(year, &b[2..])
}

fn parse_generalized_time(s: &str) -> Result<u64> {
    // YYYYMMDDHHMMSSZ
    let b = s.as_bytes();
    if b.len() != 15 || b[14] != b'Z' {
        return Err(DecodeError::BadValue("bad GeneralizedTime"));
    }
    let year = (two_digits(&b[0..])? * 100 + two_digits(&b[2..])?) as i64;
    to_unix(year, &b[4..])
}

fn to_unix(year: i64, rest: &[u8]) -> Result<u64> {
    let mo = two_digits(&rest[0..])?;
    let d = two_digits(&rest[2..])?;
    let h = two_digits(&rest[4..])?;
    let mi = two_digits(&rest[6..])?;
    let s = two_digits(&rest[8..])?;
    if !(1..=12).contains(&mo) || !(1..=31).contains(&d) || h > 23 || mi > 59 || s > 60 {
        return Err(DecodeError::BadValue("time field out of range"));
    }
    if year < 1970 {
        // The workspace clock is u64 unix seconds; pre-epoch validity
        // dates never occur in Grid credentials.
        return Err(DecodeError::BadValue("time before unix epoch"));
    }
    Ok(crate::encode::unix_from_civil(year, mo, d, h, mi, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;
    use proptest::prelude::*;

    #[test]
    fn uint_roundtrip() {
        for v in [0u64, 1, 127, 128, 255, 256, u64::MAX] {
            let mut e = Encoder::new();
            e.uint_u64(v);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.uint_u64().unwrap(), v);
            d.finish().unwrap();
        }
    }

    #[test]
    fn rejects_negative_integer() {
        // INTEGER -1 = 02 01 FF
        let mut d = Decoder::new(&[0x02, 0x01, 0xff]);
        assert!(matches!(d.uint(), Err(DecodeError::BadValue(_))));
    }

    #[test]
    fn rejects_truncated_input() {
        let mut d = Decoder::new(&[0x04, 0x05, 0x01]);
        assert_eq!(d.octet_string(), Err(DecodeError::Truncated));
        let mut d = Decoder::new(&[0x04]);
        assert_eq!(d.octet_string(), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_wrong_tag() {
        let mut d = Decoder::new(&[0x02, 0x01, 0x00]);
        assert!(matches!(
            d.octet_string(),
            Err(DecodeError::UnexpectedTag { expected: 0x04, found: 0x02 })
        ));
    }

    #[test]
    fn rejects_indefinite_length() {
        let mut d = Decoder::new(&[0x30, 0x80, 0x00, 0x00]);
        assert_eq!(d.sequence().err(), Some(DecodeError::BadLength));
    }

    #[test]
    fn trailing_data_detected() {
        let d = Decoder::new(&[0x05, 0x00, 0xaa]);
        let mut d2 = d.clone();
        d2.null().unwrap();
        assert_eq!(d2.finish(), Err(DecodeError::TrailingData));
    }

    #[test]
    fn optional_present_and_absent() {
        let mut e = Encoder::new();
        e.constructed(Tag::context(3), |c| {
            c.null();
        });
        e.uint_u64(7);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.optional(Tag::context(3)).unwrap().is_some());
        assert!(d.optional(Tag::context(4)).unwrap().is_none());
        assert_eq!(d.uint_u64().unwrap(), 7);
    }

    #[test]
    fn any_raw_returns_full_tlv() {
        let mut e = Encoder::new();
        e.sequence(|s| {
            s.uint_u64(1);
        });
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let (tag, raw) = d.any_raw().unwrap();
        assert_eq!(tag, Tag::SEQUENCE);
        assert_eq!(raw, &bytes[..]);
    }

    #[test]
    fn time_roundtrip_utc_and_generalized() {
        for t in [0u64, 997_056_000, 1_700_000_000, 2_200_000_000] {
            let mut e = Encoder::new();
            e.generalized_time(t);
            let bytes = e.into_bytes();
            assert_eq!(Decoder::new(&bytes).time().unwrap(), t);
        }
        // UTCTime range only.
        for t in [997_056_000u64, 1_700_000_000] {
            let mut e = Encoder::new();
            e.utc_time(t);
            let bytes = e.into_bytes();
            assert_eq!(Decoder::new(&bytes).time().unwrap(), t);
        }
    }

    #[test]
    fn utc_time_century_pivot() {
        // 490101000000Z => 2049; 500101000000Z => 1950, which is before
        // the unix epoch and therefore rejected by our u64 clock.
        let mk = |s: &str| {
            let mut v = vec![0x17, s.len() as u8];
            v.extend_from_slice(s.as_bytes());
            v
        };
        let t49 = Decoder::new(&mk("490101000000Z")).time().unwrap();
        assert_eq!(crate::encode::civil_from_unix(t49).0, 2049);
        assert!(matches!(
            Decoder::new(&mk("500101000000Z")).time(),
            Err(DecodeError::BadValue(_))
        ));
    }

    #[test]
    fn bit_string_unused_bits_rejected() {
        let mut d = Decoder::new(&[0x03, 0x02, 0x03, 0xa8]);
        assert!(matches!(d.bit_string(), Err(DecodeError::BadValue(_))));
    }

    #[test]
    fn boolean_noncanonical_rejected() {
        let mut d = Decoder::new(&[0x01, 0x01, 0x01]);
        assert!(matches!(d.boolean(), Err(DecodeError::BadValue(_))));
    }

    proptest! {
        #[test]
        fn prop_octet_string_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..400)) {
            let mut e = Encoder::new();
            e.octet_string(&data);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            prop_assert_eq!(d.octet_string().unwrap(), &data[..]);
            prop_assert!(d.finish().is_ok());
        }

        #[test]
        fn prop_uint_roundtrip(limbs in proptest::collection::vec(any::<u64>(), 0..6)) {
            let v = mp_bignum::BigUint::from_be_bytes(
                &limbs.iter().flat_map(|l| l.to_be_bytes()).collect::<Vec<_>>(),
            );
            let mut e = Encoder::new();
            e.uint(&v);
            let bytes = e.into_bytes();
            prop_assert_eq!(Decoder::new(&bytes).uint().unwrap(), v);
        }

        #[test]
        fn prop_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..100)) {
            let mut d = Decoder::new(&data);
            // Result ignored: property is "no panic, no OOM".
            let _ = d.any();
        }
    }
}
