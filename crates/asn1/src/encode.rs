//! DER encoder. Canonical output: minimal length octets, minimal INTEGER
//! contents, sorted SETs are the caller's responsibility (X.509 RDNs here
//! are single-valued, so this never arises).

use crate::{Oid, Tag};
use mp_bignum::BigUint;

/// A push-style DER writer.
#[derive(Default)]
pub struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Encoder { out: Vec::new() }
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    /// Append a fully-encoded TLV built from raw content bytes.
    pub fn tlv(&mut self, tag: Tag, content: &[u8]) -> &mut Self {
        self.out.push(tag.0);
        write_len(&mut self.out, content.len());
        self.out.extend_from_slice(content);
        self
    }

    /// Append pre-encoded DER (already a complete TLV).
    pub fn raw(&mut self, der: &[u8]) -> &mut Self {
        self.out.extend_from_slice(der);
        self
    }

    /// INTEGER from an unsigned big integer (adds a leading zero octet if
    /// the high bit is set, per DER's two's-complement rule).
    pub fn uint(&mut self, v: &BigUint) -> &mut Self {
        let mut content = v.to_be_bytes();
        if content.is_empty() {
            content.push(0);
        } else if content[0] & 0x80 != 0 {
            content.insert(0, 0);
        }
        self.tlv(Tag::INTEGER, &content)
    }

    /// Small non-negative INTEGER.
    pub fn uint_u64(&mut self, v: u64) -> &mut Self {
        self.uint(&BigUint::from_u64(v))
    }

    /// BOOLEAN (DER: 0xFF for true).
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.tlv(Tag::BOOLEAN, &[if v { 0xff } else { 0x00 }])
    }

    /// NULL.
    pub fn null(&mut self) -> &mut Self {
        self.tlv(Tag::NULL, &[])
    }

    /// OBJECT IDENTIFIER.
    pub fn oid(&mut self, oid: &Oid) -> &mut Self {
        self.tlv(Tag::OID, &oid.der_content())
    }

    /// OCTET STRING.
    pub fn octet_string(&mut self, data: &[u8]) -> &mut Self {
        self.tlv(Tag::OCTET_STRING, data)
    }

    /// BIT STRING with zero unused bits (sufficient for keys/signatures).
    pub fn bit_string(&mut self, data: &[u8]) -> &mut Self {
        let mut content = Vec::with_capacity(data.len() + 1);
        content.push(0);
        content.extend_from_slice(data);
        self.tlv(Tag::BIT_STRING, &content)
    }

    /// UTF8String.
    pub fn utf8_string(&mut self, s: &str) -> &mut Self {
        self.tlv(Tag::UTF8_STRING, s.as_bytes())
    }

    /// PrintableString — caller guarantees the restricted charset.
    pub fn printable_string(&mut self, s: &str) -> &mut Self {
        self.tlv(Tag::PRINTABLE_STRING, s.as_bytes())
    }

    /// IA5String.
    pub fn ia5_string(&mut self, s: &str) -> &mut Self {
        self.tlv(Tag::IA5_STRING, s.as_bytes())
    }

    /// UTCTime from unix seconds (valid range 1950..2050, per X.509).
    pub fn utc_time(&mut self, unix_secs: u64) -> &mut Self {
        let s = format_utc_time(unix_secs);
        self.tlv(Tag::UTC_TIME, s.as_bytes())
    }

    /// GeneralizedTime from unix seconds.
    pub fn generalized_time(&mut self, unix_secs: u64) -> &mut Self {
        let s = format_generalized_time(unix_secs);
        self.tlv(Tag::GENERALIZED_TIME, s.as_bytes())
    }

    /// Constructed container: the closure fills a nested encoder whose
    /// output becomes the content of `tag`.
    pub fn constructed(&mut self, tag: Tag, f: impl FnOnce(&mut Encoder)) -> &mut Self {
        let mut inner = Encoder::new();
        f(&mut inner);
        self.tlv(tag, &inner.out)
    }

    /// SEQUENCE { ... }.
    pub fn sequence(&mut self, f: impl FnOnce(&mut Encoder)) -> &mut Self {
        self.constructed(Tag::SEQUENCE, f)
    }

    /// SET { ... }.
    pub fn set(&mut self, f: impl FnOnce(&mut Encoder)) -> &mut Self {
        self.constructed(Tag::SET, f)
    }
}

/// DER definite-length octets.
fn write_len(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        // lint:allow(R4) cannot truncate: len < 0x80 on this branch (DER short form)
        out.push(len as u8);
    } else {
        let bytes = len.to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let sig = &bytes[skip..];
        // lint:allow(R4) cannot truncate: sig is at most the 8 significant bytes of a usize, so sig.len() <= 8
        out.push(0x80 | sig.len() as u8);
        out.extend_from_slice(sig);
    }
}

/// Days-from-civil algorithm (Howard Hinnant), for rendering unix time.
pub(crate) fn civil_from_unix(unix_secs: u64) -> (i64, u32, u32, u32, u32, u32) {
    let days = (unix_secs / 86_400) as i64;
    let secs_of_day = (unix_secs % 86_400) as u32;
    let (h, m, s) = (secs_of_day / 3600, secs_of_day % 3600 / 60, secs_of_day % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m_civ = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = if m_civ <= 2 { y + 1 } else { y };
    (y, m_civ, d, h, m, s)
}

/// Inverse of [`civil_from_unix`] for parsing.
pub(crate) fn unix_from_civil(y: i64, m: u32, d: u32, hh: u32, mm: u32, ss: u32) -> u64 {
    let y_adj = if m <= 2 { y - 1 } else { y };
    let era = y_adj.div_euclid(400);
    let yoe = y_adj.rem_euclid(400);
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    (days * 86_400 + hh as i64 * 3600 + mm as i64 * 60 + ss as i64) as u64
}

fn format_utc_time(unix_secs: u64) -> String {
    let (y, mo, d, h, mi, s) = civil_from_unix(unix_secs);
    debug_assert!((1950..2050).contains(&y), "UTCTime year out of range: {y}");
    format!("{:02}{mo:02}{d:02}{h:02}{mi:02}{s:02}Z", y % 100)
}

fn format_generalized_time(unix_secs: u64) -> String {
    let (y, mo, d, h, mi, s) = civil_from_unix(unix_secs);
    format!("{y:04}{mo:02}{d:02}{h:02}{mi:02}{s:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_and_long_lengths() {
        let mut e = Encoder::new();
        e.octet_string(&[0u8; 5]);
        assert_eq!(&e.out[..2], &[0x04, 0x05]);

        let mut e = Encoder::new();
        e.octet_string(&[0u8; 200]);
        assert_eq!(&e.out[..3], &[0x04, 0x81, 200]);

        let mut e = Encoder::new();
        e.octet_string(&vec![0u8; 300]);
        assert_eq!(&e.out[..4], &[0x04, 0x82, 0x01, 0x2c]);
    }

    #[test]
    fn integer_minimal_encoding() {
        let mut e = Encoder::new();
        e.uint_u64(0);
        assert_eq!(e.out, vec![0x02, 0x01, 0x00]);

        let mut e = Encoder::new();
        e.uint_u64(127);
        assert_eq!(e.out, vec![0x02, 0x01, 0x7f]);

        // High bit set => leading zero.
        let mut e = Encoder::new();
        e.uint_u64(128);
        assert_eq!(e.out, vec![0x02, 0x02, 0x00, 0x80]);

        let mut e = Encoder::new();
        e.uint_u64(256);
        assert_eq!(e.out, vec![0x02, 0x02, 0x01, 0x00]);
    }

    #[test]
    fn boolean_der_form() {
        let mut e = Encoder::new();
        e.boolean(true).boolean(false);
        assert_eq!(e.out, vec![0x01, 0x01, 0xff, 0x01, 0x01, 0x00]);
    }

    #[test]
    fn nested_sequences() {
        let mut e = Encoder::new();
        e.sequence(|s| {
            s.uint_u64(1);
            s.sequence(|inner| {
                inner.null();
            });
        });
        assert_eq!(e.out, vec![0x30, 0x07, 0x02, 0x01, 0x01, 0x30, 0x02, 0x05, 0x00]);
    }

    #[test]
    fn bit_string_prepends_unused_count() {
        let mut e = Encoder::new();
        e.bit_string(&[0xaa]);
        assert_eq!(e.out, vec![0x03, 0x02, 0x00, 0xaa]);
    }

    #[test]
    fn civil_conversion_roundtrip() {
        for t in [0u64, 1, 86_399, 86_400, 951_782_400, 1_700_000_000, 4_102_444_799] {
            let (y, mo, d, h, mi, s) = civil_from_unix(t);
            assert_eq!(unix_from_civil(y, mo, d, h, mi, s), t, "t={t}");
        }
    }

    #[test]
    fn known_civil_dates() {
        // 2001-08-06 00:00:00 UTC (the paper's HPDC-10 week).
        assert_eq!(civil_from_unix(997_056_000), (2001, 8, 6, 0, 0, 0));
        // Epoch.
        assert_eq!(civil_from_unix(0), (1970, 1, 1, 0, 0, 0));
    }

    #[test]
    fn utc_time_format() {
        let mut e = Encoder::new();
        e.utc_time(997_056_000);
        // 010806000000Z
        assert_eq!(&e.out[2..], b"010806000000Z");
    }

    #[test]
    fn generalized_time_format() {
        let mut e = Encoder::new();
        e.generalized_time(997_056_000);
        assert_eq!(&e.out[2..], b"20010806000000Z");
    }
}
