//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * Montgomery exponentiation vs. naive square-and-multiply with full
//!   divisions (the RSA hot path);
//! * Karatsuba vs. schoolbook multiplication at RSA operand sizes;
//! * record-layer sealing vs. plaintext framing (what GSI encryption
//!   costs per message).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mp_bench::bench_rng;
use mp_bignum::BigUint;
use mp_gsi::record::{DirectionKeys, SealedRecords};

fn modexp_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_modexp");
    group.sample_size(10);
    let mut rng = bench_rng("modexp ablation");
    for bits in [512usize, 1024] {
        let mut modulus = BigUint::random_bits(&mut rng, bits);
        if modulus.is_even() {
            modulus = modulus.add_ref(&BigUint::one());
        }
        let base = BigUint::random_bits(&mut rng, bits - 1);
        let exp = BigUint::random_bits(&mut rng, bits);
        group.bench_function(format!("montgomery_{bits}"), |b| {
            b.iter(|| base.mod_pow(&exp, &modulus))
        });
        group.bench_function(format!("naive_{bits}"), |b| {
            b.iter(|| base.mod_pow_naive_for_bench(&exp, &modulus))
        });
    }
    group.finish();
}

fn mul_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_multiplication");
    let mut rng = bench_rng("mul ablation");
    // 2048- and 8192-bit operands: around and well past the Karatsuba
    // threshold (24 limbs = 1536 bits).
    for bits in [2048usize, 8192] {
        let a = BigUint::random_bits(&mut rng, bits);
        let b_ = BigUint::random_bits(&mut rng, bits);
        group.bench_function(format!("dispatch_{bits}"), |bch| {
            bch.iter(|| a.mul_ref(&b_))
        });
        group.bench_function(format!("schoolbook_{bits}"), |bch| {
            bch.iter(|| a.mul_schoolbook_for_bench(&b_))
        });
    }
    group.finish();
}

fn record_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_record_layer");
    let keys = |tag: u8| DirectionKeys { enc: [tag; 32], mac: [tag ^ 0xff; 32] };
    for size in [256usize, 4096] {
        let payload = vec![0x42u8; size];
        group.throughput(Throughput::Bytes(size as u64));

        // Sealed: AES-CTR + HMAC + framing, through an in-memory sink.
        group.bench_function(format!("sealed_{size}B"), |b| {
            let mut records = SealedRecords::new(keys(1), keys(2), true);
            let mut sink = std::io::Cursor::new(Vec::with_capacity(size + 64));
            b.iter(|| {
                sink.get_mut().clear();
                sink.set_position(0);
                records.send(&mut sink, &payload).unwrap();
            })
        });

        // Plaintext framing only (what a no-encryption channel would do).
        group.bench_function(format!("plaintext_{size}B"), |b| {
            let mut sink = std::io::Cursor::new(Vec::with_capacity(size + 8));
            b.iter(|| {
                sink.get_mut().clear();
                sink.set_position(0);
                mp_gsi::record::write_frame(&mut sink, &payload).unwrap();
            })
        });
    }
    group.finish();
}

fn pbkdf2_sealing_ablation(c: &mut Criterion) {
    // The §5.1 design choice: sealing the store under the pass phrase
    // costs a PBKDF2 per open. Measure open-vs-peek to show the knob.
    let mut group = c.benchmark_group("ablation_store_sealing");
    group.sample_size(10);
    for iters in [10u32, 10_000] {
        let store = mp_myproxy::CredStore::new(iters);
        let cred = {
            let mut ca = mp_x509::CertificateAuthority::new_root(
                mp_x509::Dn::parse("/O=Grid/CN=CA").unwrap(),
                mp_x509::test_util::test_rsa_key(0).clone(),
                0,
                100_000_000,
            )
            .unwrap();
            let key = mp_x509::test_util::test_rsa_key(1);
            let dn = mp_x509::Dn::parse("/O=Grid/CN=alice").unwrap();
            let cert = ca.issue_end_entity(&dn, key.public_key(), 0, 50_000_000).unwrap();
            mp_gsi::Credential::new(vec![cert], key.clone()).unwrap()
        };
        let mut rng = bench_rng("sealing ablation");
        store
            .put("alice", "default", "pass phrase", &cred, 3600, 0, false, vec![], &mut rng)
            .unwrap();
        group.bench_function(format!("open_pbkdf2_{iters}"), |b| {
            b.iter(|| store.open("alice", "default", "pass phrase").unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, modexp_ablation, mul_ablation, record_ablation, pbkdf2_sealing_ablation);
criterion_main!(benches);
