//! Experiment F1 — Figure 1 as a benchmark: full `myproxy-init`
//! (handshake, PUT request, delegation *to* the repository including
//! server-side keypair generation, pass-phrase sealing).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mp_bench::{bench_rng, BenchRepo};

fn fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_myproxy_init");
    group.sample_size(20);
    for key_bits in [512usize, 768, 1024] {
        let repo = BenchRepo::new(key_bits);
        let mut rng = bench_rng("fig1");
        let mut i = 0u64;
        group.bench_function(format!("rsa{key_bits}"), |b| {
            b.iter_batched(
                || {
                    i += 1;
                    format!("user{i}")
                },
                |username| repo.do_init(&username, &mut rng),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
