//! Experiment F3 — Figure 3 as a benchmark: the full portal login
//! (browser HTTPS-sim handshake + portal→MyProxy GSI handshake +
//! retrieval delegation + session creation), and the follow-on
//! authenticated page load, which shows the login cost is one-time.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_bench::{bench_rng, GridWorld};
use mp_crypto::HmacDrbg;
use mp_portal::browser::expect_ok;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_portal_login");
    group.sample_size(20);

    let w = GridWorld::new();
    {
        let mut rng = bench_rng("fig3 seed");
        w.myproxy_client
            .init(
                w.myproxy.connect_local(),
                &w.alice,
                &mp_myproxy::client::InitParams::new("alice", "bench pass phrase"),
                &mut rng,
                mp_x509::Clock::now(&w.clock),
            )
            .unwrap();
    }

    let mut n = 0u64;
    group.bench_function("login", |b| {
        b.iter(|| {
            n += 1;
            let mut browser = mp_portal::Browser::new(
                w.portal_tls_connector(),
                mp_portal::browser::BrowserMode::Tls {
                    roots: vec![w.ca_cert.clone()],
                    expected: None,
                },
                HmacDrbg::new(format!("fig3 browser {n}").as_bytes()),
                mp_x509::Clock::now(&w.clock),
            );
            expect_ok(browser.login("alice", "bench pass phrase").unwrap()).unwrap();
            browser
        })
    });

    // Steady-state: a logged-in browser fetching an authenticated page.
    let mut browser = mp_portal::Browser::new(
        w.portal_tls_connector(),
        mp_portal::browser::BrowserMode::Tls { roots: vec![w.ca_cert.clone()], expected: None },
        HmacDrbg::new(b"fig3 steady browser"),
        mp_x509::Clock::now(&w.clock),
    );
    expect_ok(browser.login("alice", "bench pass phrase").unwrap()).unwrap();
    group.bench_function("authenticated_page", |b| {
        b.iter(|| expect_ok(browser.get("/whoami").unwrap()).unwrap())
    });

    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
