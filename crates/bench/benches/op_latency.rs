//! Experiment X1 — latency of every MyProxy operation at the default
//! key size: INIT, GET, INFO, CHANGE_PASSPHRASE, DESTROY(+re-INIT).
//! Shapes to expect: GET ≈ INIT (both dominated by one RSA keypair
//! generation + two handshakes); INFO/CHANGE/DESTROY cheaper (PBKDF2 +
//! handshake only, no keygen on the hot path).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mp_bench::{bench_rng, BenchRepo};

fn ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("op_latency");
    group.sample_size(20);

    let repo = BenchRepo::new(512);
    let mut seed_rng = bench_rng("ops seed");
    repo.do_init("alice", &mut seed_rng);

    let mut rng = bench_rng("ops");
    let mut i = 0u64;
    group.bench_function("init", |b| {
        b.iter_batched(
            || {
                i += 1;
                format!("init-user{i}")
            },
            |u| repo.do_init(&u, &mut rng),
            BatchSize::PerIteration,
        )
    });

    group.bench_function("get", |b| b.iter(|| repo.do_get("alice", 512, &mut rng)));

    group.bench_function("info", |b| {
        b.iter(|| {
            repo.client
                .info(
                    repo.server.connect_local(),
                    &repo.user,
                    "alice",
                    "bench pass phrase",
                    &mut rng,
                    mp_x509::Clock::now(&repo.clock),
                )
                .unwrap()
        })
    });

    // Two changes per iteration (there and back) so the store state is
    // identical at every iteration boundary regardless of how criterion
    // batches them; reported time is therefore 2x one operation.
    group.bench_function("change_passphrase_x2", |b| {
        b.iter(|| {
            for (old, new) in [
                ("bench pass phrase", "other pass phrase"),
                ("other pass phrase", "bench pass phrase"),
            ] {
                repo.client
                    .change_passphrase(
                        repo.server.connect_local(),
                        &repo.user,
                        "alice",
                        old,
                        new,
                        None,
                        &mut rng,
                        mp_x509::Clock::now(&repo.clock),
                    )
                    .unwrap();
            }
        })
    });

    let mut j = 0u64;
    let mut setup_rng = bench_rng("ops destroy setup");
    group.bench_function("destroy_and_reinit", |b| {
        b.iter_batched(
            || {
                j += 1;
                let u = format!("destroy-user{j}");
                repo.do_init(&u, &mut setup_rng);
                u
            },
            |u| {
                repo.client
                    .destroy(
                        repo.server.connect_local(),
                        &repo.user,
                        &u,
                        "bench pass phrase",
                        None,
                        &mut rng,
                        mp_x509::Clock::now(&repo.clock),
                    )
                    .unwrap()
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, ops);
criterion_main!(benches);
