//! Experiment X3 — delegation chaining (§2.4): validation cost vs.
//! proxy-chain depth. Expect linear growth — one signature verification
//! and one profile check per link. Extension cost (creating one more
//! link) is expected flat in depth: it is dominated by keypair
//! generation.

use criterion::{criterion_group, criterion_main, Criterion};
use mp_bench::{bench_rng, build_chain};
use mp_x509::validate_chain;

/// Build a credential (with private key) whose chain has `depth`
/// proxies, for the extension bench.
fn build_credential(depth: usize) -> mp_gsi::Credential {
    let mut ca = mp_x509::CertificateAuthority::new_root(
        mp_x509::Dn::parse("/O=Grid/CN=CA").unwrap(),
        mp_x509::test_util::test_rsa_key(0).clone(),
        0,
        100_000_000,
    )
    .unwrap();
    let ukey = mp_x509::test_util::test_rsa_key(1);
    let udn = mp_x509::Dn::parse("/O=Grid/CN=alice").unwrap();
    let ucert = ca.issue_end_entity(&udn, ukey.public_key(), 0, 50_000_000).unwrap();
    let mut cred = mp_gsi::Credential::new(vec![ucert], ukey.clone()).unwrap();
    let mut rng = bench_rng("ext seed");
    for _ in 0..depth {
        cred = mp_gsi::grid_proxy_init(&cred, &Default::default(), &mut rng, 1000).unwrap();
    }
    cred
}

fn depth_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_depth_validation");
    for depth in [1usize, 2, 4, 8, 16] {
        let (chain, roots) = build_chain(depth);
        let opts = mp_x509::ValidationOptions { max_chain_len: 32, ..Default::default() };
        group.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| validate_chain(&chain, &roots, 1000, &opts).unwrap())
        });
    }
    group.finish();
}

fn delegation_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_depth_extension");
    group.sample_size(15);
    for depth in [1usize, 8] {
        let cred = build_credential(depth);
        let mut rng = bench_rng("ext");
        group.bench_function(format!("from_depth_{depth}"), |b| {
            b.iter(|| mp_gsi::grid_proxy_init(&cred, &Default::default(), &mut rng, 1000).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, depth_sweep, delegation_cost);
criterion_main!(benches);
