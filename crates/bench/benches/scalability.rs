//! Experiment X2 — the §3.3 scalability goal, quantified:
//!  * retrieval latency vs. number of stored credentials (expect flat —
//!    the store is a hash map);
//!  * aggregate retrieval throughput vs. number of concurrent portal
//!    clients (expect scaling with cores until the crypto saturates
//!    them; the store lock is not the bottleneck).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mp_bench::{bench_rng, BenchRepo};
use mp_myproxy::client::GetParams;
use mp_x509::Clock;

fn store_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_store_size");
    group.sample_size(15);
    for n in [10usize, 100, 1000] {
        let repo = BenchRepo::new(512);
        repo.populate(n);
        let mut rng = bench_rng("store size");
        group.bench_function(format!("get_with_{n}_stored"), |b| {
            b.iter(|| repo.do_get("user0", 512, &mut rng))
        });
    }
    group.finish();
}

fn concurrency_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_concurrency");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let repo = BenchRepo::new(512);
        repo.populate(1);
        group.throughput(Throughput::Elements(threads as u64 * 4));
        group.bench_function(format!("{threads}_portals_x4_gets"), |b| {
            b.iter(|| {
                crossbeam::thread::scope(|s| {
                    for t in 0..threads {
                        let repo = &repo;
                        s.spawn(move |_| {
                            let mut rng = bench_rng(&format!("conc {t}"));
                            for _ in 0..4 {
                                let mut params = GetParams::new("user0", "bench pass phrase");
                                params.key_bits = 512;
                                repo.client
                                    .get_delegation(
                                        repo.server.connect_local(),
                                        &repo.portal,
                                        &params,
                                        &mut rng,
                                        repo.clock.now(),
                                    )
                                    .unwrap();
                            }
                        });
                    }
                })
                .unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, store_size_sweep, concurrency_sweep);
criterion_main!(benches);
