//! Experiment F2 — Figure 2 as a benchmark: full
//! `myproxy-get-delegation` (handshake, pass-phrase unsealing,
//! client-side keypair generation, delegation *from* the repository).

use criterion::{criterion_group, criterion_main, Criterion};
use mp_bench::{bench_rng, BenchRepo};

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_get_delegation");
    group.sample_size(20);
    for key_bits in [512usize, 768, 1024] {
        let repo = BenchRepo::new(512); // stored credential fixed
        let mut rng = bench_rng("fig2 seed");
        repo.do_init("alice", &mut rng);
        let mut rng = bench_rng("fig2");
        group.bench_function(format!("proxy_key_rsa{key_bits}"), |b| {
            b.iter(|| repo.do_get("alice", key_bits, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
