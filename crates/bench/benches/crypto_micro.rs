//! Experiment X4 — crypto-substrate micro-benchmarks, explaining the
//! shapes seen in X1/F1/F2:
//!  * RSA keygen grows steeply with modulus size (prime search) — it
//!    dominates every operation that mints a proxy;
//!  * RSA sign (CRT) ≫ verify (e = 65537);
//!  * PBKDF2 cost is linear in the iteration knob (the §5.1 brute-force
//!    defense dial);
//!  * AES-CTR + SHA-256 throughput bounds the record layer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mp_bench::bench_rng;
use mp_crypto::ctr::aes_ctr_xor;
use mp_crypto::pbkdf2::pbkdf2_hmac_sha256;
use mp_crypto::rsa::RsaPrivateKey;

fn rsa_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa");
    group.sample_size(10);
    for bits in [512usize, 768, 1024] {
        let mut rng = bench_rng(&format!("rsa {bits}"));
        group.bench_function(format!("keygen_{bits}"), |b| {
            b.iter(|| RsaPrivateKey::generate(&mut rng, bits))
        });
        let key = RsaPrivateKey::generate(&mut rng, bits);
        let msg = b"tbs certificate bytes stand-in";
        group.bench_function(format!("sign_{bits}"), |b| b.iter(|| key.sign(msg).unwrap()));
        let sig = key.sign(msg).unwrap();
        group.bench_function(format!("verify_{bits}"), |b| {
            b.iter(|| key.public_key().verify(msg, &sig).unwrap())
        });
    }
    group.finish();
}

fn pbkdf2_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbkdf2");
    group.sample_size(10);
    for iters in [1_000u32, 10_000, 100_000] {
        group.bench_function(format!("iters_{iters}"), |b| {
            b.iter(|| {
                let mut out = [0u8; 64];
                pbkdf2_hmac_sha256(b"pass phrase", b"salt-16-bytes!!!", iters, &mut out);
                out
            })
        });
    }
    group.finish();
}

fn symmetric_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric");
    for size in [1usize << 10, 1 << 16] {
        let mut data = vec![0xA5u8; size];
        let key = [7u8; 32];
        let nonce = [9u8; 16];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("aes256_ctr_{size}B"), |b| {
            b.iter(|| aes_ctr_xor(&key, &nonce, &mut data))
        });
        group.bench_function(format!("sha256_{size}B"), |b| {
            b.iter(|| mp_crypto::sha256(&data))
        });
        group.bench_function(format!("hmac_sha256_{size}B"), |b| {
            b.iter(|| mp_crypto::hmac::hmac_sha256(&key, &data))
        });
    }
    group.finish();
}

criterion_group!(benches, rsa_bench, pbkdf2_bench, symmetric_bench);
criterion_main!(benches);
