//! `bench-obs`: smoke-run one iteration of every benchmark scenario
//! in-process and dump the resulting mp-obs registry as
//! `BENCH_obs.json`.
//!
//! CI runs this to guarantee two things the full criterion sweeps are
//! too slow to gate on: (a) every instrumented hot path still records
//! into its histogram (a zero-sample histogram fails the run), and
//! (b) the latency catalog below stays in sync with the code — a
//! renamed span shows up here as a missing histogram, not as a
//! silently empty dashboard.

use mp_bench::{bench_rng, GridWorld};
use mp_myproxy::client::GetParams;
use mp_portal::browser::expect_ok;
use mp_x509::Clock;

/// Span histograms every release must keep feeding: the GSI handshake
/// phases, the delegation rounds, RSA primitives, the credential
/// store, and the per-request service histograms.
const CATALOG: &[&str] = &[
    "gsi.handshake.client",
    "gsi.handshake.server",
    "gsi.handshake.validate",
    "gsi.handshake.kex",
    "gsi.delegate.issue",
    "gsi.delegate.accept",
    "crypto.rsa.sign",
    "crypto.rsa.verify",
    "crypto.rsa.keygen",
    "store.put",
    "store.open",
    "myproxy.request",
    "portal.request",
];

fn main() {
    let w = GridWorld::new();
    let mut rng = bench_rng("bench obs");

    // F1: myproxy-init — handshake, PUT, delegation to the repository.
    w.alice_init("bench pass phrase correct horse").expect("init");

    // F2: myproxy-get-delegation — handshake, pass-phrase open, proxy
    // delegation back out of the repository.
    w.myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "bench pass phrase correct horse"),
            &mut rng,
            w.clock.now(),
        )
        .expect("get-delegation");

    // F3: the portal round trip — login (which drives MyProxy GET on
    // the user's behalf), a session page, logout.
    let mut browser = w.browser("bench obs browser");
    expect_ok(browser.login("alice", "bench pass phrase correct horse").expect("login io"))
        .expect("login");
    expect_ok(browser.get("/whoami").expect("whoami io")).expect("whoami");
    expect_ok(browser.logout().expect("logout io")).expect("logout");

    // One merged view: the repository's and portal's instance
    // registries plus the process-global ambient span registry. Each
    // source is merged exactly once — no double counting.
    let snap = mp_obs::global()
        .snapshot()
        .merged(&w.myproxy.obs().snapshot())
        .merged(&w.portal.obs().snapshot());

    let mut failed = false;
    for name in CATALOG {
        match snap.histograms.get(*name) {
            Some(h) if h.count > 0 => {
                println!(
                    "{name}: count={} p50={}us p99={}us max={}us",
                    h.count,
                    h.p50(),
                    h.p99(),
                    h.max
                );
            }
            Some(_) => {
                eprintln!("FAIL {name}: histogram exists but recorded zero samples");
                failed = true;
            }
            None => {
                eprintln!("FAIL {name}: histogram missing from merged snapshot");
                failed = true;
            }
        }
    }

    std::fs::write("BENCH_obs.json", snap.to_json()).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json ({} histograms)", snap.histograms.len());
    if failed {
        std::process::exit(1);
    }
}
