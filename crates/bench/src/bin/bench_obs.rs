//! `bench-obs`: smoke-run every benchmark scenario in-process
//! (`--iters N` times, default 1) and dump the resulting mp-obs
//! registry as `BENCH_obs.json`.
//!
//! CI runs this to guarantee two things the full criterion sweeps are
//! too slow to gate on: (a) every instrumented hot path still records
//! into its histogram (a zero-sample histogram fails the run), and
//! (b) the latency catalog below stays in sync with the code — a
//! renamed span shows up here as a missing histogram, not as a
//! silently empty dashboard. CI passes `--iters 10` so the recorded
//! percentiles summarize a population, not a single cold-start sample.

use mp_bench::{bench_rng, GridWorld};
use mp_myproxy::client::GetParams;
use mp_portal::browser::expect_ok;
use mp_x509::Clock;

/// Span histograms every release must keep feeding: the GSI handshake
/// phases, the delegation rounds, RSA primitives, the credential
/// store, and the per-request service histograms.
const CATALOG: &[&str] = &[
    "gsi.handshake.client",
    "gsi.handshake.server",
    "gsi.handshake.validate",
    "gsi.handshake.kex",
    "gsi.delegate.issue",
    "gsi.delegate.accept",
    "crypto.rsa.sign",
    "crypto.rsa.verify",
    "crypto.rsa.keygen",
    "store.put",
    "store.open",
    "myproxy.request",
    "portal.request",
];

fn parse_iters() -> u32 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut iters = 1u32;
    while i < argv.len() {
        match argv[i].as_str() {
            "--iters" => {
                i += 1;
                iters = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--iters wants a positive integer");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    iters.max(1)
}

fn main() {
    let iters = parse_iters();
    let w = GridWorld::new();
    let mut rng = bench_rng("bench obs");

    for iter in 0..iters {
        // F1: myproxy-init — handshake, PUT, delegation to the
        // repository.
        w.alice_init("bench pass phrase correct horse").expect("init");

        // F2: myproxy-get-delegation — handshake, pass-phrase open,
        // proxy delegation back out of the repository.
        w.myproxy_client
            .get_delegation(
                w.myproxy.connect_local(),
                &w.portal_cred,
                &GetParams::new("alice", "bench pass phrase correct horse"),
                &mut rng,
                w.clock.now(),
            )
            .expect("get-delegation");

        // F3: the portal round trip — login (which drives MyProxy GET
        // on the user's behalf), a session page, logout.
        let mut browser = w.browser(&format!("bench obs browser {iter}"));
        expect_ok(browser.login("alice", "bench pass phrase correct horse").expect("login io"))
            .expect("login");
        expect_ok(browser.get("/whoami").expect("whoami io")).expect("whoami");
        expect_ok(browser.logout().expect("logout io")).expect("logout");
    }

    // One merged view: the repository's and portal's instance
    // registries plus the process-global ambient span registry. Each
    // source is merged exactly once — no double counting.
    let snap = mp_obs::global()
        .snapshot()
        .merged(&w.myproxy.obs().snapshot())
        .merged(&w.portal.obs().snapshot());

    let mut failed = false;
    for name in CATALOG {
        match snap.histograms.get(*name) {
            Some(h) if h.count > 0 => {
                println!(
                    "{name}: count={} p50={}us p99={}us max={}us",
                    h.count,
                    h.p50(),
                    h.p99(),
                    h.max
                );
            }
            Some(_) => {
                eprintln!("FAIL {name}: histogram exists but recorded zero samples");
                failed = true;
            }
            None => {
                eprintln!("FAIL {name}: histogram missing from merged snapshot");
                failed = true;
            }
        }
    }

    std::fs::write("BENCH_obs.json", snap.to_json()).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json ({} histograms)", snap.histograms.len());
    if failed {
        std::process::exit(1);
    }
}
