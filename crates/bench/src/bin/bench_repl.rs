//! `bench-repl`: replication under load, over the real filesystem on
//! both sides (real fsyncs, real GSI shipper sessions).
//!
//! Two measurements, emitted as `BENCH_repl.json`:
//!
//! * **steady-state lag** — concurrent writers drive the loadgen PUT
//!   mix through the primary's group-commit path while a shipper loop
//!   pushes committed records to a warm standby. Replication is
//!   asynchronous and must never hold up an ack, so the interesting
//!   numbers are how far the standby trails (max/final
//!   `store.repl.lag_records`) and how long the tail takes to drain
//!   after the writers stop.
//! * **failover time** — the primary is "killed" (no further ship
//!   passes, its address refuses connections), the standby is
//!   promoted, and the clock runs from the kill to the first
//!   successful GET served by the standby through the client's
//!   multi-repository failover path.
//!
//! Exit code is non-zero if the standby fails to converge to the
//! primary's exact state or the post-failover GET fails — lag numbers
//! from a diverged replica would be meaningless.

use mp_myproxy::client::{GetParams, InitParams, RetryPolicy};
use mp_myproxy::repl::ReplConfig;
use mp_myproxy::testutil::TempDir;
use mp_myproxy::wal::{RealVfs, WalConfig};
use mp_myproxy::StoredCredential;
use mp_x509::test_util::test_drbg;
use mp_x509::Clock;
use myproxy::testkit::GridWorld;
use std::sync::Arc;
use std::time::Instant;

const WRITERS: usize = 16;
const USERS: usize = WRITERS / 4;
const PUTS_PER_WRITER: usize = 64;
const SEALED_LEN: usize = 1536;

fn entry(user: &str, name: &str, fill: u8) -> StoredCredential {
    StoredCredential {
        username: user.to_string(),
        name: name.to_string(),
        owner_identity: "/O=Grid/CN=bench".to_string(),
        sealed: vec![fill; SEALED_LEN],
        retrieval_max_lifetime: 7200,
        not_after: 600_000_000,
        created_at: 100,
        long_term: false,
        tags: Vec::new(),
        renewable_by: None,
        sealed_for_renewal: None,
    }
}

fn sorted(mut v: Vec<StoredCredential>) -> Vec<StoredCredential> {
    v.sort_by(|a, b| (&a.username, &a.name).cmp(&(&b.username, &b.name)));
    v
}

fn main() {
    println!(
        "bench-repl: {WRITERS} writers x {PUTS_PER_WRITER} committed PUTs shipping to a warm standby, real fs"
    );

    let world = GridWorld::new();
    let primary = world.myproxy.clone();
    let primary_dir = TempDir::new("bench-repl-primary");
    primary
        .enable_durability_with(
            primary_dir.path(),
            Arc::new(RealVfs),
            WalConfig { compact_every: 0, ..WalConfig::default() },
        )
        .expect("primary durability");
    let log = primary.enable_replication(&ReplConfig::default()).expect("enable replication");

    let standby = world.standby_repository(b"bench repl standby");
    let standby_dir = TempDir::new("bench-repl-standby");
    standby
        .enable_durability_with(
            standby_dir.path(),
            Arc::new(RealVfs),
            WalConfig { compact_every: 0, ..WalConfig::default() },
        )
        .expect("standby durability");
    standby.configure_standby(&ReplConfig::default());
    let shipper = primary.shipper(GridWorld::myproxy_connector(&standby));

    // One real client PUT so the failover phase has a credential to
    // retrieve through the full GSI path.
    let mut rng = test_drbg("bench repl client");
    world
        .myproxy_client
        .init(
            primary.connect_local(),
            &world.alice,
            &InitParams::new("alice", "bench pass phrase"),
            &mut rng,
            world.clock.now(),
        )
        .expect("seed credential");

    // ---- steady-state lag under the PUT mix -------------------------
    let wal = primary.store().wal_handle().expect("wal attached");
    let start = Instant::now();
    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let store_owner = primary.clone();
        let wal = wal.clone();
        writers.push(std::thread::spawn(move || {
            let user = format!("user-{}", w % USERS);
            for i in 0..PUTS_PER_WRITER {
                let e = entry(&user, &format!("cred-{w}-{i}"), w as u8);
                wal.commit(store_owner.store(), mp_myproxy::wal::WalRecord::Upsert(e))
                    .expect("commit");
            }
        }));
    }

    // Ship from the main thread until the writers are done and the
    // tail has drained; sample the lag gauge before every pass.
    let mut max_lag = 0u64;
    let mut passes = 0u64;
    let mut write_elapsed = None;
    loop {
        let writers_done = writers.iter().all(|h| h.is_finished());
        if writers_done && write_elapsed.is_none() {
            write_elapsed = Some(start.elapsed().as_secs_f64());
        }
        max_lag = max_lag.max(log.metrics().lag_records.get());
        shipper.run_once().expect("ship pass");
        passes += 1;
        if writers_done && log.metrics().lag_records.get() == 0 {
            break;
        }
    }
    for h in writers {
        h.join().expect("writer thread");
    }
    let write_elapsed = write_elapsed.unwrap_or_else(|| start.elapsed().as_secs_f64());
    let drain_elapsed = start.elapsed().as_secs_f64();

    let ops = (WRITERS * PUTS_PER_WRITER) as u64;
    let puts_per_s = ops as f64 / write_elapsed;
    let converged = sorted(primary.store().all_entries()) == sorted(standby.store().all_entries());
    println!(
        "steady state: {ops} puts in {write_elapsed:.3}s ({puts_per_s:.1}/s), \
         {passes} ship passes, max lag {max_lag} records, drained in {drain_elapsed:.3}s"
    );

    // ---- failover: primary kill -> first standby GET ----------------
    let dead: mp_gsi::transport::Connector = Arc::new(|| {
        Err(std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "primary is down"))
    });
    drop(shipper); // primary is dead: no further ship passes
    let kill = Instant::now();
    standby.promote().expect("promote standby");
    let mut params = GetParams::new("alice", "bench pass phrase");
    params.key_bits = 512;
    params.lifetime_secs = 3600;
    let policy = RetryPolicy { max_attempts: 4, base_delay_ms: 1, max_delay_ms: 2, jitter_seed: 7 };
    let got = world.myproxy_client.get_delegation_failover(
        &[dead, GridWorld::myproxy_connector(&standby)],
        &world.portal_cred,
        &params,
        &policy,
        &mut rng,
        world.clock.now(),
    );
    let failover_ms = kill.elapsed().as_secs_f64() * 1e3;
    let failover_ok = got.is_ok();
    match &got {
        Ok(proxy) => println!(
            "failover: promoted + first GET ({}) in {failover_ms:.1}ms",
            proxy.subject()
        ),
        Err(e) => eprintln!("failover GET failed: {e}"),
    }

    let json = format!(
        concat!(
            "{{\"writers\":{},\"puts_per_writer\":{},\"put_ops\":{},",
            "\"write_elapsed_s\":{:.4},\"puts_per_s\":{:.1},",
            "\"drain_elapsed_s\":{:.4},\"ship_passes\":{},",
            "\"max_lag_records\":{},\"final_lag_records\":{},",
            "\"ship_errors\":{},\"resyncs\":{},\"converged\":{},",
            "\"failover_ms\":{:.2},\"failover_ok\":{}}}\n"
        ),
        WRITERS,
        PUTS_PER_WRITER,
        ops,
        write_elapsed,
        puts_per_s,
        drain_elapsed,
        passes,
        max_lag,
        log.metrics().lag_records.get(),
        log.metrics().ship_errors.get(),
        log.metrics().resyncs.get(),
        converged,
        failover_ms,
        failover_ok,
    );
    std::fs::write("BENCH_repl.json", json).expect("write BENCH_repl.json");
    println!("wrote BENCH_repl.json");

    if !converged {
        eprintln!("FAIL: standby diverged from primary after drain");
        std::process::exit(1);
    }
    if !failover_ok {
        eprintln!("FAIL: post-failover GET was not served by the promoted standby");
        std::process::exit(1);
    }
}
