//! `bench-wal`: sustained concurrent PUT/GET throughput of the durable
//! credential store's commit path, before/after the group-commit +
//! sharding rework, over the real filesystem (real fsyncs).
//!
//! * **baseline** — 1 shard, group commit off: every record is its own
//!   append + fsync behind one lock, which is exactly the pre-change
//!   serialized commit path.
//! * **grouped** — default shard count, group commit on: concurrent
//!   committers to one shard share a single barrier fsync; different
//!   shards do not contend at all.
//!
//! The timed region is the *commit path* — journal a sealed entry,
//! fsync before ack, apply to the sharded map — plus a read mix
//! against the shard locks. Pass-phrase sealing (PBKDF2 + cipher) is
//! done outside the timed region: its cost is identical on both sides
//! and embarrassingly parallel across cores, so including it only
//! dilutes the serialization wall this rework removed (on a 1-core
//! CI runner it would dominate the wall clock entirely).
//!
//! Emits `BENCH_wal.json` with throughput and fsyncs/op for both
//! sides. Exit code is non-zero if group commit failed to batch
//! (fsyncs/op ≥ 1 under concurrent same-shard writers).

use mp_myproxy::store::DEFAULT_SHARDS;
use mp_myproxy::testutil::TempDir;
use mp_myproxy::wal::{RealVfs, WalConfig, WalRecord};
use mp_myproxy::{CredStore, StoredCredential};
use mp_obs::Registry;
use std::sync::Arc;
use std::time::Instant;

const PBKDF2_ITERS: u32 = 10;
/// Concurrent committers. Writers share users (eight per user): the
/// workload has both cross-shard parallelism (different users hash to
/// different shards) and same-shard contention (eight writers per
/// user, so group commit has batches to form) — the many-portal mix
/// of the paper's §3.3.
const WRITERS: usize = 64;
const USERS: usize = WRITERS / 8;
const PUTS_PER_WRITER: usize = 64;
/// One shard-lock read (GET metadata path) per this many PUTs.
const GET_EVERY: usize = 4;
/// Sealed blob size: a 512-bit proxy chain PEM under the pass-phrase
/// cipher is ~1.5 KB, so journal records carry a realistic payload.
const SEALED_LEN: usize = 1536;

fn entry(user: &str, name: &str, fill: u8) -> StoredCredential {
    StoredCredential {
        username: user.to_string(),
        name: name.to_string(),
        owner_identity: "/O=Grid/CN=bench".to_string(),
        sealed: vec![fill; SEALED_LEN],
        retrieval_max_lifetime: 7200,
        not_after: 600_000,
        created_at: 100,
        long_term: false,
        tags: Vec::new(),
        renewable_by: None,
        sealed_for_renewal: None,
    }
}

struct Side {
    label: &'static str,
    ops: u64,
    elapsed_s: f64,
    puts_per_s: f64,
    appends: u64,
    fsyncs: u64,
    fsyncs_per_op: f64,
}

fn run_side(label: &'static str, shards: usize, group_commit: bool) -> Side {
    let dir = TempDir::new(&format!("bench-wal-{label}"));
    let store = Arc::new(CredStore::with_shards(PBKDF2_ITERS, shards));
    store
        .attach_durable(
            dir.path(),
            Arc::new(RealVfs),
            WalConfig { compact_every: 0, group_commit },
            &Registry::new(),
        )
        .expect("attach durable store");
    let wal = store.wal_handle().expect("wal attached");

    // Pre-seal every entry outside the timed region (see module doc).
    let batches: Vec<Vec<StoredCredential>> = (0..WRITERS)
        .map(|w| {
            let user = format!("user-{}", w % USERS);
            (0..PUTS_PER_WRITER)
                .map(|i| entry(&user, &format!("cred-{w}-{i}"), w as u8))
                .collect()
        })
        .collect();

    let start = Instant::now();
    let mut handles = Vec::new();
    for (w, entries) in batches.into_iter().enumerate() {
        let store = store.clone();
        let wal = wal.clone();
        handles.push(std::thread::spawn(move || {
            let user = format!("user-{}", w % USERS);
            for (i, e) in entries.into_iter().enumerate() {
                let name = e.name.clone();
                wal.commit(&store, WalRecord::Upsert(e)).expect("commit");
                if i % GET_EVERY == 0 {
                    assert!(store.peek(&user, &name).is_some(), "committed entry readable");
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("writer thread");
    }
    let elapsed = start.elapsed().as_secs_f64();

    let ops = (WRITERS * PUTS_PER_WRITER) as u64;
    assert_eq!(store.len() as u64, ops, "every committed PUT visible");
    let fsyncs = wal.metrics().fsyncs.get();
    Side {
        label,
        ops,
        elapsed_s: elapsed,
        puts_per_s: ops as f64 / elapsed,
        appends: wal.metrics().appends.get(),
        fsyncs,
        fsyncs_per_op: fsyncs as f64 / ops as f64,
    }
}

fn side_json(s: &Side) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"put_ops\":{},\"elapsed_s\":{:.4},",
            "\"puts_per_s\":{:.1},\"appends\":{},\"fsyncs\":{},",
            "\"fsyncs_per_op\":{:.4}}}"
        ),
        s.label, s.ops, s.elapsed_s, s.puts_per_s, s.appends, s.fsyncs, s.fsyncs_per_op
    )
}

fn main() {
    println!(
        "bench-wal: {WRITERS} writers x {PUTS_PER_WRITER} committed PUTs (1 GET per {GET_EVERY}), real fs"
    );
    let baseline = run_side("baseline-serial-1shard", 1, false);
    let grouped = run_side("grouped-sharded", DEFAULT_SHARDS, true);

    for s in [&baseline, &grouped] {
        println!(
            "{:<24} {:>8.1} puts/s  ({} ops in {:.3}s, {} fsyncs, {:.3} fsyncs/op)",
            s.label, s.puts_per_s, s.ops, s.elapsed_s, s.fsyncs, s.fsyncs_per_op
        );
    }
    let speedup = grouped.puts_per_s / baseline.puts_per_s;
    println!("speedup: {speedup:.2}x");

    let json = format!(
        "{{\"writers\":{WRITERS},\"puts_per_writer\":{PUTS_PER_WRITER},\"speedup\":{speedup:.2},\"baseline\":{},\"grouped\":{}}}\n",
        side_json(&baseline),
        side_json(&grouped)
    );
    std::fs::write("BENCH_wal.json", json).expect("write BENCH_wal.json");
    println!("wrote BENCH_wal.json");

    let mut failed = false;
    if grouped.fsyncs_per_op >= 1.0 {
        eprintln!(
            "FAIL: group commit did not batch ({:.3} fsyncs/op with {WRITERS} concurrent writers)",
            grouped.fsyncs_per_op
        );
        failed = true;
    }
    if grouped.appends != grouped.ops {
        eprintln!("FAIL: {} appends for {} puts", grouped.appends, grouped.ops);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
