//! Shared fixtures for the benchmark harness.
//!
//! Each bench regenerates one artifact of the paper's evaluation (see
//! DESIGN.md §3 and EXPERIMENTS.md): the three figures as end-to-end
//! operations, plus the quantitative sweeps (X1–X4) that characterize
//! the implementation the way the paper's deployment experience is
//! described qualitatively.

use mp_crypto::HmacDrbg;
use mp_gsi::Credential;
use mp_myproxy::client::{GetParams, InitParams};
use mp_myproxy::{MyProxyClient, MyProxyServer, ServerPolicy};
use mp_x509::test_util::{test_drbg, test_rsa_key};
use mp_x509::{CertificateAuthority, Clock, Dn, SimClock};
use std::sync::Arc;

pub use myproxy::testkit::GridWorld;

/// A minimal repository world for operation benches, parameterized by
/// the RSA key size the server uses when minting proxies.
pub struct BenchRepo {
    /// The trust root.
    pub ca_cert: mp_x509::Certificate,
    /// The depositor credential.
    pub user: Credential,
    /// The retriever credential.
    pub portal: Credential,
    /// The repository.
    pub server: MyProxyServer,
    /// Client pinned to the repository.
    pub client: MyProxyClient,
    /// Shared clock.
    pub clock: SimClock,
}

impl BenchRepo {
    /// Build with `key_bits`-bit server-minted proxy keys.
    pub fn new(key_bits: usize) -> Self {
        let clock = SimClock::new(1_000_000);
        let mut ca = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            100_000_000,
        )
        .unwrap();
        let mk = |ca: &mut CertificateAuthority, i: usize, dn: &str| {
            let key = test_rsa_key(i);
            let dn = Dn::parse(dn).unwrap();
            let cert = ca.issue_end_entity(&dn, key.public_key(), 0, 50_000_000).unwrap();
            Credential::new(vec![cert], key.clone()).unwrap()
        };
        let user = mk(&mut ca, 1, "/O=Grid/CN=alice");
        let portal = mk(&mut ca, 2, "/O=Grid/CN=portal");
        let server_cred = mk(&mut ca, 3, "/O=Grid/CN=myproxy");
        let mut policy = ServerPolicy::permissive();
        policy.key_bits = key_bits;
        let server = MyProxyServer::new(
            server_cred,
            vec![ca.certificate().clone()],
            policy,
            Arc::new(clock.clone()),
            HmacDrbg::new(format!("bench repo {key_bits}").as_bytes()),
        );
        let client = MyProxyClient::new(
            vec![ca.certificate().clone()],
            Some(Dn::parse("/O=Grid/CN=myproxy").unwrap()),
        );
        BenchRepo { ca_cert: ca.certificate().clone(), user, portal, server, client, clock }
    }

    /// One full `myproxy-init` (Figure 1) under `username`.
    pub fn do_init(&self, username: &str, rng: &mut HmacDrbg) {
        self.client
            .init(
                self.server.connect_local(),
                &self.user,
                &InitParams::new(username, "bench pass phrase"),
                rng,
                self.clock.now(),
            )
            .expect("bench init failed");
    }

    /// One full `myproxy-get-delegation` (Figure 2); `key_bits` sizes
    /// the locally generated proxy key.
    pub fn do_get(&self, username: &str, key_bits: usize, rng: &mut HmacDrbg) -> Credential {
        let mut params = GetParams::new(username, "bench pass phrase");
        params.key_bits = key_bits;
        self.client
            .get_delegation(self.server.connect_local(), &self.portal, &params, rng, self.clock.now())
            .expect("bench get failed")
    }

    /// Pre-populate `n` stored credentials (user0..user{n-1}).
    pub fn populate(&self, n: usize) {
        let mut rng = test_drbg("bench populate");
        for i in 0..n {
            self.do_init(&format!("user{i}"), &mut rng);
        }
    }
}

/// Build a proxy chain of the given depth (leaf first, ending at the
/// user's EE cert), plus the root for validation — the X3 fixture.
pub fn build_chain(depth: usize) -> (Vec<mp_x509::Certificate>, Vec<mp_x509::Certificate>) {
    let mut ca = CertificateAuthority::new_root(
        Dn::parse("/O=Grid/CN=CA").unwrap(),
        test_rsa_key(0).clone(),
        0,
        100_000_000,
    )
    .unwrap();
    let user_key = test_rsa_key(1);
    let user_dn = Dn::parse("/O=Grid/CN=alice").unwrap();
    let user_cert = ca
        .issue_end_entity(&user_dn, user_key.public_key(), 0, 50_000_000)
        .unwrap();
    let mut cred = Credential::new(vec![user_cert], user_key.clone()).unwrap();
    let mut rng = test_drbg("bench chain");
    for _ in 0..depth {
        cred = mp_gsi::grid_proxy_init(&cred, &mp_gsi::ProxyOptions::default(), &mut rng, 1000)
            .expect("chain build failed");
    }
    (cred.chain().to_vec(), vec![ca.certificate().clone()])
}

/// Fresh deterministic DRBG for a bench.
pub fn bench_rng(label: &str) -> HmacDrbg {
    test_drbg(label)
}
