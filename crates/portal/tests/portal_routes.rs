//! Route-level tests of the Grid portal: request handling, session
//! plumbing, error paths, and the TLS-requirement policy — using
//! `handle_request` directly (no transport) plus a wired MyProxy
//! repository for the login path.

use mp_crypto::HmacDrbg;
use mp_gsi::transport::{BoxedTransport, Connector};
use mp_gsi::Credential;
use mp_myproxy::client::InitParams;
use mp_myproxy::{MyProxyClient, MyProxyServer, ServerPolicy};
use mp_portal::http::HttpRequest;
use mp_portal::portal::{GridPortal, PortalConfig};
use mp_portal::session::COOKIE;
use mp_x509::test_util::{test_drbg, test_rsa_key};
use mp_x509::{CertificateAuthority, Clock, Dn, SimClock};
use std::sync::Arc;

struct World {
    portal: GridPortal,
    clock: SimClock,
}

fn world(require_tls: bool) -> World {
    let clock = SimClock::new(5000);
    let mut ca = CertificateAuthority::new_root(
        Dn::parse("/O=Grid/CN=CA").unwrap(),
        test_rsa_key(0).clone(),
        0,
        100_000_000,
    )
    .unwrap();
    let mk = |ca: &mut CertificateAuthority, i: usize, dn: &str| {
        let key = test_rsa_key(i);
        let dn = Dn::parse(dn).unwrap();
        let cert = ca.issue_end_entity(&dn, key.public_key(), 0, 50_000_000).unwrap();
        Credential::new(vec![cert], key.clone()).unwrap()
    };
    let alice = mk(&mut ca, 1, "/O=Grid/CN=alice");
    let portal_cred = mk(&mut ca, 2, "/O=Grid/CN=portal");
    let server_cred = mk(&mut ca, 3, "/O=Grid/CN=myproxy");
    let roots = vec![ca.certificate().clone()];

    let myproxy = MyProxyServer::new(
        server_cred,
        roots.clone(),
        ServerPolicy::permissive(),
        Arc::new(clock.clone()),
        HmacDrbg::new(b"portal routes myproxy"),
    );
    // Seed alice's credential.
    let client = MyProxyClient::new(roots.clone(), None);
    let mut rng = test_drbg("routes seed");
    client
        .init(
            myproxy.connect_local(),
            &alice,
            &InitParams::new("alice", "route pass phrase"),
            &mut rng,
            clock.now(),
        )
        .unwrap();

    let myproxy_conn: Connector = {
        let s = myproxy.clone();
        Arc::new(move || Ok(Box::new(s.connect_local()) as BoxedTransport))
    };
    let portal = GridPortal::new(PortalConfig {
        credential: portal_cred,
        trust_roots: roots,
        myproxy: myproxy_conn,
        myproxy_identity: Some(Dn::parse("/O=Grid/CN=myproxy").unwrap()),
        jobmanager: None,
        storage: None,
        clock: Arc::new(clock.clone()),
        require_tls,
        rng: HmacDrbg::new(b"portal routes portal"),
    });
    World { portal, clock }
}

fn login(w: &World, secure: bool) -> mp_portal::http::HttpResponse {
    let req = HttpRequest::post_form(
        "/login",
        &[("username", "alice"), ("passphrase", "route pass phrase")],
    );
    w.portal.handle_request(&req, secure)
}

fn cookie_of(resp: &mp_portal::http::HttpResponse) -> String {
    let set = resp.header("set-cookie").expect("cookie expected");
    set.split(';').next().unwrap().split_once('=').unwrap().1.to_string()
}

#[test]
fn login_page_served_on_both_transports() {
    let w = world(true);
    for secure in [true, false] {
        let resp = w.portal.handle_request(&HttpRequest::get("/"), secure);
        assert_eq!(resp.status, 200);
        assert!(resp.text().contains("Grid Portal"));
    }
}

#[test]
fn tls_requirement_gates_login_only() {
    let w = world(true);
    assert_eq!(login(&w, false).status, 403);
    assert_eq!(login(&w, true).status, 200);
    // With require_tls = false (an intranet deployment), HTTP works too.
    let w = world(false);
    assert_eq!(login(&w, false).status, 200);
}

#[test]
fn missing_form_fields_are_400() {
    let w = world(true);
    let resp = w
        .portal
        .handle_request(&HttpRequest::post_form("/login", &[("username", "alice")]), true);
    assert_eq!(resp.status, 400);
    let resp = w
        .portal
        .handle_request(&HttpRequest::post_form("/login", &[("passphrase", "x")]), true);
    assert_eq!(resp.status, 400);
}

#[test]
fn unknown_route_is_404() {
    let w = world(true);
    assert_eq!(w.portal.handle_request(&HttpRequest::get("/nope"), true).status, 404);
    assert_eq!(
        w.portal
            .handle_request(&HttpRequest::post_form("/login2", &[]), true)
            .status,
        404
    );
}

#[test]
fn whoami_requires_session() {
    let w = world(true);
    assert_eq!(w.portal.handle_request(&HttpRequest::get("/whoami"), true).status, 401);

    let resp = login(&w, true);
    let token = cookie_of(&resp);
    let req = HttpRequest::get("/whoami").with_header("cookie", &format!("{COOKIE}={token}"));
    let resp = w.portal.handle_request(&req, true);
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("user=alice"));

    // Garbage cookie.
    let req = HttpRequest::get("/whoami").with_header("cookie", &format!("{COOKIE}=bogus"));
    assert_eq!(w.portal.handle_request(&req, true).status, 401);
}

#[test]
fn custom_lifetime_is_passed_through() {
    let w = world(true);
    let req = HttpRequest::post_form(
        "/login",
        &[
            ("username", "alice"),
            ("passphrase", "route pass phrase"),
            ("lifetime", "600"),
        ],
    );
    let resp = w.portal.handle_request(&req, true);
    assert_eq!(resp.status, 200);
    let token = cookie_of(&resp);
    let session = w.portal.sessions().get(&token, w.clock.now()).unwrap();
    assert_eq!(session.proxy.remaining_lifetime(w.clock.now()), 600);
}

#[test]
fn job_routes_without_jobmanager_are_404() {
    let w = world(true);
    let resp = login(&w, true);
    let token = cookie_of(&resp);
    let cookie = format!("{COOKIE}={token}");
    let req = HttpRequest::post_form("/submit", &[("name", "j")]).with_header("cookie", &cookie);
    assert_eq!(w.portal.handle_request(&req, true).status, 404);
    let req = HttpRequest::get("/job?id=1").with_header("cookie", &cookie);
    assert_eq!(w.portal.handle_request(&req, true).status, 404);
    let req = HttpRequest::post_form("/store", &[("filename", "f")]).with_header("cookie", &cookie);
    assert_eq!(w.portal.handle_request(&req, true).status, 404);
}

#[test]
fn logout_without_session_is_401_and_idempotence() {
    let w = world(true);
    assert_eq!(
        w.portal.handle_request(&HttpRequest::post_form("/logout", &[]), true).status,
        401
    );
    let resp = login(&w, true);
    let token = cookie_of(&resp);
    let req =
        HttpRequest::post_form("/logout", &[]).with_header("cookie", &format!("{COOKIE}={token}"));
    assert_eq!(w.portal.handle_request(&req, true).status, 200);
    // Second logout with the same cookie fails.
    let req =
        HttpRequest::post_form("/logout", &[]).with_header("cookie", &format!("{COOKIE}={token}"));
    assert_eq!(w.portal.handle_request(&req, true).status, 401);
}

#[test]
fn sessions_expire_with_clock() {
    let w = world(true);
    let resp = login(&w, true);
    let token = cookie_of(&resp);
    let cookie = format!("{COOKIE}={token}");
    let req = HttpRequest::get("/whoami").with_header("cookie", &cookie);
    assert_eq!(w.portal.handle_request(&req, true).status, 200);
    w.clock.advance(3 * 3600); // past the 2h proxy
    let req = HttpRequest::get("/whoami").with_header("cookie", &cookie);
    assert_eq!(w.portal.handle_request(&req, true).status, 401);
}
