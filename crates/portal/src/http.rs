//! Minimal HTTP/1.0 messages: request line, headers, Content-Length
//! bodies, cookies, and `application/x-www-form-urlencoded` forms.
//! One request/response per connection (HTTP/1.0 style keeps the
//! portal's connection handling trivial, as the 2001-era CGI portals
//! did).

use crate::{PortalError, Result};

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// GET, POST, ...
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Raw body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Build a GET.
    pub fn get(path_and_query: &str) -> Self {
        let (path, query) = split_query(path_and_query);
        HttpRequest { method: "GET".into(), path, query, headers: Vec::new(), body: Vec::new() }
    }

    /// Build a POST with a form body.
    pub fn post_form(path: &str, form: &[(&str, &str)]) -> Self {
        let body = encode_form(form).into_bytes();
        let (path, query) = split_query(path);
        HttpRequest {
            method: "POST".into(),
            path,
            query,
            headers: vec![(
                "content-type".into(),
                "application/x-www-form-urlencoded".into(),
            )],
            body,
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_lowercase(), value.to_string()));
        self
    }

    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of cookie `name` from the `Cookie:` header.
    pub fn cookie(&self, name: &str) -> Option<String> {
        let header = self.header("cookie")?;
        for pair in header.split(';') {
            let (k, v) = pair.trim().split_once('=')?;
            if k == name {
                return Some(v.to_string());
            }
        }
        None
    }

    /// Parse the body as a urlencoded form.
    pub fn form(&self) -> Vec<(String, String)> {
        decode_form(std::str::from_utf8(&self.body).unwrap_or(""))
    }

    /// First form value by key.
    pub fn form_value(&self, key: &str) -> Option<String> {
        self.form().into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// First query value by key.
    pub fn query_value(&self, key: &str) -> Option<String> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    }

    /// Serialize to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut target = self.path.clone();
        if !self.query.is_empty() {
            target.push('?');
            target.push_str(&encode_form(
                &self.query.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect::<Vec<_>>(),
            ));
        }
        let mut out = format!("{} {} HTTP/1.0\r\n", self.method, target).into_bytes();
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse wire bytes (a complete message).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let (head, body) = split_head(bytes)?;
        let mut lines = head.lines();
        let request_line = lines
            .next()
            .ok_or_else(|| PortalError::Http("empty request".into()))?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| PortalError::Http("missing method".into()))?
            .to_string();
        let target = parts
            .next()
            .ok_or_else(|| PortalError::Http("missing path".into()))?;
        let (path, query) = split_query(target);
        let headers = parse_headers(lines)?;
        let body = limit_body(&headers, body)?;
        Ok(HttpRequest { method, path, query, headers, body })
    }
}

/// A response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// 200 with a text/html body.
    pub fn ok_html(body: &str) -> Self {
        HttpResponse {
            status: 200,
            headers: vec![("content-type".into(), "text/html".into())],
            body: body.as_bytes().to_vec(),
        }
    }

    /// 200 with a text/plain body.
    pub fn ok_text(body: &str) -> Self {
        HttpResponse {
            status: 200,
            headers: vec![("content-type".into(), "text/plain".into())],
            body: body.as_bytes().to_vec(),
        }
    }

    /// An error status with a plain-text body.
    pub fn error(status: u16, message: &str) -> Self {
        HttpResponse {
            status,
            headers: vec![("content-type".into(), "text/plain".into())],
            body: message.as_bytes().to_vec(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_lowercase(), value.to_string()));
        self
    }

    /// Set a session cookie.
    pub fn with_cookie(self, name: &str, value: &str) -> Self {
        self.with_header("set-cookie", &format!("{name}={value}; HttpOnly"))
    }

    /// First header by name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serialize.
    pub fn to_bytes(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            302 => "Found",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            _ => "Status",
        };
        let mut out = format!("HTTP/1.0 {} {}\r\n", self.status, reason).into_bytes();
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let (head, body) = split_head(bytes)?;
        let mut lines = head.lines();
        let status_line = lines
            .next()
            .ok_or_else(|| PortalError::Http("empty response".into()))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PortalError::Http("malformed status line".into()))?;
        let headers = parse_headers(lines)?;
        let body = limit_body(&headers, body)?;
        Ok(HttpResponse { status, headers, body })
    }
}

fn split_head(bytes: &[u8]) -> Result<(String, Vec<u8>)> {
    let sep = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| PortalError::Http("missing header terminator".into()))?;
    let head = String::from_utf8(bytes[..sep].to_vec())
        .map_err(|_| PortalError::Http("headers not UTF-8".into()))?;
    Ok((head, bytes[sep + 4..].to_vec()))
}

fn parse_headers(lines: std::str::Lines<'_>) -> Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (n, v) = line
            .split_once(':')
            .ok_or_else(|| PortalError::Http("malformed header".into()))?;
        headers.push((n.trim().to_lowercase(), v.trim().to_string()));
    }
    Ok(headers)
}

fn limit_body(headers: &[(String, String)], body: Vec<u8>) -> Result<Vec<u8>> {
    let declared: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(body.len());
    if declared > body.len() {
        return Err(PortalError::Http("truncated body".into()));
    }
    let mut body = body;
    body.truncate(declared);
    Ok(body)
}

fn split_query(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        Some((path, q)) => (path.to_string(), decode_form(q)),
        None => (target.to_string(), Vec::new()),
    }
}

/// Percent-encode a form value.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-decode a form value.
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = std::str::from_utf8(&bytes[i + 1..(i + 3).min(bytes.len())]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(v) if hex.len() == 2 => {
                        out.push(v);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn encode_form(pairs: &[(&str, &str)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{}={}", url_encode(k), url_encode(v)))
        .collect::<Vec<_>>()
        .join("&")
}

fn decode_form(s: &str) -> Vec<(String, String)> {
    s.split('&')
        .filter(|p| !p.is_empty())
        .filter_map(|p| {
            let (k, v) = p.split_once('=')?;
            Some((url_decode(k), url_decode(v)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_with_form() {
        let req = HttpRequest::post_form("/login", &[("username", "jdoe"), ("passphrase", "a b&c=d")]);
        let bytes = req.to_bytes();
        let back = HttpRequest::from_bytes(&bytes).unwrap();
        assert_eq!(back.method, "POST");
        assert_eq!(back.path, "/login");
        assert_eq!(back.form_value("username").as_deref(), Some("jdoe"));
        assert_eq!(back.form_value("passphrase").as_deref(), Some("a b&c=d"));
    }

    #[test]
    fn query_string_parsing() {
        let req = HttpRequest::get("/job?id=42&verbose=1");
        let bytes = req.to_bytes();
        let back = HttpRequest::from_bytes(&bytes).unwrap();
        assert_eq!(back.path, "/job");
        assert_eq!(back.query_value("id").as_deref(), Some("42"));
        assert_eq!(back.query_value("verbose").as_deref(), Some("1"));
    }

    #[test]
    fn cookie_parsing() {
        let req = HttpRequest::get("/").with_header("Cookie", "MPSESSION=abc123; other=x");
        assert_eq!(req.cookie("MPSESSION").as_deref(), Some("abc123"));
        assert_eq!(req.cookie("other").as_deref(), Some("x"));
        assert!(req.cookie("missing").is_none());
    }

    #[test]
    fn response_roundtrip() {
        let resp = HttpResponse::ok_html("<h1>hi</h1>").with_cookie("MPSESSION", "tok");
        let back = HttpResponse::from_bytes(&resp.to_bytes()).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.text(), "<h1>hi</h1>");
        assert!(back.header("set-cookie").unwrap().starts_with("MPSESSION=tok"));
    }

    #[test]
    fn url_encoding_roundtrip() {
        for s in ["hello world", "a+b=c&d", "ünïcode", "100%"] {
            assert_eq!(url_decode(&url_encode(s)), s, "{s}");
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(HttpRequest::from_bytes(b"GET /").is_err()); // no terminator
        assert!(HttpRequest::from_bytes(b"\r\n\r\n").is_err()); // no method
        assert!(HttpResponse::from_bytes(b"HTTP/1.0\r\n\r\n").is_err()); // no code
        // Declared longer than actual body.
        assert!(HttpRequest::from_bytes(b"GET / HTTP/1.0\r\ncontent-length: 99\r\n\r\nxx").is_err());
    }

    #[test]
    fn body_respects_content_length() {
        let bytes = b"GET / HTTP/1.0\r\ncontent-length: 2\r\n\r\nxxEXTRA";
        let req = HttpRequest::from_bytes(bytes).unwrap();
        assert_eq!(req.body, b"xx");
    }
}
