//! Web sessions: cookie → (user, delegated proxy).
//!
//! Paper §5.2: "it is the portal's responsibility to not only maintain
//! the user's credentials while in use, but to map the credentials to
//! the user's web session … often accomplished with cookies." And §4.3:
//! "The operation of logging out of the portal deletes the user's
//! delegated credential on the portal."

use mp_gsi::Credential;
use parking_lot::RwLock;
use rand::Rng;
use std::collections::HashMap;

/// One logged-in browser session.
#[derive(Clone)]
pub struct Session {
    /// MyProxy account name the user logged in with.
    pub username: String,
    /// The proxy the repository delegated to the portal for this user.
    pub proxy: Credential,
    /// Login time.
    pub created_at: u64,
}

/// Cookie-token session table.
#[derive(Default)]
pub struct SessionManager {
    sessions: RwLock<HashMap<String, Session>>,
}

/// The session cookie name.
pub const COOKIE: &str = "MPSESSION";

impl SessionManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a session; returns the cookie token (128-bit hex).
    pub fn create<R: Rng + ?Sized>(
        &self,
        username: &str,
        proxy: Credential,
        now: u64,
        rng: &mut R,
    ) -> String {
        let mut raw = [0u8; 16];
        rng.fill(&mut raw);
        let token = mp_crypto::hex(&raw);
        self.sessions.write().insert(
            token.clone(),
            Session { username: username.to_string(), proxy, created_at: now },
        );
        token
    }

    /// Look up a live session whose proxy is still valid at `now`.
    /// Sessions with expired proxies are removed on sight ("if a user
    /// forgets to log off, the credential will expire", §4.3).
    pub fn get(&self, token: &str, now: u64) -> Option<Session> {
        let mut sessions = self.sessions.write();
        match sessions.get(token) {
            Some(s) if s.proxy.remaining_lifetime(now) > 0 => Some(s.clone()),
            Some(_) => {
                sessions.remove(token);
                None
            }
            None => None,
        }
    }

    /// Logout: delete the session and with it the delegated credential.
    pub fn destroy(&self, token: &str) -> bool {
        self.sessions.write().remove(token).is_some()
    }

    /// Number of live sessions (including possibly-expired ones not yet
    /// touched).
    pub fn len(&self) -> usize {
        self.sessions.read().len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.read().is_empty()
    }

    /// Drop all sessions whose proxy has expired; returns count removed.
    pub fn sweep(&self, now: u64) -> usize {
        let mut sessions = self.sessions.write();
        let before = sessions.len();
        sessions.retain(|_, s| s.proxy.remaining_lifetime(now) > 0);
        before - sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_x509::test_util::{test_drbg, test_rsa_key};
    use mp_x509::{CertificateAuthority, Dn};

    fn proxy(not_after: u64) -> Credential {
        let mut ca = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let key = test_rsa_key(1);
        let dn = Dn::parse("/O=Grid/CN=alice").unwrap();
        let cert = ca.issue_end_entity(&dn, key.public_key(), 0, not_after).unwrap();
        Credential::new(vec![cert], key.clone()).unwrap()
    }

    #[test]
    fn create_get_destroy() {
        let mgr = SessionManager::new();
        let mut rng = test_drbg("sessions");
        let token = mgr.create("alice", proxy(10_000), 100, &mut rng);
        assert_eq!(token.len(), 32);
        let s = mgr.get(&token, 200).unwrap();
        assert_eq!(s.username, "alice");
        assert!(mgr.destroy(&token));
        assert!(mgr.get(&token, 200).is_none());
        assert!(!mgr.destroy(&token));
    }

    #[test]
    fn tokens_are_unique() {
        let mgr = SessionManager::new();
        let mut rng = test_drbg("sessions uniq");
        let t1 = mgr.create("a", proxy(10_000), 0, &mut rng);
        let t2 = mgr.create("a", proxy(10_000), 0, &mut rng);
        assert_ne!(t1, t2);
        assert_eq!(mgr.len(), 2);
    }

    #[test]
    fn expired_proxy_invalidates_session() {
        let mgr = SessionManager::new();
        let mut rng = test_drbg("sessions exp");
        let token = mgr.create("alice", proxy(1000), 100, &mut rng);
        assert!(mgr.get(&token, 500).is_some());
        assert!(mgr.get(&token, 1500).is_none(), "proxy expired ⇒ session dead");
        assert!(mgr.is_empty(), "expired session removed");
    }

    #[test]
    fn sweep_collects_expired() {
        let mgr = SessionManager::new();
        let mut rng = test_drbg("sessions sweep");
        mgr.create("a", proxy(1000), 0, &mut rng);
        mgr.create("b", proxy(99_999), 0, &mut rng);
        assert_eq!(mgr.sweep(2000), 1);
        assert_eq!(mgr.len(), 1);
    }
}
