//! HTTPS-sim: a one-way-authenticated encrypted pipe in the shape of
//! web TLS.
//!
//! Paper §5.2: "The portal web server must currently be configured to
//! only allow HTTP connections secured with SSL encryption (HTTPS),
//! since transmitting the name and pass phrase over unencrypted HTTP
//! would allow any intruder to snoop the pass phrase."
//!
//! The GSI channel (`mp_gsi::channel`) requires *mutual* certificate
//! authentication — but a web browser has no Grid credentials; that gap
//! is the whole reason MyProxy exists (§3.2). So the browser↔portal leg
//! uses this module instead: the browser validates the portal's
//! certificate and transports a premaster to it, exactly the
//! server-auth-only shape of 2001-era HTTPS. Same primitives
//! (RSA-PKCS#1 key transport, HMAC key schedule, sealed records), no
//! client certificate.

use crate::{PortalError, Result};
use mp_crypto::hmac::HmacSha256;
use mp_crypto::{ct_eq, Sha256};
use mp_gsi::record::{read_frame, write_frame, DirectionKeys, SealedRecords};
use mp_gsi::transport::Transport;
use mp_gsi::wire::{WireReader, WireWriter};
use mp_x509::{validate_chain, Certificate, Dn, ValidationOptions};
use mp_crypto::rsa::RsaPrivateKey;
use rand::Rng;

/// First byte of a busy-refusal frame sent in place of ServerHello. A
/// real ServerHello starts with a 4-byte big-endian length prefix whose
/// first byte is far below 0xFF, so the marker is unambiguous.
const BUSY_MARKER: u8 = 0xFF;

/// An established HTTPS-sim connection (either side).
pub struct TlsStream<T: Transport> {
    transport: T,
    records: SealedRecords,
}

impl<T: Transport> TlsStream<T> {
    /// Send one message (e.g. a full HTTP request).
    pub fn send(&mut self, data: &[u8]) -> Result<()> {
        self.records.send(&mut self.transport, data).map_err(tls_err)
    }

    /// Receive one message.
    pub fn recv(&mut self) -> Result<Vec<u8>> {
        self.records.recv(&mut self.transport).map_err(tls_err)
    }

    /// Borrow the underlying transport (to re-arm deadlines after the
    /// handshake).
    pub fn transport_ref(&self) -> &T {
        &self.transport
    }
}

/// Server-side load-shed: consume the ClientHello, then refuse with a
/// busy frame instead of a ServerHello. [`connect`] surfaces this to
/// the browser as a distinguishable "server busy" error.
pub fn send_busy<T: Transport>(transport: &mut T, reason: &str) -> Result<()> {
    let _hello = read_frame(transport).map_err(tls_err)?;
    let mut w = WireWriter::new();
    w.u8(BUSY_MARKER);
    w.bytes(reason.as_bytes());
    write_frame(transport, &w.into_bytes()).map_err(tls_err)
}

fn derive(premaster: &[u8], rc: &[u8; 32], rs: &[u8; 32], label: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(premaster);
    mac.update(label);
    mac.update(rc);
    mac.update(rs);
    mac.finalize()
}

fn key_schedule(premaster: &[u8], rc: &[u8; 32], rs: &[u8; 32]) -> (DirectionKeys, DirectionKeys, [u8; 32]) {
    (
        DirectionKeys { enc: derive(premaster, rc, rs, b"web c2s enc"), mac: derive(premaster, rc, rs, b"web c2s mac") },
        DirectionKeys { enc: derive(premaster, rc, rs, b"web s2c enc"), mac: derive(premaster, rc, rs, b"web s2c mac") },
        derive(premaster, rc, rs, b"web master"),
    )
}

/// Browser side: validate the server chain against `trust_roots` (the
/// browser's CA store) and optionally pin the expected server DN.
pub fn connect<T: Transport, R: Rng + ?Sized>(
    mut transport: T,
    trust_roots: &[Certificate],
    expected_server: Option<&Dn>,
    rng: &mut R,
    now: u64,
) -> Result<TlsStream<T>> {
    let mut transcript = Sha256::new();

    let mut random_c = [0u8; 32];
    rng.fill(&mut random_c);
    let mut hello = WireWriter::new();
    hello.bytes(&random_c);
    let hello = hello.into_bytes();
    transcript.update(&hello);
    write_frame(&mut transport, &hello).map_err(tls_err)?;

    let server_hello = read_frame(&mut transport).map_err(tls_err)?;
    if let Some((&BUSY_MARKER, rest)) = server_hello.split_first() {
        let mut r = WireReader::new(rest);
        let reason = String::from_utf8_lossy(r.bytes().map_err(tls_err)?).into_owned();
        return Err(PortalError::Tls(format!("server busy: {reason}")));
    }
    transcript.update(&server_hello);
    let mut r = WireReader::new(&server_hello);
    let random_s: [u8; 32] = r
        .bytes()
        .map_err(tls_err)?
        .try_into()
        .map_err(|_| PortalError::Tls("bad server random".into()))?;
    let chain_der = r.byte_list().map_err(tls_err)?;
    r.finish().map_err(tls_err)?;
    let chain: Vec<Certificate> = chain_der
        .iter()
        .map(|d| Certificate::from_der(d))
        .collect::<std::result::Result<_, _>>()
        .map_err(|e| PortalError::Tls(e.to_string()))?;
    let validated = validate_chain(&chain, trust_roots, now, &ValidationOptions::default())
        .map_err(|e| PortalError::Tls(format!("server certificate rejected: {e}")))?;
    if let Some(expected) = expected_server {
        if &validated.identity != expected {
            return Err(PortalError::Tls(format!(
                "server identity {} does not match expected {expected}",
                validated.identity
            )));
        }
    }

    let mut premaster = [0u8; 48];
    rng.fill(&mut premaster[..32]);
    rng.fill(&mut premaster[32..]);
    let enc = chain[0]
        .public_key()
        .encrypt(rng, &premaster)
        .map_err(|_| PortalError::Tls("premaster encryption failed".into()))?;
    let mut kx = WireWriter::new();
    kx.bytes(&enc);
    let kx = kx.into_bytes();
    transcript.update(&kx);
    write_frame(&mut transport, &kx).map_err(tls_err)?;

    let (c2s, s2c, master) = key_schedule(&premaster, &random_c, &random_s);
    let transcript_hash = transcript.finalize();

    // Server Finished proves it decrypted the premaster (i.e. holds the
    // certified key) — this is the entire server authentication.
    let fin = read_frame(&mut transport).map_err(tls_err)?;
    let expect = {
        let mut m = HmacSha256::new(&master);
        m.update(b"server finished");
        m.update(&transcript_hash);
        m.finalize()
    };
    if !ct_eq(&fin, &expect) {
        return Err(PortalError::Tls("server Finished MAC mismatch".into()));
    }
    let mine = {
        let mut m = HmacSha256::new(&master);
        m.update(b"client finished");
        m.update(&transcript_hash);
        m.finalize()
    };
    write_frame(&mut transport, &mine).map_err(tls_err)?;

    Ok(TlsStream { transport, records: SealedRecords::new(c2s, s2c, true) })
}

/// Portal side: present `chain` (leaf first) and `key`.
pub fn accept<T: Transport, R: Rng + ?Sized>(
    mut transport: T,
    chain: &[Certificate],
    key: &RsaPrivateKey,
    rng: &mut R,
) -> Result<TlsStream<T>> {
    let mut transcript = Sha256::new();

    let hello = read_frame(&mut transport).map_err(tls_err)?;
    transcript.update(&hello);
    let mut r = WireReader::new(&hello);
    let random_c: [u8; 32] = r
        .bytes()
        .map_err(tls_err)?
        .try_into()
        .map_err(|_| PortalError::Tls("bad client random".into()))?;
    r.finish().map_err(tls_err)?;

    let mut random_s = [0u8; 32];
    rng.fill(&mut random_s);
    let mut sh = WireWriter::new();
    sh.bytes(&random_s);
    sh.byte_list(&chain.iter().map(|c| c.to_der().to_vec()).collect::<Vec<_>>());
    let sh = sh.into_bytes();
    transcript.update(&sh);
    write_frame(&mut transport, &sh).map_err(tls_err)?;

    let kx = read_frame(&mut transport).map_err(tls_err)?;
    transcript.update(&kx);
    let mut r = WireReader::new(&kx);
    let enc = r.bytes().map_err(tls_err)?;
    r.finish().map_err(tls_err)?;
    let premaster = key
        .decrypt(enc)
        .map_err(|_| PortalError::Tls("premaster decryption failed".into()))?;
    if premaster.len() != 48 {
        return Err(PortalError::Tls("premaster wrong length".into()));
    }

    let (c2s, s2c, master) = key_schedule(&premaster, &random_c, &random_s);
    let transcript_hash = transcript.finalize();

    let mine = {
        let mut m = HmacSha256::new(&master);
        m.update(b"server finished");
        m.update(&transcript_hash);
        m.finalize()
    };
    write_frame(&mut transport, &mine).map_err(tls_err)?;
    let fin = read_frame(&mut transport).map_err(tls_err)?;
    let expect = {
        let mut m = HmacSha256::new(&master);
        m.update(b"client finished");
        m.update(&transcript_hash);
        m.finalize()
    };
    if !ct_eq(&fin, &expect) {
        return Err(PortalError::Tls("client Finished MAC mismatch".into()));
    }

    Ok(TlsStream { transport, records: SealedRecords::new(c2s, s2c, false) })
}

/// Map a channel error; transport I/O (including deadline timeouts)
/// keeps its [`std::io::Error`] so callers can classify it.
fn tls_err(e: mp_gsi::GsiError) -> PortalError {
    match e {
        mp_gsi::GsiError::Io(io) => PortalError::Io(io),
        other => PortalError::Tls(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_gsi::transport::{duplex, Tap};
    use mp_x509::test_util::{test_drbg, test_rsa_key};
    use mp_x509::{CertificateAuthority, Dn};

    fn portal_chain() -> (CertificateAuthority, Vec<Certificate>, &'static RsaPrivateKey) {
        let mut ca = CertificateAuthority::new_root(
            Dn::parse("/O=Grid/CN=CA").unwrap(),
            test_rsa_key(0).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let key = test_rsa_key(1);
        let dn = Dn::parse("/O=Grid/CN=portal.sdsc.edu").unwrap();
        let cert = ca.issue_end_entity(&dn, key.public_key(), 0, 500_000).unwrap();
        (ca, vec![cert], key)
    }

    #[test]
    fn browser_exchanges_data_with_portal() {
        let (ca, chain, key) = portal_chain();
        let (bt, pt) = duplex();
        let chain2 = chain.clone();
        let server = std::thread::spawn(move || {
            let mut rng = test_drbg("tls server");
            let mut s = accept(pt, &chain2, key, &mut rng).unwrap();
            let req = s.recv().unwrap();
            assert_eq!(req, b"GET /");
            s.send(b"200 OK").unwrap();
        });
        let mut rng = test_drbg("tls client");
        let roots = [ca.certificate().clone()];
        let mut c = connect(bt, &roots, None, &mut rng, 100).unwrap();
        c.send(b"GET /").unwrap();
        assert_eq!(c.recv().unwrap(), b"200 OK");
        server.join().unwrap();
    }

    #[test]
    fn browser_rejects_untrusted_portal() {
        let (_ca, chain, key) = portal_chain();
        let other_ca = CertificateAuthority::new_root(
            Dn::parse("/O=Other/CN=CA").unwrap(),
            test_rsa_key(5).clone(),
            0,
            1_000_000,
        )
        .unwrap();
        let (bt, pt) = duplex();
        std::thread::spawn(move || {
            let mut rng = test_drbg("tls server 2");
            let _ = accept(pt, &chain, key, &mut rng);
        });
        let mut rng = test_drbg("tls client 2");
        let roots = [other_ca.certificate().clone()];
        assert!(matches!(connect(bt, &roots, None, &mut rng, 100), Err(PortalError::Tls(_))));
    }

    #[test]
    fn browser_pins_expected_identity() {
        let (ca, chain, key) = portal_chain();
        let (bt, pt) = duplex();
        std::thread::spawn(move || {
            let mut rng = test_drbg("tls server 3");
            let _ = accept(pt, &chain, key, &mut rng);
        });
        let mut rng = test_drbg("tls client 3");
        let roots = [ca.certificate().clone()];
        let wrong = Dn::parse("/O=Grid/CN=portal.evil.example").unwrap();
        assert!(matches!(
            connect(bt, &roots, Some(&wrong), &mut rng, 100),
            Err(PortalError::Tls(_))
        ));
    }

    #[test]
    fn busy_refusal_reaches_browser() {
        let (ca, _chain, _key) = portal_chain();
        let (bt, mut pt) = duplex();
        let server = std::thread::spawn(move || send_busy(&mut pt, "maintenance"));
        let mut rng = test_drbg("tls busy");
        let roots = [ca.certificate().clone()];
        let Err(err) = connect(bt, &roots, None, &mut rng, 100) else {
            panic!("handshake against a busy server unexpectedly succeeded");
        };
        assert!(err.to_string().contains("server busy: maintenance"), "got: {err}");
        server.join().unwrap().unwrap();
    }

    #[test]
    fn wire_hides_payload() {
        let (ca, chain, key) = portal_chain();
        let (bt, pt) = duplex();
        let (bt_tapped, log) = Tap::new(bt);
        let server = std::thread::spawn(move || {
            let mut rng = test_drbg("tls server 4");
            let mut s = accept(pt, &chain, key, &mut rng).unwrap();
            s.recv().unwrap()
        });
        let mut rng = test_drbg("tls client 4");
        let roots = [ca.certificate().clone()];
        let mut c = connect(bt_tapped, &roots, None, &mut rng, 100).unwrap();
        c.send(b"passphrase=super-secret-42").unwrap();
        let got = server.join().unwrap();
        assert_eq!(got, b"passphrase=super-secret-42");
        assert!(!log.lock().contains(b"super-secret-42"));
    }
}
