//! Grid Portal simulation (paper §3, §4.3, Figure 3).
//!
//! "By combining a web server and Grid-enabled software, a Grid Portal
//! allows the use of a standard Web browser as a simple graphical
//! client for Grid applications." The pieces:
//!
//! * [`http`] — a minimal HTTP/1.0 request/response codec with cookies
//!   and form bodies (what the "standard web browser" speaks)
//! * [`tls`] — HTTPS-sim: a one-way-authenticated encrypted pipe in the
//!   shape of web TLS (server cert, RSA key transport, sealed records).
//!   §5.2 requires the portal to accept logins only over this.
//! * [`session`] — cookie sessions mapping a browser to its delegated
//!   proxy ("it is the portal's responsibility … to map the credentials
//!   to the user's web session", §5.2)
//! * [`portal`] — the portal itself: login via `myproxy-get-delegation`
//!   (Figure 3 steps 1–3), then job submission and file operations on
//!   the Grid as the user; logout deletes the delegated credential
//! * [`browser`] — a scriptable browser with a cookie jar, used by the
//!   examples, tests and benches

pub mod browser;
pub mod http;
pub mod portal;
pub mod session;
pub mod tls;

pub use browser::Browser;
pub use portal::{GridPortal, PortalConfig};
pub use session::SessionManager;

/// Errors from the portal stack.
#[derive(Debug)]
pub enum PortalError {
    /// Transport I/O.
    Io(std::io::Error),
    /// Malformed HTTP.
    Http(String),
    /// TLS-sim failure.
    Tls(String),
    /// Underlying Grid operation failed.
    Grid(String),
}

impl From<std::io::Error> for PortalError {
    fn from(e: std::io::Error) -> Self {
        PortalError::Io(e)
    }
}

impl std::fmt::Display for PortalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortalError::Io(e) => write!(f, "I/O error: {e}"),
            PortalError::Http(what) => write!(f, "HTTP error: {what}"),
            PortalError::Tls(what) => write!(f, "TLS error: {what}"),
            PortalError::Grid(what) => write!(f, "grid error: {what}"),
        }
    }
}

impl std::error::Error for PortalError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, PortalError>;
