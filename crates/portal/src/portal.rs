//! The Grid portal: Figure 3 made executable.
//!
//! 1. the user's browser sends the MyProxy user name + pass phrase to
//!    the portal (over HTTPS-sim — §5.2 forbids plain HTTP for this);
//! 2. the portal authenticates to the repository *with its own Grid
//!    credentials* and presents the user's authentication data;
//! 3. the repository delegates the user's proxy to the portal, which
//!    binds it to the browser's session cookie;
//! then the portal drives GRAM / mass storage as the user until logout
//! (which deletes the delegated credential) or proxy expiry.

use crate::http::{HttpRequest, HttpResponse};
use crate::session::{SessionManager, COOKIE};
use crate::{tls, PortalError, Result};
use mp_crypto::HmacDrbg;
use mp_gram::{job, storage};
use mp_gsi::net::{
    self, DeadlineControl, NetConfig, Outcome, Service, ShutdownHandle, TcpAcceptor,
};
use mp_gsi::transport::{Connector, Transport};
use mp_gsi::{ChannelConfig, Credential};
use mp_myproxy::client::GetParams;
use mp_myproxy::MyProxyClient;
use mp_obs::{Counter, Histogram, Registry, Snapshot};
use mp_x509::{Certificate, Clock, Dn};
use parking_lot::Mutex;
use std::io::Read;
use std::sync::Arc;

/// Everything a portal needs to run.
pub struct PortalConfig {
    /// The portal's own Grid credentials — kept unencrypted so the
    /// production service needs no operator at restart (the §5.2
    /// trade-off, discussed verbatim in the paper).
    pub credential: Credential,
    /// CA roots for every Grid-side connection.
    pub trust_roots: Vec<Certificate>,
    /// Dial the MyProxy repository.
    pub myproxy: Connector,
    /// Expected repository identity (pinned; §5.1 mutual auth).
    pub myproxy_identity: Option<Dn>,
    /// Dial the job manager, if job submission is offered.
    pub jobmanager: Option<Connector>,
    /// Dial mass storage, if file operations are offered.
    pub storage: Option<Connector>,
    /// Time source.
    pub clock: Arc<dyn Clock>,
    /// §5.2: refuse to accept login pass phrases over plain HTTP.
    pub require_tls: bool,
    /// Entropy.
    pub rng: HmacDrbg,
}

/// The portal server.
pub struct GridPortal {
    config: PortalConfig,
    sessions: SessionManager,
    myproxy_client: MyProxyClient,
    grid_cfg: ChannelConfig,
    rng: Mutex<HmacDrbg>,
    /// Per-portal metrics registry: `portal.*` counters, the
    /// `portal.request` latency histogram, and the counters of both
    /// pools (TLS / plain) when served via the pool helpers. What
    /// `GET /metrics` renders, merged with the global span registry.
    obs: Arc<Registry>,
    /// Requests routed through [`GridPortal::handle_request`].
    requests: Counter,
    /// Per-request handling latency (routing + backend round-trips).
    request_hist: Histogram,
    /// Connections whose detached handler thread ended in an error
    /// (malformed request, TLS failure) with nobody left to report to.
    handler_errors: Counter,
}

impl GridPortal {
    /// Build a portal from config.
    pub fn new(mut config: PortalConfig) -> Self {
        let myproxy_client = MyProxyClient::new(
            config.trust_roots.clone(),
            config.myproxy_identity.clone(),
        );
        let grid_cfg = ChannelConfig::new(config.trust_roots.clone());
        let mut seed = [0u8; 32];
        config.rng.generate(&mut seed);
        let obs = Arc::new(Registry::new());
        GridPortal {
            config,
            sessions: SessionManager::new(),
            myproxy_client,
            grid_cfg,
            rng: Mutex::new(HmacDrbg::new(&seed)),
            requests: obs.counter("portal.requests"),
            request_hist: obs.histogram("portal.request"),
            handler_errors: obs.counter("portal.handler_errors"),
            obs,
        }
    }

    /// Session table (tests inspect it).
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    /// Accept-loop connections whose handler thread ended in an error.
    pub fn handler_errors(&self) -> u64 {
        self.handler_errors.get()
    }

    /// This portal's metrics registry.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Everything observable about this portal: its instance registry
    /// merged with the process-global ambient spans.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.obs.snapshot().merged(&mp_obs::global().snapshot())
    }

    /// The `GET /metrics` scrape body (mp-obs text exposition).
    pub fn metrics_text(&self) -> String {
        mp_obs::render(&self.metrics_snapshot())
    }

    fn req_rng(&self) -> HmacDrbg {
        let mut seed = [0u8; 32];
        self.rng.lock().generate(&mut seed);
        HmacDrbg::new(&seed)
    }

    /// Route one HTTP request. `secure` says whether it arrived over
    /// HTTPS-sim.
    pub fn handle_request(&self, req: &HttpRequest, secure: bool) -> HttpResponse {
        self.requests.inc();
        let _timer = self.request_hist.timer();
        let mut rng = self.req_rng();
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/") => HttpResponse::ok_html(LOGIN_PAGE),
            ("POST", "/login") => self.login(req, secure, &mut rng),
            ("POST", "/logout") => self.logout(req),
            ("GET", "/whoami") => self.whoami(req),
            // The scrape surface: readable without a session (metric
            // names and u64s only — no credential material to protect),
            // so operators' monitoring works even while login is
            // load-shedding.
            ("GET", "/metrics") => HttpResponse::ok_text(&self.metrics_text()),
            ("POST", "/submit") => self.submit(req, &mut rng),
            ("GET", "/job") => self.job_status(req, &mut rng),
            ("POST", "/store") => self.store_file(req, &mut rng),
            ("GET", "/files") => self.list_files(req, &mut rng),
            _ => HttpResponse::error(404, "no such page"),
        }
    }

    fn login(&self, req: &HttpRequest, secure: bool, rng: &mut HmacDrbg) -> HttpResponse {
        if self.config.require_tls && !secure {
            // §5.2: "transmitting the name and pass phrase over
            // unencrypted HTTP would allow any intruder to snoop".
            return HttpResponse::error(403, "logins require HTTPS");
        }
        let Some(username) = req.form_value("username") else {
            return HttpResponse::error(400, "missing username");
        };
        let Some(passphrase) = req.form_value("passphrase") else {
            return HttpResponse::error(400, "missing passphrase");
        };
        let mut params = GetParams::new(&username, &passphrase);
        if let Some(lt) = req.form_value("lifetime").and_then(|v| v.parse().ok()) {
            params.lifetime_secs = lt;
        }
        if let Some(task) = req.form_value("task") {
            params.task = mp_myproxy::proto::parse_tags(&task);
        }
        let now = self.config.clock.now();
        // Figure 3 steps 2-3: portal → repository with its own creds +
        // the user's authentication data; repository delegates back.
        let transport = match (self.config.myproxy)() {
            Ok(t) => t,
            Err(e) => return HttpResponse::error(502, &format!("cannot reach repository: {e}")),
        };
        match self.myproxy_client.get_delegation(
            transport,
            &self.config.credential,
            &params,
            rng,
            now,
        ) {
            Ok(proxy) => {
                let token = self.sessions.create(&username, proxy, now, rng);
                HttpResponse::ok_text("login ok").with_cookie(COOKIE, &token)
            }
            Err(e) => HttpResponse::error(401, &format!("login failed: {e}")),
        }
    }

    fn logout(&self, req: &HttpRequest) -> HttpResponse {
        match req.cookie(COOKIE) {
            Some(token) if self.sessions.destroy(&token) => {
                // §4.3: logout deletes the delegated credential.
                HttpResponse::ok_text("logged out")
            }
            _ => HttpResponse::error(401, "no session"),
        }
    }

    fn session_for(&self, req: &HttpRequest) -> Result<crate::session::Session> {
        let token = req
            .cookie(COOKIE)
            .ok_or_else(|| PortalError::Http("no session cookie".into()))?;
        self.sessions
            .get(&token, self.config.clock.now())
            .ok_or_else(|| PortalError::Http("session expired or unknown".into()))
    }

    fn whoami(&self, req: &HttpRequest) -> HttpResponse {
        match self.session_for(req) {
            Ok(s) => {
                let now = self.config.clock.now();
                HttpResponse::ok_text(&format!(
                    "user={} subject={} expires_in={}",
                    s.username,
                    s.proxy.subject(),
                    s.proxy.remaining_lifetime(now)
                ))
            }
            Err(_) => HttpResponse::error(401, "not logged in"),
        }
    }

    fn submit(&self, req: &HttpRequest, rng: &mut HmacDrbg) -> HttpResponse {
        let session = match self.session_for(req) {
            Ok(s) => s,
            Err(_) => return HttpResponse::error(401, "not logged in"),
        };
        let Some(connector) = &self.config.jobmanager else {
            return HttpResponse::error(404, "no job manager configured");
        };
        let name = req.form_value("name").unwrap_or_else(|| "job".into());
        let ticks = req
            .form_value("ticks")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let wants_output = req.form_value("output").as_deref() == Some("1");
        let transport = match connector() {
            Ok(t) => t,
            Err(e) => return HttpResponse::error(502, &format!("cannot reach job manager: {e}")),
        };
        let now = self.config.clock.now();
        match job::client::submit(
            transport,
            &session.proxy, // the portal acts AS THE USER
            &self.grid_cfg,
            &name,
            ticks,
            wants_output,
            true, // delegate to the job so it can store output
            session.proxy.remaining_lifetime(now),
            rng,
            now,
        ) {
            Ok(id) => HttpResponse::ok_text(&format!("job={id}")),
            Err(e) => HttpResponse::error(403, &format!("submission failed: {e}")),
        }
    }

    fn job_status(&self, req: &HttpRequest, rng: &mut HmacDrbg) -> HttpResponse {
        let session = match self.session_for(req) {
            Ok(s) => s,
            Err(_) => return HttpResponse::error(401, "not logged in"),
        };
        let Some(connector) = &self.config.jobmanager else {
            return HttpResponse::error(404, "no job manager configured");
        };
        let Some(id) = req.query_value("id").and_then(|v| v.parse().ok()) else {
            return HttpResponse::error(400, "missing id");
        };
        let transport = match connector() {
            Ok(t) => t,
            Err(e) => return HttpResponse::error(502, &format!("cannot reach job manager: {e}")),
        };
        let now = self.config.clock.now();
        match job::client::status(transport, &session.proxy, &self.grid_cfg, id, rng, now) {
            Ok((state, done, total)) => {
                HttpResponse::ok_text(&format!("state={state} done={done} total={total}"))
            }
            Err(e) => HttpResponse::error(404, &format!("status failed: {e}")),
        }
    }

    fn store_file(&self, req: &HttpRequest, rng: &mut HmacDrbg) -> HttpResponse {
        let session = match self.session_for(req) {
            Ok(s) => s,
            Err(_) => return HttpResponse::error(401, "not logged in"),
        };
        let Some(connector) = &self.config.storage else {
            return HttpResponse::error(404, "no storage configured");
        };
        let Some(filename) = req.form_value("filename") else {
            return HttpResponse::error(400, "missing filename");
        };
        let content = req.form_value("content").unwrap_or_default();
        let transport = match connector() {
            Ok(t) => t,
            Err(e) => return HttpResponse::error(502, &format!("cannot reach storage: {e}")),
        };
        let now = self.config.clock.now();
        match storage::client::store(
            transport,
            &session.proxy,
            &self.grid_cfg,
            &filename,
            content.as_bytes(),
            rng,
            now,
        ) {
            Ok(()) => HttpResponse::ok_text("stored"),
            Err(e) => HttpResponse::error(403, &format!("store failed: {e}")),
        }
    }

    fn list_files(&self, req: &HttpRequest, rng: &mut HmacDrbg) -> HttpResponse {
        let session = match self.session_for(req) {
            Ok(s) => s,
            Err(_) => return HttpResponse::error(401, "not logged in"),
        };
        let Some(connector) = &self.config.storage else {
            return HttpResponse::error(404, "no storage configured");
        };
        let transport = match connector() {
            Ok(t) => t,
            Err(e) => return HttpResponse::error(502, &format!("cannot reach storage: {e}")),
        };
        let now = self.config.clock.now();
        match storage::client::list(transport, &session.proxy, &self.grid_cfg, rng, now) {
            Ok(files) => HttpResponse::ok_text(&files.join("\n")),
            Err(e) => HttpResponse::error(403, &format!("list failed: {e}")),
        }
    }

    /// Serve one plain-HTTP connection (read request, write response,
    /// close). Login over this path is refused when `require_tls` —
    /// the rest still works, mirroring real portals that served static
    /// pages on :80.
    pub fn serve_plain<T: Transport>(&self, mut transport: T) -> Result<()> {
        let bytes = read_http_message(&mut transport)?;
        let req = HttpRequest::from_bytes(&bytes)?;
        let resp = self.handle_request(&req, false);
        std::io::Write::write_all(&mut transport, &resp.to_bytes())?;
        std::io::Write::flush(&mut transport)?;
        Ok(())
    }

    /// Like [`serve_plain`](Self::serve_plain), but arms the transport
    /// with the per-request idle deadline first (plain HTTP has no
    /// handshake phase, so the whole exchange runs under it).
    pub fn serve_plain_deadlined<T: Transport + DeadlineControl>(
        &self,
        transport: T,
        idle_deadline: Option<std::time::Duration>,
    ) -> Result<()> {
        transport.set_deadlines(idle_deadline, idle_deadline);
        self.serve_plain(transport)
    }

    /// Serve TCP with HTTPS-sim framing on a bounded worker pool with
    /// default [`NetConfig`]. Call from an `Arc<GridPortal>`.
    pub fn serve_tcp_tls(
        self: &std::sync::Arc<Self>,
        listener: std::net::TcpListener,
    ) -> std::io::Result<ShutdownHandle> {
        self.serve_tcp_tls_with(listener, NetConfig::default())
    }

    /// [`serve_tcp_tls`](Self::serve_tcp_tls) with explicit pool tuning.
    pub fn serve_tcp_tls_with(
        self: &std::sync::Arc<Self>,
        listener: std::net::TcpListener,
        cfg: NetConfig,
    ) -> std::io::Result<ShutdownHandle> {
        net::serve_scoped(TcpAcceptor::new(listener)?, self.tls_service(), cfg, &self.obs, "portal.tls")
    }

    /// Serve TCP with plain HTTP (static pages / health checks; logins
    /// will be refused when `require_tls` is set) on a bounded worker
    /// pool with default [`NetConfig`].
    pub fn serve_tcp_plain(
        self: &std::sync::Arc<Self>,
        listener: std::net::TcpListener,
    ) -> std::io::Result<ShutdownHandle> {
        self.serve_tcp_plain_with(listener, NetConfig::default())
    }

    /// [`serve_tcp_plain`](Self::serve_tcp_plain) with explicit pool
    /// tuning.
    pub fn serve_tcp_plain_with(
        self: &std::sync::Arc<Self>,
        listener: std::net::TcpListener,
        cfg: NetConfig,
    ) -> std::io::Result<ShutdownHandle> {
        net::serve_scoped(TcpAcceptor::new(listener)?, self.plain_service(), cfg, &self.obs, "portal.plain")
    }

    /// This portal's HTTPS-sim side as a pool [`Service`].
    pub fn tls_service(self: &std::sync::Arc<Self>) -> Arc<PortalTlsService> {
        Arc::new(PortalTlsService { portal: self.clone() })
    }

    /// This portal's plain-HTTP side as a pool [`Service`].
    pub fn plain_service(self: &std::sync::Arc<Self>) -> Arc<PortalPlainService> {
        Arc::new(PortalPlainService { portal: self.clone() })
    }

    /// Serve one HTTPS-sim connection.
    pub fn serve_tls<T: Transport>(&self, transport: T) -> Result<()> {
        let mut rng = self.req_rng();
        let mut stream = tls::accept(
            transport,
            self.config.credential.chain(),
            self.config.credential.key(),
            &mut rng,
        )?;
        self.serve_tls_stream(&mut stream)
    }

    /// Like [`serve_tls`](Self::serve_tls), but re-arms the transport
    /// with the per-request idle deadline once the TLS handshake has
    /// completed.
    pub fn serve_tls_deadlined<T: Transport + DeadlineControl>(
        &self,
        transport: T,
        idle_deadline: Option<std::time::Duration>,
    ) -> Result<()> {
        let mut rng = self.req_rng();
        let mut stream = tls::accept(
            transport,
            self.config.credential.chain(),
            self.config.credential.key(),
            &mut rng,
        )?;
        stream.transport_ref().set_deadlines(idle_deadline, idle_deadline);
        self.serve_tls_stream(&mut stream)
    }

    fn serve_tls_stream<T: Transport>(&self, stream: &mut tls::TlsStream<T>) -> Result<()> {
        let bytes = stream.recv()?;
        let req = HttpRequest::from_bytes(&bytes)?;
        let resp = self.handle_request(&req, true);
        stream.send(&resp.to_bytes())?;
        Ok(())
    }
}

/// Classify a handler result for the worker pool's accounting: deadline
/// evictions are timeouts, everything else an error.
fn outcome_of(result: &Result<()>) -> Outcome {
    match result {
        Ok(()) => Outcome::Ok,
        Err(PortalError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ) =>
        {
            Outcome::Timeout
        }
        Err(_) => Outcome::Error,
    }
}

/// [`Service`] adapter driving a [`GridPortal`]'s HTTPS-sim side from a
/// worker pool.
pub struct PortalTlsService {
    portal: Arc<GridPortal>,
}

impl<C: Transport + DeadlineControl + 'static> Service<C> for PortalTlsService {
    fn handle(&self, conn: C, idle_deadline: Option<std::time::Duration>) -> Outcome {
        outcome_of(&self.portal.serve_tls_deadlined(conn, idle_deadline))
    }

    fn shed(&self, mut conn: C) {
        if tls::send_busy(&mut conn, "connection limit reached").is_err() {
            self.portal.handler_errors.inc();
        }
    }

    fn sweep(&self) {
        self.portal.sessions.sweep(self.portal.config.clock.now());
    }
}

/// [`Service`] adapter driving a [`GridPortal`]'s plain-HTTP side from
/// a worker pool.
pub struct PortalPlainService {
    portal: Arc<GridPortal>,
}

impl PortalPlainService {
    /// HTTP-level load-shed: a 503 the browser can render.
    fn refuse_busy<C: std::io::Write>(conn: &mut C) -> std::io::Result<()> {
        let resp = HttpResponse::error(503, "server busy: connection limit reached");
        conn.write_all(&resp.to_bytes())?;
        conn.flush()
    }
}

impl<C: Transport + DeadlineControl + 'static> Service<C> for PortalPlainService {
    fn handle(&self, conn: C, idle_deadline: Option<std::time::Duration>) -> Outcome {
        outcome_of(&self.portal.serve_plain_deadlined(conn, idle_deadline))
    }

    fn shed(&self, mut conn: C) {
        if Self::refuse_busy(&mut conn).is_err() {
            self.portal.handler_errors.inc();
        }
    }

    fn sweep(&self) {
        self.portal.sessions.sweep(self.portal.config.clock.now());
    }
}

/// Read one HTTP/1.0 message from a stream: headers to `\r\n\r\n`, then
/// `content-length` body bytes.
fn read_http_message<T: Read>(transport: &mut T) -> Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(1024);
    let mut byte = [0u8; 1];
    // Read headers byte-at-a-time (fine for a simulation; real servers
    // buffer).
    loop {
        let n = transport.read(&mut byte)?;
        if n == 0 {
            return Err(PortalError::Http("connection closed mid-headers".into()));
        }
        buf.push(byte[0]);
        if buf.len() > 64 * 1024 {
            return Err(PortalError::Http("headers too large".into()));
        }
        if buf.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.trim().eq_ignore_ascii_case("content-length").then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    if content_length > 1 << 20 {
        return Err(PortalError::Http("body too large".into()));
    }
    let mut body = vec![0u8; content_length];
    transport.read_exact(&mut body)?;
    buf.extend_from_slice(&body);
    Ok(buf)
}

const LOGIN_PAGE: &str = r#"<html><head><title>Grid Portal</title></head>
<body><h1>Grid Portal</h1>
<form method="POST" action="/login">
MyProxy username: <input name="username"><br>
Pass phrase: <input type="password" name="passphrase"><br>
<input type="submit" value="Log in">
</form></body></html>"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_http_message_handles_body() {
        let raw = b"POST /login HTTP/1.0\r\ncontent-length: 5\r\n\r\nhello".to_vec();
        let mut cursor = std::io::Cursor::new(raw.clone());
        let got = read_http_message(&mut cursor).unwrap();
        assert_eq!(got, raw);
    }

    #[test]
    fn read_http_message_rejects_truncation() {
        let raw = b"POST / HTTP/1.0\r\ncontent-length: 50\r\n\r\nshort".to_vec();
        let mut cursor = std::io::Cursor::new(raw);
        assert!(read_http_message(&mut cursor).is_err());
    }
}
