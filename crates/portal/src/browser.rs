//! A scriptable "standard web browser" (paper §3.1: "users must be able
//! to use any standard web browser to access the Grid portals").
//!
//! Holds a cookie jar and nothing else — deliberately: the browser has
//! *no Grid credentials and no GSI code* (§3.2), which is exactly the
//! constraint MyProxy exists to bridge. It dials the portal through a
//! connector, over plain HTTP or HTTPS-sim.

use crate::http::{HttpRequest, HttpResponse};
use crate::{tls, PortalError, Result};
use mp_crypto::HmacDrbg;
use mp_gsi::transport::Connector;
use mp_x509::{Certificate, Dn};
use std::collections::HashMap;
use std::io::{Read, Write};

/// How the browser talks to the portal.
pub enum BrowserMode {
    /// Plain HTTP — snoopable; the §5.2 "what could go wrong" path.
    Plain,
    /// HTTPS-sim: validate the portal's certificate against these roots
    /// (the browser's CA store), optionally pinning the DN.
    Tls {
        /// The browser's trusted CAs.
        roots: Vec<Certificate>,
        /// Pin the portal's identity.
        expected: Option<Dn>,
    },
}

/// The browser: cookie jar + connection mode.
pub struct Browser {
    connector: Connector,
    mode: BrowserMode,
    cookies: HashMap<String, String>,
    rng: HmacDrbg,
    /// Wall-clock for certificate validation.
    pub now: u64,
}

impl Browser {
    /// A browser dialing `connector` in `mode`.
    pub fn new(connector: Connector, mode: BrowserMode, rng: HmacDrbg, now: u64) -> Self {
        Browser { connector, mode, cookies: HashMap::new(), rng, now }
    }

    /// Send one request (one connection, HTTP/1.0 style), updating the
    /// cookie jar from `Set-Cookie`.
    pub fn request(&mut self, mut req: HttpRequest) -> Result<HttpResponse> {
        if !self.cookies.is_empty() {
            let jar = self
                .cookies
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join("; ");
            req = req.with_header("cookie", &jar);
        }
        let transport = (self.connector)()?;
        let resp = match &self.mode {
            BrowserMode::Plain => {
                let mut transport = transport;
                transport.write_all(&req.to_bytes())?;
                transport.flush()?;
                let mut buf = Vec::new();
                transport.read_to_end(&mut buf)?;
                HttpResponse::from_bytes(&buf)?
            }
            BrowserMode::Tls { roots, expected } => {
                let mut stream =
                    tls::connect(transport, roots, expected.as_ref(), &mut self.rng, self.now)?;
                stream.send(&req.to_bytes())?;
                HttpResponse::from_bytes(&stream.recv()?)?
            }
        };
        for (name, value) in &resp.headers {
            if name == "set-cookie" {
                if let Some((cookie, _attrs)) = value.split_once(';') {
                    if let Some((k, v)) = cookie.trim().split_once('=') {
                        self.cookies.insert(k.to_string(), v.to_string());
                    }
                } else if let Some((k, v)) = value.trim().split_once('=') {
                    self.cookies.insert(k.to_string(), v.to_string());
                }
            }
        }
        Ok(resp)
    }

    /// GET a path.
    pub fn get(&mut self, path: &str) -> Result<HttpResponse> {
        self.request(HttpRequest::get(path))
    }

    /// POST a form.
    pub fn post(&mut self, path: &str, form: &[(&str, &str)]) -> Result<HttpResponse> {
        self.request(HttpRequest::post_form(path, form))
    }

    /// Log in to the portal (Figure 3 step 1).
    pub fn login(&mut self, username: &str, passphrase: &str) -> Result<HttpResponse> {
        self.post("/login", &[("username", username), ("passphrase", passphrase)])
    }

    /// Log out (deletes the delegated credential portal-side, §4.3).
    pub fn logout(&mut self) -> Result<HttpResponse> {
        self.post("/logout", &[])
    }

    /// The current session cookie, if logged in.
    pub fn session_cookie(&self) -> Option<&str> {
        self.cookies.get(crate::session::COOKIE).map(String::as_str)
    }

    /// Forget all cookies (close the browser).
    pub fn clear_cookies(&mut self) {
        self.cookies.clear();
    }
}

/// Convenience: check an HTTP response is a success, else surface the
/// body as the error.
pub fn expect_ok(resp: HttpResponse) -> Result<HttpResponse> {
    if resp.status == 200 {
        Ok(resp)
    } else {
        Err(PortalError::Http(format!("HTTP {}: {}", resp.status, resp.text())))
    }
}
