//! Addition, subtraction, multiplication (schoolbook + Karatsuba) and
//! bit shifts, with operator impls.

use crate::BigUint;
use std::ops::{Add, AddAssign, Mul, Shl, Shr, Sub, SubAssign};

/// Operand size (in limbs) above which multiplication switches from
/// schoolbook to Karatsuba.
///
/// Tuned empirically (see the `ablation_multiplication` bench and
/// EXPERIMENTS.md): this allocation-based Karatsuba only beats the
/// cache-friendly schoolbook loop above ~128 limbs (8192-bit operands),
/// so every RSA-sized multiplication (≤ 64 limbs) takes the schoolbook
/// path and Karatsuba only kicks in for the internal products of very
/// large moduli.
const KARATSUBA_THRESHOLD: usize = 128;

impl BigUint {
    /// `self + other`.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`. Panics on underflow (callers uphold `self >= other`).
    pub fn sub_ref(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        BigUint::from_limbs(out)
    }

    /// Checked subtraction: `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            None
        } else {
            Some(self.sub_ref(other))
        }
    }

    /// `self * other`, dispatching on operand size.
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if self.limbs.len() >= KARATSUBA_THRESHOLD && other.limbs.len() >= KARATSUBA_THRESHOLD {
            karatsuba(&self.limbs, &other.limbs)
        } else {
            BigUint::from_limbs(schoolbook(&self.limbs, &other.limbs))
        }
    }

    /// Schoolbook multiplication regardless of size — exposed only for
    /// the Karatsuba ablation bench.
    #[doc(hidden)]
    pub fn mul_schoolbook_for_bench(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        BigUint::from_limbs(schoolbook(&self.limbs, &other.limbs))
    }

    /// Multiply by a single limb.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let prod = l as u128 * m as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }
}

/// Schoolbook multiplication on raw limb slices.
fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let acc = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = acc as u64;
            carry = acc >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let acc = out[k] as u128 + carry;
            out[k] = acc as u64;
            carry = acc >> 64;
            k += 1;
        }
    }
    out
}

/// Karatsuba multiplication: splits at half the shorter length and recurses.
fn karatsuba(a: &[u64], b: &[u64]) -> BigUint {
    let split = a.len().min(b.len()) / 2;
    if split < KARATSUBA_THRESHOLD / 2 {
        return BigUint::from_limbs(schoolbook(a, b));
    }
    let (a_lo, a_hi) = a.split_at(split);
    let (b_lo, b_hi) = b.split_at(split);
    let a_lo = BigUint::from_limbs(a_lo.to_vec());
    let a_hi = BigUint::from_limbs(a_hi.to_vec());
    let b_lo = BigUint::from_limbs(b_lo.to_vec());
    let b_hi = BigUint::from_limbs(b_hi.to_vec());

    let z2 = a_hi.mul_ref(&b_hi);
    let z0 = a_lo.mul_ref(&b_lo);
    // z1 = (a_lo + a_hi)(b_lo + b_hi) - z2 - z0
    let z1 = a_lo
        .add_ref(&a_hi)
        .mul_ref(&b_lo.add_ref(&b_hi))
        .sub_ref(&z2)
        .sub_ref(&z0);

    z2.shl_bits(2 * split * 64)
        .add_ref(&z1.shl_bits(split * 64))
        .add_ref(&z0)
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl:ident) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$impl(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$impl(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$impl(rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Sub, sub, sub_ref);
forward_binop!(Mul, mul, mul_ref);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = self.sub_ref(rhs);
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn n(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn add_with_carry_chain() {
        let a = n("ffffffffffffffffffffffffffffffff");
        let one = BigUint::one();
        assert_eq!(a.add_ref(&one), n("100000000000000000000000000000000"));
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = n("100000000000000000000000000000000");
        assert_eq!(a.sub_ref(&BigUint::one()), n("ffffffffffffffffffffffffffffffff"));
    }

    #[test]
    fn checked_sub_underflow() {
        assert!(BigUint::one().checked_sub(&BigUint::from_u64(2)).is_none());
        assert_eq!(
            BigUint::from_u64(5).checked_sub(&BigUint::from_u64(2)),
            Some(BigUint::from_u64(3))
        );
    }

    #[test]
    fn mul_small_known_values() {
        assert_eq!(
            BigUint::from_u64(u64::MAX).mul_ref(&BigUint::from_u64(u64::MAX)),
            n("fffffffffffffffe0000000000000001")
        );
        assert!(BigUint::zero().mul_ref(&BigUint::from_u64(9)).is_zero());
    }

    #[test]
    fn mul_u64_matches_mul_ref() {
        let a = n("123456789abcdef0fedcba9876543210");
        assert_eq!(a.mul_u64(0xdead), a.mul_ref(&BigUint::from_u64(0xdead)));
    }

    #[test]
    fn shifts_roundtrip() {
        let a = n("deadbeefcafebabe1234");
        for bits in [0usize, 1, 13, 64, 65, 127, 200] {
            assert_eq!(a.shl_bits(bits).shr_bits(bits), a, "bits={bits}");
        }
    }

    #[test]
    fn shr_past_end_is_zero() {
        assert!(n("ff").shr_bits(9).is_zero());
    }

    #[test]
    fn karatsuba_matches_schoolbook_on_large_inputs() {
        // Operands above the threshold so the recursion actually runs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..3 {
            let a = BigUint::random_bits(&mut rng, 64 * (2 * KARATSUBA_THRESHOLD + 10));
            let b = BigUint::random_bits(&mut rng, 64 * (2 * KARATSUBA_THRESHOLD + 3));
            let kara = karatsuba(&a.limbs, &b.limbs);
            let school = BigUint::from_limbs(schoolbook(&a.limbs, &b.limbs));
            assert_eq!(kara, school);
        }
        // Unbalanced operands exercise the short-split fallback.
        let a = BigUint::random_bits(&mut rng, 64 * (3 * KARATSUBA_THRESHOLD));
        let b = BigUint::random_bits(&mut rng, 64 * 8);
        assert_eq!(a.mul_ref(&b), BigUint::from_limbs(schoolbook(&a.limbs, &b.limbs)));
    }

    fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u64>(), 0..max_limbs).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_biguint(8), b in arb_biguint(8)) {
            prop_assert_eq!(a.add_ref(&b), b.add_ref(&a));
        }

        #[test]
        fn prop_add_associative(a in arb_biguint(6), b in arb_biguint(6), c in arb_biguint(6)) {
            prop_assert_eq!(a.add_ref(&b).add_ref(&c), a.add_ref(&b.add_ref(&c)));
        }

        #[test]
        fn prop_add_sub_inverse(a in arb_biguint(8), b in arb_biguint(8)) {
            prop_assert_eq!(a.add_ref(&b).sub_ref(&b), a);
        }

        #[test]
        fn prop_mul_commutative(a in arb_biguint(6), b in arb_biguint(6)) {
            prop_assert_eq!(a.mul_ref(&b), b.mul_ref(&a));
        }

        #[test]
        fn prop_mul_distributes_over_add(a in arb_biguint(5), b in arb_biguint(5), c in arb_biguint(5)) {
            prop_assert_eq!(
                a.mul_ref(&b.add_ref(&c)),
                a.mul_ref(&b).add_ref(&a.mul_ref(&c))
            );
        }

        #[test]
        fn prop_mul_identity(a in arb_biguint(8)) {
            prop_assert_eq!(a.mul_ref(&BigUint::one()), a.clone());
            prop_assert!(a.mul_ref(&BigUint::zero()).is_zero());
        }

        #[test]
        fn prop_shl_is_mul_by_power_of_two(a in arb_biguint(5), s in 0usize..150) {
            let mut p2 = BigUint::one();
            p2 = p2.shl_bits(s);
            prop_assert_eq!(a.shl_bits(s), a.mul_ref(&p2));
        }
    }
}
