//! Conversions between [`BigUint`] and primitive / byte / hex forms, plus
//! uniform random generation.

use crate::BigUint;
use rand::Rng;

impl BigUint {
    /// Build from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Build from a `u32`.
    pub fn from_u32(v: u32) -> Self {
        Self::from_u64(v as u64)
    }

    /// Lossy conversion to `u64` (low 64 bits).
    pub fn to_u64_lossy(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Exact conversion to `u64`, `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Parse big-endian bytes (as found in DER INTEGER contents).
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Serialize to minimal big-endian bytes (empty vec for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serialize to big-endian bytes left-padded with zeros to exactly
    /// `len` bytes. Panics if the value needs more than `len` bytes —
    /// callers size fixed-width fields (RSA block size) from the modulus.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(raw.len() <= len, "value too large for {len}-byte field");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parse a (lowercase or uppercase) hex string without prefix.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut i = 0;
        // Odd-length strings have an implicit leading zero nibble.
        if chars.len() % 2 == 1 {
            bytes.push(hex_val(chars[0])?);
            i = 1;
        }
        while i < chars.len() {
            bytes.push(hex_val(chars[i])? << 4 | hex_val(chars[i + 1])?);
            i += 2;
        }
        Some(BigUint::from_be_bytes(&bytes))
    }

    /// Minimal lowercase hex rendering (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bytes = self.to_be_bytes();
        let mut s = String::with_capacity(bytes.len() * 2);
        for (i, b) in bytes.iter().enumerate() {
            if i == 0 {
                // No leading zero nibble.
                if b >> 4 != 0 {
                    s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
                }
                s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
            } else {
                s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
                s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
            }
        }
        s
    }

    /// Uniform random integer with exactly `bits` significant bits
    /// (top bit forced to one). `bits` must be >= 1.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 1);
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
        let last = limbs - 1;
        v[last] &= mask;
        v[last] |= 1u64 << (top_bits - 1);
        BigUint::from_limbs(v)
    }

    /// Uniform random integer in `[0, bound)` by rejection sampling.
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> Self {
        assert!(!bound.is_zero(), "random_below: zero bound");
        let bits = bound.bits();
        let limbs = bits.div_ceil(64);
        let top_bits = bits - (limbs - 1) * 64;
        let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
        loop {
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            v[limbs - 1] &= mask;
            let candidate = BigUint::from_limbs(v);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn be_bytes_roundtrip() {
        let n = BigUint::from_hex("0123456789abcdef0123456789abcdef01").unwrap();
        let bytes = n.to_be_bytes();
        assert_eq!(BigUint::from_be_bytes(&bytes), n);
    }

    #[test]
    fn be_bytes_ignores_leading_zeros() {
        let a = BigUint::from_be_bytes(&[0, 0, 1, 2]);
        let b = BigUint::from_be_bytes(&[1, 2]);
        assert_eq!(a, b);
        assert_eq!(a.to_be_bytes(), vec![1, 2]);
    }

    #[test]
    fn padded_bytes() {
        let n = BigUint::from_u64(0x0102);
        assert_eq!(n.to_be_bytes_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn padded_bytes_too_small_panics() {
        BigUint::from_u64(0x010203).to_be_bytes_padded(2);
    }

    #[test]
    fn hex_roundtrip_and_odd_length() {
        let n = BigUint::from_hex("f00d").unwrap();
        assert_eq!(n.to_u64(), Some(0xf00d));
        assert_eq!(n.to_hex(), "f00d");
        let odd = BigUint::from_hex("abc").unwrap();
        assert_eq!(odd.to_u64(), Some(0xabc));
        assert_eq!(odd.to_hex(), "abc");
    }

    #[test]
    fn hex_rejects_garbage() {
        assert!(BigUint::from_hex("xyz").is_none());
        assert!(BigUint::from_hex("").is_none());
    }

    #[test]
    fn random_bits_has_exact_bit_length() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for bits in [1usize, 2, 63, 64, 65, 127, 128, 511] {
            let n = BigUint::random_bits(&mut rng, bits);
            assert_eq!(n.bits(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_stays_below() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            assert!(BigUint::random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn u64_roundtrip() {
        assert_eq!(BigUint::from_u64(0).to_u64(), Some(0));
        assert_eq!(BigUint::from_u64(u64::MAX).to_u64(), Some(u64::MAX));
        let big = BigUint::from_hex("10000000000000000").unwrap();
        assert_eq!(big.to_u64(), None);
        assert_eq!(big.to_u64_lossy(), 0);
    }
}
