//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This crate is the numeric substrate for the MyProxy PKI stack
//! (`mp-crypto`, `mp-x509`). It implements everything RSA needs and
//! nothing more:
//!
//! * schoolbook and Karatsuba multiplication,
//! * Knuth Algorithm-D division,
//! * Montgomery modular exponentiation (with a plain square-and-multiply
//!   fallback for even moduli),
//! * extended GCD / modular inverse,
//! * Miller-Rabin primality testing and random prime generation.
//!
//! The representation is a little-endian `Vec<u64>` of limbs, always
//! *normalized* (no most-significant zero limbs), so `limbs.is_empty()`
//! iff the value is zero.
//!
//! Nothing here is constant-time; see the security notes in the workspace
//! DESIGN.md (the paper's threat model is credential theft, not local
//! side channels).

mod arith;
mod convert;
mod div;
mod modular;
mod montgomery;
mod prime;

pub use montgomery::Montgomery;
pub use prime::{gen_prime, is_probably_prime, MILLER_RABIN_ROUNDS};

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Little-endian limbs, normalized. Construct with [`BigUint::from_u64`],
/// [`BigUint::from_be_bytes`], [`BigUint::from_hex`], or the arithmetic
/// operators.
///
/// ```
/// use mp_bignum::BigUint;
/// let p = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap();
/// let a = BigUint::from_u64(3);
/// // Modular exponentiation is the RSA workhorse:
/// let r = a.mod_pow(&BigUint::from_u64(100), &p);
/// assert_eq!(r, {
///     let mut acc = BigUint::one();
///     for _ in 0..100 { acc = acc.mul_ref(&a).rem_ref(&p); }
///     acc
/// });
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    #[inline]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    #[inline]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True iff the value is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Set bit `i` to one, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << off;
    }

    /// Strip most-significant zero limbs to restore the representation
    /// invariant.
    #[inline]
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Internal constructor that normalizes.
    #[inline]
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Borrow the little-endian limb slice.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn bits_counts_partial_top_limb() {
        let n = BigUint::from_u64(0b1011);
        assert_eq!(n.bits(), 4);
        let big = BigUint::from_limbs(vec![0, 1]);
        assert_eq!(big.bits(), 65);
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut n = BigUint::zero();
        n.set_bit(130);
        assert!(n.bit(130));
        assert!(!n.bit(129));
        assert_eq!(n.bits(), 131);
    }

    #[test]
    fn ordering_by_length_then_lexicographic() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_limbs(vec![0, 1]); // 2^64
        assert!(a < b);
        let c = BigUint::from_limbs(vec![1, 1]);
        assert!(b < c);
        assert_eq!(b.cmp(&b.clone()), Ordering::Equal);
    }

    #[test]
    fn normalize_strips_leading_zero_limbs() {
        let n = BigUint::from_limbs(vec![7, 0, 0]);
        assert_eq!(n.limbs(), &[7]);
        let z = BigUint::from_limbs(vec![0, 0]);
        assert!(z.is_zero());
    }
}
