//! Montgomery modular multiplication and exponentiation.
//!
//! Used for every RSA private/public operation; this is the hot path of
//! the whole repository, so it works on raw limb vectors with a CIOS
//! (coarsely integrated operand scanning) reduction and a 4-bit window
//! exponentiation.

use crate::BigUint;

/// Precomputed context for arithmetic modulo a fixed odd modulus.
pub struct Montgomery {
    /// The (odd) modulus n.
    n: BigUint,
    /// Limb count k; R = 2^(64k).
    k: usize,
    /// -n^{-1} mod 2^64.
    n0_inv: u64,
    /// R^2 mod n, used to convert into the Montgomery domain.
    r2: BigUint,
}

impl Montgomery {
    /// Build a context. Panics if `n` is even or < 3.
    pub fn new(n: BigUint) -> Self {
        assert!(n.is_odd(), "Montgomery requires an odd modulus");
        assert!(n > BigUint::one(), "modulus too small");
        let k = n.limbs.len();
        let n0_inv = inv64(n.limbs[0]).wrapping_neg();
        // R^2 mod n = 2^(128k) mod n
        let r2 = BigUint::one().shl_bits(128 * k).rem_ref(&n);
        Montgomery { n, k, n0_inv, r2 }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Montgomery product: returns a*b*R^{-1} mod n, on padded limb slices.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k;
        let n = &self.n.limbs;
        // t has k+2 limbs: accumulates a*b plus reduction additions.
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            // t += a[i] * b
            let ai = a[i];
            let mut carry = 0u128;
            for j in 0..k {
                let acc = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = acc as u64;
                carry = acc >> 64;
            }
            let acc = t[k] as u128 + carry;
            t[k] = acc as u64;
            t[k + 1] = t[k + 1].wrapping_add((acc >> 64) as u64);

            // m = t[0] * n0_inv mod 2^64 ; t += m * n ; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let acc = t[0] as u128 + m as u128 * n[0] as u128;
            let mut carry = acc >> 64;
            for j in 1..k {
                let acc = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = acc as u64;
                carry = acc >> 64;
            }
            let acc = t[k] as u128 + carry;
            t[k - 1] = acc as u64;
            let acc2 = t[k + 1] as u128 + (acc >> 64);
            t[k] = acc2 as u64;
            t[k + 1] = (acc2 >> 64) as u64;
        }
        t.truncate(k + 1);
        // Conditional final subtraction to bring t below n.
        let mut result = BigUint::from_limbs(t);
        if result >= self.n {
            result = result.sub_ref(&self.n);
        }
        let mut limbs = result.limbs;
        limbs.resize(k, 0);
        limbs
    }

    /// Convert into the Montgomery domain: aR mod n.
    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let reduced = a.rem_ref(&self.n);
        let mut a_limbs = reduced.limbs;
        a_limbs.resize(self.k, 0);
        let mut r2 = self.r2.limbs.clone();
        r2.resize(self.k, 0);
        self.mont_mul(&a_limbs, &r2)
    }

    /// Convert out of the Montgomery domain.
    fn from_mont(&self, a: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.k];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// Modular multiplication `a*b mod n` through the Montgomery domain.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod n` with a fixed 4-bit window.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem_ref(&self.n);
        }
        let base_m = self.to_mont(base);
        // Precompute base^0..base^15 in the Montgomery domain.
        let one_m = self.to_mont(&BigUint::one());
        let mut table = Vec::with_capacity(16);
        table.push(one_m.clone());
        table.push(base_m.clone());
        for i in 2..16 {
            let next = self.mont_mul(&table[i - 1], &base_m);
            table.push(next);
        }

        let bits = exp.bits();
        // Round up to a multiple of 4 and scan windows MSB-first.
        let windows = bits.div_ceil(4);
        let mut acc = one_m;
        for w in (0..windows).rev() {
            for _ in 0..4 {
                acc = self.mont_mul(&acc, &acc);
            }
            let mut nibble = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + (3 - b);
                nibble = (nibble << 1) | exp.bit(bit_idx) as usize;
            }
            if nibble != 0 {
                acc = self.mont_mul(&acc, &table[nibble]);
            }
        }
        self.from_mont(&acc)
    }
}

/// Inverse of an odd `x` modulo 2^64 by Newton iteration.
fn inv64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn inv64_is_inverse() {
        for x in [1u64, 3, 5, 0xdeadbeefdeadbeef | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv64(x)), 1);
        }
    }

    #[test]
    #[should_panic]
    fn even_modulus_rejected() {
        Montgomery::new(BigUint::from_u64(100));
    }

    #[test]
    fn mul_matches_naive() {
        let n = BigUint::from_u64(1_000_003);
        let mont = Montgomery::new(n.clone());
        let a = BigUint::from_u64(999_999);
        let b = BigUint::from_u64(123_456);
        assert_eq!(mont.mul(&a, &b), a.mul_ref(&b).rem_ref(&n));
    }

    #[test]
    fn pow_matches_fallback_small() {
        let n = BigUint::from_u64(104_729); // prime
        let mont = Montgomery::new(n.clone());
        let base = BigUint::from_u64(2);
        for e in [0u64, 1, 2, 15, 16, 17, 1000, 104_728] {
            let exp = BigUint::from_u64(e);
            let expect = {
                let mut acc = BigUint::one();
                for i in (0..exp.bits()).rev() {
                    acc = acc.mul_ref(&acc).rem_ref(&n);
                    if exp.bit(i) {
                        acc = acc.mul_ref(&base).rem_ref(&n);
                    }
                }
                acc
            };
            assert_eq!(mont.pow(&base, &exp), expect, "e={e}");
        }
    }

    #[test]
    fn pow_large_random_consistency() {
        // Verify (a^e1)^e2 == a^(e1*e2) mod n on a multi-limb modulus.
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut n = BigUint::random_bits(&mut rng, 512);
        if n.is_even() {
            n = n.add_ref(&BigUint::one());
        }
        let mont = Montgomery::new(n.clone());
        let a = BigUint::random_bits(&mut rng, 500);
        let e1 = BigUint::from_u64(65537);
        let e2 = BigUint::from_u64(101);
        let lhs = mont.pow(&mont.pow(&a, &e1), &e2);
        let rhs = mont.pow(&a, &e1.mul_ref(&e2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pow_reduces_oversized_base() {
        let n = BigUint::from_u64(97);
        let mont = Montgomery::new(n.clone());
        let big_base = BigUint::from_u64(97 * 5 + 3);
        assert_eq!(
            mont.pow(&big_base, &BigUint::from_u64(10)),
            BigUint::from_u64(3).mod_pow(&BigUint::from_u64(10), &n)
        );
    }
}
