//! Division: single-limb fast path and Knuth Algorithm D for the general
//! case, plus the `%` / `/` operator impls.

use crate::BigUint;
use std::ops::{Div, Rem};

impl BigUint {
    /// Quotient and remainder. Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        knuth_d(self, divisor)
    }

    /// Quotient and remainder by a single limb. Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "BigUint division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// `self mod m`.
    pub fn rem_ref(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `self div m`.
    pub fn div_ref(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).0
    }
}

/// Knuth TAOCP vol. 2, Algorithm 4.3.1 D. `u >= v`, `v` has >= 2 limbs.
fn knuth_d(u: &BigUint, v: &BigUint) -> (BigUint, BigUint) {
    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = v.limbs.last().unwrap().leading_zeros() as usize;
    let vn = v.shl_bits(shift);
    let mut un = u.shl_bits(shift).limbs;
    let n = vn.limbs.len();
    let m = un.len() - n;
    un.push(0); // u has m+n+1 digits in the algorithm.

    let vtop = vn.limbs[n - 1];
    let vsecond = vn.limbs[n - 2];
    let mut q = vec![0u64; m + 1];

    // D2-D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two dividend limbs.
        let numerator = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = numerator / vtop as u128;
        let mut rhat = numerator % vtop as u128;
        // Correct qhat down at most twice.
        while qhat >> 64 != 0
            || qhat * vsecond as u128 > ((rhat << 64) | un[j + n - 2] as u128)
        {
            qhat -= 1;
            rhat += vtop as u128;
            if rhat >> 64 != 0 {
                break;
            }
        }
        let mut qhat = qhat as u64;

        // D4: multiply and subtract un[j..j+n+1] -= qhat * vn.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat as u128 * vn.limbs[i] as u128 + carry;
            carry = p >> 64;
            let sub = un[j + i] as i128 - (p as u64) as i128 + borrow;
            un[j + i] = sub as u64;
            borrow = sub >> 64; // arithmetic shift: 0 or -1
        }
        let sub = un[j + n] as i128 - carry as i128 + borrow;
        un[j + n] = sub as u64;

        // D5/D6: if we subtracted too much (probability ~2/2^64), add back.
        if sub < 0 {
            qhat -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let s = un[j + i] as u128 + vn.limbs[i] as u128 + carry;
                un[j + i] = s as u64;
                carry = s >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(carry as u64);
        }
        q[j] = qhat;
    }

    // D8: denormalize the remainder.
    let r = BigUint::from_limbs(un[..n].to_vec()).shr_bits(shift);
    (BigUint::from_limbs(q), r)
}

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_ref(rhs)
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.rem_ref(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn n(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn small_division() {
        let (q, r) = BigUint::from_u64(17).div_rem(&BigUint::from_u64(5));
        assert_eq!(q, BigUint::from_u64(3));
        assert_eq!(r, BigUint::from_u64(2));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = BigUint::from_u64(3).div_rem(&BigUint::from_u64(10));
        assert!(q.is_zero());
        assert_eq!(r, BigUint::from_u64(3));
    }

    #[test]
    #[should_panic]
    fn divide_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn single_limb_divisor() {
        let a = n("123456789abcdef0123456789abcdef0");
        let (q, r) = a.div_rem_u64(0x12345);
        assert_eq!(q.mul_u64(0x12345).add_ref(&BigUint::from_u64(r)), a);
    }

    #[test]
    fn multi_limb_known_value() {
        // 2^192 / (2^64 + 1) — exercises the qhat-correction path shape.
        let a = BigUint::one().shl_bits(192);
        let b = BigUint::one().shl_bits(64).add_ref(&BigUint::one());
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul_ref(&b).add_ref(&r), a);
        assert!(r < b);
    }

    #[test]
    fn randomized_reconstruction() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        for _ in 0..200 {
            let a_bits = 1 + rng.gen::<usize>() % 700;
            let b_bits = 1 + rng.gen::<usize>() % 400;
            let a = BigUint::random_bits(&mut rng, a_bits);
            let b = BigUint::random_bits(&mut rng, b_bits);
            let (q, r) = a.div_rem(&b);
            assert_eq!(q.mul_ref(&b).add_ref(&r), a);
            assert!(r < b);
        }
    }

    fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u64>(), 0..max_limbs).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #[test]
        fn prop_div_rem_reconstructs(a in arb_biguint(10), b in arb_biguint(6)) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(q.mul_ref(&b).add_ref(&r), a);
            prop_assert!(r < b);
        }

        #[test]
        fn prop_self_division(a in arb_biguint(8)) {
            prop_assume!(!a.is_zero());
            let (q, r) = a.div_rem(&a);
            prop_assert!(q.is_one());
            prop_assert!(r.is_zero());
        }
    }
}
