//! Primality testing (Miller-Rabin) and random prime generation for RSA
//! key material.

use crate::BigUint;
use rand::Rng;

/// Miller-Rabin rounds used by [`is_probably_prime`] / [`gen_prime`].
/// 2^-80 error bound at 40 rounds; far below any realistic failure mode
/// of the surrounding system.
pub const MILLER_RABIN_ROUNDS: usize = 40;

/// Small primes used to cheaply sieve candidates before Miller-Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211,
];

/// Miller-Rabin probabilistic primality test with `rounds` random bases.
pub fn is_probably_prime<R: Rng + ?Sized>(rng: &mut R, n: &BigUint, rounds: usize) -> bool {
    if n < &BigUint::from_u64(2) {
        return false;
    }
    if let Some(small) = n.to_u64() {
        if small == 2 {
            return true;
        }
        if small % 2 == 0 {
            return false;
        }
        if SMALL_PRIMES.contains(&small) {
            return true;
        }
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let (_, r) = n.div_rem_u64(p);
        if r == 0 {
            return n.to_u64() == Some(p);
        }
    }

    // n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.sub_ref(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr_bits(1);
        s += 1;
    }

    let two = BigUint::from_u64(2);
    let n_minus_3 = n.sub_ref(&BigUint::from_u64(3));
    'witness: for _ in 0..rounds {
        // a in [2, n-2]
        let a = BigUint::random_below(rng, &n_minus_3).add_ref(&two);
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mod_pow(&two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random prime with exactly `bits` bits (top two bits set so
/// that products of two such primes have exactly `2*bits` bits, as RSA
/// key generation requires). `bits` must be >= 8.
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 8, "gen_prime: need at least 8 bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        // Force odd and force the second-highest bit for full-width products.
        candidate.set_bit(0);
        candidate.set_bit(bits - 2);
        if is_probably_prime(rng, &candidate, MILLER_RABIN_ROUNDS) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 101, 65537, 104_729] {
            assert!(
                is_probably_prime(&mut r, &BigUint::from_u64(p), 20),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 21, 91, 561, 6601, 65536, 104_730] {
            assert!(
                !is_probably_prime(&mut r, &BigUint::from_u64(c), 20),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller-Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841] {
            assert!(!is_probably_prime(&mut r, &BigUint::from_u64(c), 20));
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut r = rng();
        let m127 = BigUint::one().shl_bits(127).sub_ref(&BigUint::one());
        assert!(is_probably_prime(&mut r, &m127, 20));
        // 2^128 - 1 = 3 * 5 * 17 * ... is not prime.
        let m128 = BigUint::one().shl_bits(128).sub_ref(&BigUint::one());
        assert!(!is_probably_prime(&mut r, &m128, 20));
    }

    #[test]
    fn gen_prime_has_requested_width_and_is_prime() {
        let mut r = rng();
        for bits in [64usize, 96, 128] {
            let p = gen_prime(&mut r, bits);
            assert_eq!(p.bits(), bits);
            assert!(p.is_odd());
            assert!(p.bit(bits - 2), "second-highest bit forced");
            assert!(is_probably_prime(&mut r, &p, 20));
        }
    }

    #[test]
    fn gen_prime_products_have_full_width() {
        let mut r = rng();
        let p = gen_prime(&mut r, 96);
        let q = gen_prime(&mut r, 96);
        assert_eq!(p.mul_ref(&q).bits(), 192);
    }
}
