//! Modular arithmetic: gcd, extended gcd, modular inverse, and modular
//! exponentiation (Montgomery-accelerated for odd moduli).

use crate::{BigUint, Montgomery};

impl BigUint {
    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Factor out common powers of two.
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr_bits(1);
            b = b.shr_bits(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr_bits(1);
        }
        loop {
            while b.is_even() {
                b = b.shr_bits(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub_ref(&a);
            if b.is_zero() {
                return a.shl_bits(shift);
            }
        }
    }

    /// Modular inverse of `self` mod `m`, or `None` if `gcd(self, m) != 1`.
    ///
    /// Uses the extended Euclidean algorithm with sign tracking via
    /// (value, negative?) pairs, since [`BigUint`] is unsigned.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self.rem_ref(m);
        if a.is_zero() {
            return None;
        }
        // Invariants: old_r = old_s * a (mod m), r = s * a (mod m).
        let mut old_r = a;
        let mut r = m.clone();
        let mut old_s = (BigUint::one(), false);
        let mut s = (BigUint::zero(), false);

        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s
            let qs = q.mul_ref(&s.0);
            let new_s = signed_sub(&old_s, &(qs, s.1));
            old_s = std::mem::replace(&mut s, new_s);
        }

        if !old_r.is_one() {
            return None;
        }
        let (val, neg) = old_s;
        let val = val.rem_ref(m);
        Some(if neg && !val.is_zero() { m.sub_ref(&val) } else { val })
    }

    /// `self^exp mod m`. Panics if `m` is zero.
    ///
    /// Odd moduli (the RSA case) go through Montgomery multiplication;
    /// even moduli fall back to classic square-and-multiply with full
    /// divisions.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "mod_pow: zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        if m.is_odd() {
            let mont = Montgomery::new(m.clone());
            return mont.pow(self, exp);
        }
        // Fallback: left-to-right square and multiply.
        let base = self.rem_ref(m);
        let mut acc = BigUint::one();
        for i in (0..exp.bits()).rev() {
            acc = acc.mul_ref(&acc).rem_ref(m);
            if exp.bit(i) {
                acc = acc.mul_ref(&base).rem_ref(m);
            }
        }
        acc
    }

    /// Square-and-multiply modular exponentiation with full divisions,
    /// bypassing Montgomery — exposed only for the ablation bench.
    #[doc(hidden)]
    pub fn mod_pow_naive_for_bench(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero());
        if m.is_one() {
            return BigUint::zero();
        }
        let base = self.rem_ref(m);
        let mut acc = BigUint::one();
        for i in (0..exp.bits()).rev() {
            acc = acc.mul_ref(&acc).rem_ref(m);
            if exp.bit(i) {
                acc = acc.mul_ref(&base).rem_ref(m);
            }
        }
        acc
    }

    /// `(self + other) mod m` with both inputs already reduced.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add_ref(other);
        if &s >= m {
            s.sub_ref(m)
        } else {
            s
        }
    }

    /// `(self - other) mod m` with both inputs already reduced.
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        if self >= other {
            self.sub_ref(other)
        } else {
            self.add_ref(m).sub_ref(other)
        }
    }
}

/// `(a - b)` on sign-tracked magnitudes.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with same sign: magnitude subtraction.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub_ref(&b.0), false)
            } else {
                (b.0.sub_ref(&a.0), true)
            }
        }
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub_ref(&a.0), false)
            } else {
                (a.0.sub_ref(&b.0), true)
            }
        }
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) => (a.0.add_ref(&b.0), false),
        (true, false) => (a.0.add_ref(&b.0), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn gcd_known_values() {
        let g = BigUint::from_u64(48).gcd(&BigUint::from_u64(18));
        assert_eq!(g, BigUint::from_u64(6));
        assert_eq!(BigUint::zero().gcd(&BigUint::from_u64(5)), BigUint::from_u64(5));
        assert_eq!(BigUint::from_u64(5).gcd(&BigUint::zero()), BigUint::from_u64(5));
    }

    #[test]
    fn mod_inverse_small() {
        // 3 * 4 = 12 = 1 mod 11
        let inv = BigUint::from_u64(3).mod_inverse(&BigUint::from_u64(11)).unwrap();
        assert_eq!(inv, BigUint::from_u64(4));
    }

    #[test]
    fn mod_inverse_rejects_non_coprime() {
        assert!(BigUint::from_u64(6).mod_inverse(&BigUint::from_u64(9)).is_none());
        assert!(BigUint::zero().mod_inverse(&BigUint::from_u64(7)).is_none());
        assert!(BigUint::from_u64(3).mod_inverse(&BigUint::one()).is_none());
    }

    #[test]
    fn mod_pow_small_known() {
        // 2^10 mod 1000 = 24
        let r = BigUint::from_u64(2).mod_pow(&BigUint::from_u64(10), &BigUint::from_u64(1000));
        assert_eq!(r, BigUint::from_u64(24));
        // Fermat: a^(p-1) = 1 mod p
        let p = BigUint::from_u64(65537);
        let r = BigUint::from_u64(12345).mod_pow(&BigUint::from_u64(65536), &p);
        assert!(r.is_one());
    }

    #[test]
    fn mod_pow_even_modulus_fallback() {
        // 3^5 mod 16 = 243 mod 16 = 3
        let r = BigUint::from_u64(3).mod_pow(&BigUint::from_u64(5), &BigUint::from_u64(16));
        assert_eq!(r, BigUint::from_u64(3));
    }

    #[test]
    fn mod_pow_edge_cases() {
        let m = BigUint::from_u64(77);
        assert!(BigUint::from_u64(5).mod_pow(&BigUint::zero(), &m).is_one());
        assert!(BigUint::from_u64(5).mod_pow(&BigUint::one(), &BigUint::one()).is_zero());
    }

    #[test]
    fn mod_add_sub_wraparound() {
        let m = BigUint::from_u64(10);
        assert_eq!(
            BigUint::from_u64(7).mod_add(&BigUint::from_u64(8), &m),
            BigUint::from_u64(5)
        );
        assert_eq!(
            BigUint::from_u64(3).mod_sub(&BigUint::from_u64(8), &m),
            BigUint::from_u64(5)
        );
    }

    #[test]
    fn mod_inverse_large_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let m = crate::gen_prime(&mut rng, 256);
        for _ in 0..10 {
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() {
                continue;
            }
            let inv = a.mod_inverse(&m).expect("prime modulus => invertible");
            assert!(a.mul_ref(&inv).rem_ref(&m).is_one());
        }
    }

    fn arb_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u64>(), 0..max_limbs).prop_map(BigUint::from_limbs)
    }

    proptest! {
        #[test]
        fn prop_gcd_divides_both(a in arb_biguint(4), b in arb_biguint(4)) {
            prop_assume!(!a.is_zero() && !b.is_zero());
            let g = a.gcd(&b);
            prop_assert!(a.rem_ref(&g).is_zero());
            prop_assert!(b.rem_ref(&g).is_zero());
        }

        #[test]
        fn prop_gcd_commutative(a in arb_biguint(4), b in arb_biguint(4)) {
            prop_assert_eq!(a.gcd(&b), b.gcd(&a));
        }

        #[test]
        fn prop_mod_inverse_correct(a in arb_biguint(3), m in arb_biguint(3)) {
            prop_assume!(m > BigUint::one());
            if let Some(inv) = a.mod_inverse(&m) {
                prop_assert!(a.mul_ref(&inv).rem_ref(&m).is_one());
                prop_assert!(inv < m);
            }
        }

        #[test]
        fn prop_mod_pow_matches_naive(a in 0u64..1000, e in 0u64..64, m in 2u64..1000) {
            let big = BigUint::from_u64(a)
                .mod_pow(&BigUint::from_u64(e), &BigUint::from_u64(m));
            // Naive via u128 repeated multiplication.
            let mut acc: u128 = 1;
            for _ in 0..e {
                acc = acc * a as u128 % m as u128;
            }
            prop_assert_eq!(big.to_u64(), Some(acc as u64));
        }

        #[test]
        fn prop_mod_pow_product_rule(a in 1u64..500, b in 1u64..500, m in 3u64..1001) {
            // (a*b)^e mod m == a^e * b^e mod m, e = 7
            prop_assume!(m % 2 == 1);
            let e = BigUint::from_u64(7);
            let m = BigUint::from_u64(m);
            let lhs = BigUint::from_u64(a).mul_ref(&BigUint::from_u64(b)).mod_pow(&e, &m);
            let rhs = BigUint::from_u64(a)
                .mod_pow(&e, &m)
                .mul_ref(&BigUint::from_u64(b).mod_pow(&e, &m))
                .rem_ref(&m);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
