//! Number-theoretic integration tests: the properties RSA correctness
//! rests on, checked against freshly generated primes.

use mp_bignum::{gen_prime, is_probably_prime, BigUint, Montgomery};
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0xD1CE)
}

#[test]
fn fermat_little_theorem_on_generated_primes() {
    let mut r = rng();
    for bits in [64usize, 128, 256] {
        let p = gen_prime(&mut r, bits);
        let p1 = p.sub_ref(&BigUint::one());
        for base in [2u64, 3, 65_537] {
            let a = BigUint::from_u64(base);
            assert!(
                a.mod_pow(&p1, &p).is_one(),
                "a^(p-1) != 1 mod p for {bits}-bit prime, base {base}"
            );
        }
    }
}

#[test]
fn euler_theorem_for_rsa_modulus() {
    // a^phi(n) = 1 mod n for n = p*q, gcd(a, n) = 1 — the identity RSA
    // decryption correctness is built on.
    let mut r = rng();
    let p = gen_prime(&mut r, 96);
    let q = gen_prime(&mut r, 96);
    let n = p.mul_ref(&q);
    let phi = p.sub_ref(&BigUint::one()).mul_ref(&q.sub_ref(&BigUint::one()));
    let a = BigUint::from_u64(0xABCDEF);
    assert!(a.gcd(&n).is_one());
    assert!(a.mod_pow(&phi, &n).is_one());

    // And the full RSA identity: (a^e)^d = a mod n.
    let e = BigUint::from_u64(65_537);
    let d = e.mod_inverse(&phi).unwrap();
    let c = a.mod_pow(&e, &n);
    assert_eq!(c.mod_pow(&d, &n), a);
}

#[test]
fn crt_reconstruction_matches_direct() {
    let mut r = rng();
    let p = gen_prime(&mut r, 96);
    let q = gen_prime(&mut r, 96);
    let n = p.mul_ref(&q);
    let phi = p.sub_ref(&BigUint::one()).mul_ref(&q.sub_ref(&BigUint::one()));
    let e = BigUint::from_u64(65_537);
    let d = e.mod_inverse(&phi).unwrap();
    let dp = d.rem_ref(&p.sub_ref(&BigUint::one()));
    let dq = d.rem_ref(&q.sub_ref(&BigUint::one()));
    let qinv = q.mod_inverse(&p).unwrap();

    let c = BigUint::from_u64(0x1234_5678_9ABC);
    // CRT path.
    let m1 = c.mod_pow(&dp, &p);
    let m2 = c.mod_pow(&dq, &q);
    let h = qinv.mul_ref(&m1.mod_sub(&m2.rem_ref(&p), &p)).rem_ref(&p);
    let crt = m2.add_ref(&h.mul_ref(&q));
    // Direct path.
    let direct = c.mod_pow(&d, &n);
    assert_eq!(crt, direct);
}

#[test]
fn montgomery_agrees_with_naive_across_sizes() {
    let mut r = rng();
    for bits in [64usize, 192, 320, 512] {
        let mut m = BigUint::random_bits(&mut r, bits);
        if m.is_even() {
            m = m.add_ref(&BigUint::one());
        }
        let base = BigUint::random_bits(&mut r, bits - 1);
        let exp = BigUint::random_bits(&mut r, 64);
        let mont = Montgomery::new(m.clone());
        assert_eq!(
            mont.pow(&base, &exp),
            base.mod_pow_naive_for_bench(&exp, &m),
            "bits={bits}"
        );
    }
}

#[test]
fn generated_primes_are_distinct_and_odd() {
    let mut r = rng();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..6 {
        let p = gen_prime(&mut r, 80);
        assert!(p.is_odd());
        assert!(seen.insert(p.to_hex()), "prime collision (astronomically unlikely)");
    }
}

#[test]
fn wilson_style_small_prime_check() {
    // For small p we can exhaustively confirm Miller-Rabin agrees with
    // trial division.
    let mut r = rng();
    let is_prime_naive = |n: u64| {
        if n < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= n {
            if n.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    };
    for n in 0u64..500 {
        assert_eq!(
            is_probably_prime(&mut r, &BigUint::from_u64(n), 16),
            is_prime_naive(n),
            "disagreement at {n}"
        );
    }
}

#[test]
fn modular_inverse_is_involutive() {
    let mut r = rng();
    let m = gen_prime(&mut r, 128);
    for v in [2u64, 3, 12345, 0xFFFF_FFFF] {
        let a = BigUint::from_u64(v);
        let inv = a.mod_inverse(&m).unwrap();
        let back = inv.mod_inverse(&m).unwrap();
        assert_eq!(back, a.rem_ref(&m));
    }
}

#[test]
fn shift_mul_div_consistency_at_scale() {
    let mut r = rng();
    let a = BigUint::random_bits(&mut r, 1500);
    for s in [1usize, 63, 64, 65, 700] {
        let shifted = a.shl_bits(s);
        let (q, rem) = shifted.div_rem(&BigUint::one().shl_bits(s));
        assert_eq!(q, a, "shift {s}");
        assert!(rem.is_zero());
    }
}
