//! Robustness of the shared service substrate (`mp_gsi::net`).
//!
//! Every accept loop in the stack — the MyProxy repository, the GRAM
//! job manager, mass storage, and the Grid portal (HTTPS-sim and plain
//! HTTP) — runs on the same bounded worker pool. These tests drive each
//! of them through the four behaviors the pool guarantees:
//!
//! 1. transient accept errors (`ECONNABORTED`, `EMFILE`) are retried
//!    with backoff instead of killing the loop;
//! 2. half-open peers are evicted at the handshake deadline, freeing
//!    their slot;
//! 3. connections beyond the cap are refused *in protocol* (BUSY frame
//!    or HTTP 503), not silently dropped;
//! 4. shutdown stops accepting, drains in-flight handlers, and joins
//!    every thread.
//!
//! Plus the `FaultyTransport` scenarios: mid-handshake and
//! mid-delegation disconnects must leave the credential store unchanged,
//! and maximal read fragmentation must not confuse the framing layer.

use myproxy::crypto::HmacDrbg;
use myproxy::gram::{job, storage, GramError};
use myproxy::gsi::net::{self, accept_queue, BoxedConn, FaultyTransport, NetConfig, QueuePusher};
use myproxy::gsi::transport::{BoxedTransport, Connector};
use myproxy::gsi::{duplex, ChannelConfig, GsiError, MemStream};
use myproxy::myproxy::client::{GetParams, InitParams, RetryPolicy};
use myproxy::myproxy::repl::{ReplConfig, Role, Shipper};
use myproxy::myproxy::testutil::replay_divergence;
use myproxy::myproxy::wal::{CrashVfs, WalConfig};
use myproxy::myproxy::{CredStore, MyProxyError, MyProxyServer, ServerPolicy, StoredCredential};
use myproxy::portal::browser::{expect_ok, Browser, BrowserMode};
use myproxy::testkit::GridWorld;
use myproxy::x509::test_util::test_drbg;
use myproxy::x509::Clock;
use std::io::Read;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deliberately tiny pool: one worker, one connection slot, short
/// deadlines, fast backoff — so every limit is reachable in a test.
fn tight_cfg() -> NetConfig {
    NetConfig {
        workers: 1,
        max_connections: 1,
        handshake_deadline: Some(Duration::from_millis(400)),
        idle_deadline: Some(Duration::from_millis(600)),
        shutdown_grace: Duration::from_secs(2),
        poll_interval: Duration::from_millis(1),
        accept_backoff_start: Duration::from_millis(1),
        accept_backoff_max: Duration::from_millis(10),
        sweep_interval: None,
    }
}

/// Dial the pool: push the server end of a fresh duplex pipe into its
/// accept queue and return the client end.
fn dial(push: &QueuePusher<BoxedConn>) -> MemStream {
    let (client, server) = duplex();
    push.push(Box::new(server)).expect("accept queue open");
    client
}

/// Dial with the server end wrapped in a configured [`FaultyTransport`].
fn dial_faulty<F>(push: &QueuePusher<BoxedConn>, arm: F) -> MemStream
where
    F: FnOnce(FaultyTransport<MemStream>) -> FaultyTransport<MemStream>,
{
    let (client, server) = duplex();
    push.push(Box::new(arm(FaultyTransport::new(server)))).expect("accept queue open");
    client
}

/// Spin until `cond` holds (counters are updated by pool threads).
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Inject an `ECONNABORTED` and an `EMFILE` accept failure, then wait
/// until the loop has retried past both.
fn inject_accept_faults(push: &QueuePusher<BoxedConn>, stats: &net::NetStats) {
    push.push_err(std::io::Error::new(
        std::io::ErrorKind::ConnectionAborted,
        "connection aborted before accept",
    ));
    push.push_err(std::io::Error::from_raw_os_error(24)); // EMFILE
    wait_until("accept retries", || stats.accept_retries() >= 2);
}

const PASS: &str = "correct horse battery";

#[test]
fn myproxy_pool_survives_faults_sheds_and_drains() {
    let w = GridWorld::new();
    let (push, handle) = w.myproxy.serve_local(tight_cfg()).unwrap();
    let stats = handle.stats();
    let mut rng = test_drbg("robust myproxy");

    // 1. Transient accept errors must not kill the loop.
    inject_accept_faults(&push, &stats);

    // 2. A half-open client occupies the only slot...
    let _half_open = dial_faulty(&push, |f| f.stall_after_read_frames(0));
    wait_until("half-open admitted", || stats.active() == 1);

    // 3. ...so the next client is refused in protocol, not hung. The
    //    refusal surfaces as the typed transient error, carrying the
    //    server's retry-after hint.
    let refused = w.myproxy_client.init(
        dial(&push),
        &w.alice,
        &InitParams::new("alice", PASS),
        &mut rng,
        w.clock.now(),
    );
    let Err(MyProxyError::Busy { reason, retry_after_ms }) = refused else {
        panic!("expected a typed busy refusal, got {refused:?}");
    };
    assert!(reason.contains("connection limit"), "got: {reason}");
    assert_eq!(retry_after_ms, Some(200), "shed frame must carry the retry hint");
    assert_eq!(stats.shed(), 1);

    // 4. The handshake deadline evicts the half-open peer and frees
    //    the slot; the loop it survived (1) keeps serving.
    wait_until("half-open evicted", || stats.timeouts() >= 1 && stats.active() == 0);
    w.myproxy_client
        .init(dial(&push), &w.alice, &InitParams::new("alice", PASS), &mut rng, w.clock.now())
        .unwrap();
    assert_eq!(w.myproxy.store().len(), 1);

    // 5. Shutdown drains in-flight work and joins every thread.
    let report = handle.shutdown();
    assert!(report.drained, "pool should drain within the grace period");
    assert_eq!(report.workers_joined, 1);
    assert_eq!(report.aborted, 0);
    assert_eq!(w.myproxy.store().len(), 1, "stored credential survives shutdown");
}

#[test]
fn jobmanager_pool_survives_faults_sheds_and_drains() {
    let w = GridWorld::new();
    let cfg = ChannelConfig::new(vec![w.ca_cert.clone()]);
    let (push, acceptor) = accept_queue::<BoxedConn>();
    let handle = net::serve(acceptor, w.jobmanager.service(b"robust jm pool"), tight_cfg()).unwrap();
    let stats = handle.stats();
    let mut rng = test_drbg("robust jm");

    inject_accept_faults(&push, &stats);

    let _half_open = dial_faulty(&push, |f| f.stall_after_read_frames(0));
    wait_until("half-open admitted", || stats.active() == 1);

    let refused = job::client::submit(
        dial(&push),
        &w.alice,
        &cfg,
        "shed-job",
        1,
        false,
        false,
        0,
        &mut rng,
        w.clock.now(),
    );
    let Err(GramError::Gsi(GsiError::Denied(msg))) = refused else {
        panic!("expected a busy refusal, got {refused:?}");
    };
    assert!(msg.contains("server busy"), "got: {msg}");
    assert_eq!(stats.shed(), 1);

    wait_until("half-open evicted", || stats.timeouts() >= 1 && stats.active() == 0);
    job::client::submit(
        dial(&push),
        &w.alice,
        &cfg,
        "ok-job",
        1,
        false,
        false,
        0,
        &mut rng,
        w.clock.now(),
    )
    .unwrap();

    let report = handle.shutdown();
    assert!(report.drained);
    assert_eq!(report.workers_joined, 1);
}

#[test]
fn storage_pool_survives_faults_sheds_and_drains() {
    let w = GridWorld::new();
    let cfg = ChannelConfig::new(vec![w.ca_cert.clone()]);
    let (push, acceptor) = accept_queue::<BoxedConn>();
    let handle = net::serve(acceptor, w.storage.service(b"robust st pool"), tight_cfg()).unwrap();
    let stats = handle.stats();
    let mut rng = test_drbg("robust storage");

    inject_accept_faults(&push, &stats);

    let _half_open = dial_faulty(&push, |f| f.stall_after_read_frames(0));
    wait_until("half-open admitted", || stats.active() == 1);

    let refused = storage::client::store(
        dial(&push),
        &w.alice,
        &cfg,
        "shed.dat",
        b"refused",
        &mut rng,
        w.clock.now(),
    );
    let Err(GramError::Gsi(GsiError::Denied(msg))) = refused else {
        panic!("expected a busy refusal, got {refused:?}");
    };
    assert!(msg.contains("server busy"), "got: {msg}");
    assert_eq!(stats.shed(), 1);
    assert_eq!(w.storage.file_count(), 0, "refused store must not write");

    wait_until("half-open evicted", || stats.timeouts() >= 1 && stats.active() == 0);
    storage::client::store(
        dial(&push),
        &w.alice,
        &cfg,
        "ok.dat",
        b"stored",
        &mut rng,
        w.clock.now(),
    )
    .unwrap();
    assert_eq!(w.storage.file_count(), 1);

    let report = handle.shutdown();
    assert!(report.drained);
    assert_eq!(report.workers_joined, 1);
    assert_eq!(w.storage.file_count(), 1, "stored file survives shutdown");
}

/// A [`Connector`] dialing a pool's accept queue (for the browser).
fn pool_connector(push: &QueuePusher<BoxedConn>) -> Connector {
    let push = push.clone();
    Arc::new(move || {
        let (client, server) = duplex();
        push.push(Box::new(server))?;
        Ok(Box::new(client) as BoxedTransport)
    })
}

#[test]
fn portal_tls_pool_survives_faults_sheds_and_drains() {
    let w = GridWorld::new();
    let (push, acceptor) = accept_queue::<BoxedConn>();
    let handle = net::serve(acceptor, w.portal.tls_service(), tight_cfg()).unwrap();
    let stats = handle.stats();

    inject_accept_faults(&push, &stats);

    let _half_open = dial_faulty(&push, |f| f.stall_after_read_frames(0));
    wait_until("half-open admitted", || stats.active() == 1);

    // Refusal arrives as a distinguishable TLS-level busy error.
    let mut rng = test_drbg("robust portal tls shed");
    let roots = [w.ca_cert.clone()];
    let Err(err) = myproxy::portal::tls::connect(dial(&push), &roots, None, &mut rng, w.clock.now())
    else {
        panic!("handshake against a full pool unexpectedly succeeded");
    };
    assert!(err.to_string().contains("server busy"), "got: {err}");
    assert_eq!(stats.shed(), 1);

    wait_until("half-open evicted", || stats.timeouts() >= 1 && stats.active() == 0);

    // A whole browser round trip over the pool still works.
    let mut browser = Browser::new(
        pool_connector(&push),
        BrowserMode::Tls { roots: vec![w.ca_cert.clone()], expected: None },
        HmacDrbg::new(b"robust tls browser"),
        w.clock.now(),
    );
    let home = expect_ok(browser.get("/").unwrap()).unwrap();
    assert!(home.text().contains("Grid Portal"));

    let report = handle.shutdown();
    assert!(report.drained);
    assert_eq!(report.workers_joined, 1);
}

#[test]
fn portal_plain_pool_survives_faults_sheds_and_drains() {
    let w = GridWorld::new();
    let (push, acceptor) = accept_queue::<BoxedConn>();
    let handle = net::serve(acceptor, w.portal.plain_service(), tight_cfg()).unwrap();
    let stats = handle.stats();

    inject_accept_faults(&push, &stats);

    let _half_open = dial_faulty(&push, |f| f.stall_after_read_frames(0));
    wait_until("half-open admitted", || stats.active() == 1);

    // Refusal arrives as a real HTTP 503, not a dropped socket.
    let mut refused = dial(&push);
    let mut raw = Vec::new();
    refused.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.contains("503"), "expected an HTTP 503, got: {text}");
    assert!(text.contains("server busy"), "got: {text}");
    assert_eq!(stats.shed(), 1);

    wait_until("half-open evicted", || stats.timeouts() >= 1 && stats.active() == 0);

    let mut browser = Browser::new(
        pool_connector(&push),
        BrowserMode::Plain,
        HmacDrbg::new(b"robust plain browser"),
        w.clock.now(),
    );
    let home = expect_ok(browser.get("/").unwrap()).unwrap();
    assert!(home.text().contains("Grid Portal"));

    let report = handle.shutdown();
    assert!(report.drained);
    assert_eq!(report.workers_joined, 1);
}

#[test]
fn mid_handshake_disconnect_is_counted_and_survived() {
    let w = GridWorld::new();
    let (push, handle) = w.myproxy.serve_local(tight_cfg()).unwrap();
    let stats = handle.stats();
    let mut rng = test_drbg("robust handshake eof");

    // The server reads the ClientHello (frame 1), then the peer is gone.
    let conn = dial_faulty(&push, |f| f.eof_after_read_frames(1));
    let res = w.myproxy_client.init(
        conn,
        &w.alice,
        &InitParams::new("alice", PASS),
        &mut rng,
        w.clock.now(),
    );
    assert!(res.is_err(), "client must observe the broken handshake");
    wait_until("channel failure counted", || {
        w.myproxy.stats().channel_failures.get() >= 1
    });
    wait_until("handler error counted", || stats.handler_errors() >= 1);
    assert_eq!(w.myproxy.store().len(), 0);

    // The pool is still alive afterwards.
    w.myproxy_client
        .init(dial(&push), &w.alice, &InitParams::new("alice", PASS), &mut rng, w.clock.now())
        .unwrap();
    drop(push);
    let report = handle.join();
    assert!(report.drained);
}

#[test]
fn mid_delegation_disconnect_leaves_store_unchanged() {
    let w = GridWorld::new();
    let (push, handle) = w.myproxy.serve_local(tight_cfg()).unwrap();
    let stats = handle.stats();
    let mut rng = test_drbg("robust delegation eof");

    // Server-side reads on a PUT: ClientHello, KeyExchange, client
    // Finished, then the request record — the peer vanishes exactly
    // when the delegation frames should follow.
    let conn = dial_faulty(&push, |f| f.eof_after_read_frames(4));
    let res = w.myproxy_client.init(
        conn,
        &w.alice,
        &InitParams::new("alice", PASS),
        &mut rng,
        w.clock.now(),
    );
    assert!(res.is_err(), "client must observe the aborted delegation");
    wait_until("handler error counted", || stats.handler_errors() >= 1);
    assert_eq!(w.myproxy.store().len(), 0, "aborted PUT must not store anything");

    drop(push);
    let report = handle.join();
    assert!(report.drained);
    assert_eq!(w.myproxy.store().len(), 0);
}

#[test]
fn maximal_fragmentation_does_not_break_framing() {
    let w = GridWorld::new();
    let (push, handle) = w.myproxy.serve_local(tight_cfg()).unwrap();
    let mut rng = test_drbg("robust short reads");

    // One byte per server-side read call: the framing layer must
    // reassemble everything.
    let conn = dial_faulty(&push, |f| f.short_reads());
    w.myproxy_client
        .init(conn, &w.alice, &InitParams::new("alice", PASS), &mut rng, w.clock.now())
        .unwrap();
    assert_eq!(w.myproxy.store().len(), 1);

    drop(push);
    handle.join();
}

#[test]
fn periodic_sweep_purges_expired_credentials() {
    let w = GridWorld::new();
    let mut cfg = tight_cfg();
    cfg.sweep_interval = Some(Duration::from_millis(20));
    let (push, handle) = w.myproxy.serve_local(cfg).unwrap();
    let mut rng = test_drbg("robust sweep");

    let mut params = InitParams::new("alice", PASS);
    params.lifetime_secs = 100;
    w.myproxy_client.init(dial(&push), &w.alice, &params, &mut rng, w.clock.now()).unwrap();
    assert_eq!(w.myproxy.store().len(), 1);

    // Expire the credential; the accept thread's sweep collects it
    // without any client traffic.
    w.clock.advance(1_000);
    wait_until("sweep purge", || w.myproxy.store().len() == 0);
    assert!(w.myproxy.stats().purged.get() >= 1);

    drop(push);
    handle.shutdown();
}

#[test]
fn info_path_purges_expired_credentials() {
    let w = GridWorld::new();
    let mut rng = test_drbg("robust info purge");

    let mut params = InitParams::new("alice", PASS);
    params.lifetime_secs = 100;
    w.myproxy_client
        .init(w.myproxy.connect_local(), &w.alice, &params, &mut rng, w.clock.now())
        .unwrap();
    let mut long = InitParams::new("alice", PASS);
    long.cred_name = Some("longlived".into());
    w.myproxy_client
        .init(w.myproxy.connect_local(), &w.alice, &long, &mut rng, w.clock.now())
        .unwrap();
    assert_eq!(w.myproxy.store().len(), 2);

    w.clock.advance(1_000); // first credential now expired
    let listed = w
        .myproxy_client
        .info(w.myproxy.connect_local(), &w.alice, "alice", PASS, &mut rng, w.clock.now())
        .unwrap();
    assert_eq!(listed.len(), 1, "INFO must not list the expired entry");
    assert_eq!(w.myproxy.store().len(), 1, "INFO purges, not just filters");
    assert!(w.myproxy.stats().purged.get() >= 1);
}

#[test]
fn local_handler_threads_are_joined_not_leaked() {
    let w = GridWorld::new();
    let cfg = ChannelConfig::new(vec![w.ca_cert.clone()]);
    let mut rng = test_drbg("robust drain");

    w.alice_init(PASS).unwrap();
    assert!(w.myproxy.drain_local_handlers() >= 1);

    storage::client::store(
        w.storage.connect_local(b"drain st"),
        &w.alice,
        &cfg,
        "drain.dat",
        b"x",
        &mut rng,
        w.clock.now(),
    )
    .unwrap();
    assert!(w.storage.drain_local_handlers() >= 1);

    job::client::submit(
        w.jobmanager.connect_local(b"drain jm"),
        &w.alice,
        &cfg,
        "drain-job",
        1,
        false,
        false,
        0,
        &mut rng,
        w.clock.now(),
    )
    .unwrap();
    assert!(w.jobmanager.drain_local_handlers() >= 1);
}

#[test]
fn metrics_scrape_during_load_shed_reports_shed_counter() {
    let w = GridWorld::new();
    let (push, acceptor) = accept_queue::<BoxedConn>();
    // Scoped into the portal's own registry, so the `/metrics` scrape
    // sees this pool's counters as `net.portal.plain.*`.
    let handle = net::serve_scoped(
        acceptor,
        w.portal.plain_service(),
        tight_cfg(),
        w.portal.obs(),
        "portal.plain",
    )
    .unwrap();
    let stats = handle.stats();

    // Fill the single slot, then overflow it: the extra connection is
    // refused with a real HTTP 503 and counted as shed.
    let _half_open = dial_faulty(&push, |f| f.stall_after_read_frames(0));
    wait_until("half-open admitted", || stats.active() == 1);
    let mut refused = dial(&push);
    let mut raw = Vec::new();
    refused.read_to_end(&mut raw).unwrap();
    assert!(String::from_utf8_lossy(&raw).contains("503"));
    wait_until("shed counted", || stats.shed() >= 1);

    // Scrape through a dedicated handler thread (not the full pool):
    // load-shedding the login path must not blind the monitoring path.
    let mut browser = w.browser_plain("shed scraper");
    let body = expect_ok(browser.get("/metrics").unwrap()).unwrap();
    let snap = myproxy::obs::parse(&body.text()).expect("scrape parses mid-shed");
    assert!(*snap.counters.get("net.portal.plain.shed").unwrap() >= 1);
    assert_eq!(*snap.gauges.get("net.portal.plain.active").unwrap(), 1);

    let report = handle.shutdown();
    assert!(report.drained);
}

#[test]
fn retrying_client_rides_out_shedding_while_plain_client_sees_busy() {
    let w = GridWorld::new();
    let (push, handle) = w.myproxy.serve_local(tight_cfg()).unwrap();
    let stats = handle.stats();
    let mut rng = test_drbg("robust retry shed");

    // Store alice's credential while the single slot is free.
    w.myproxy_client
        .init(dial(&push), &w.alice, &InitParams::new("alice", PASS), &mut rng, w.clock.now())
        .unwrap();
    wait_until("init connection drained", || stats.active() == 0);

    // A half-open peer now occupies the only slot until the handshake
    // deadline (400 ms) evicts it.
    let _half_open = dial_faulty(&push, |f| f.stall_after_read_frames(0));
    wait_until("half-open admitted", || stats.active() == 1);

    // A client without a retry policy surfaces the typed Busy at once.
    let plain = w.myproxy_client.get_delegation(
        dial(&push),
        &w.portal_cred,
        &GetParams::new("alice", PASS),
        &mut rng,
        w.clock.now(),
    );
    let Err(MyProxyError::Busy { retry_after_ms, .. }) = plain else {
        panic!("expected a typed busy refusal, got {plain:?}");
    };
    assert_eq!(retry_after_ms, Some(200));

    // A client with a retry policy re-dials after the hinted delay and
    // succeeds once the eviction frees the slot. GET is idempotent, so
    // the re-sends are safe by construction (PUT has no retrying
    // variant at all).
    let policy = RetryPolicy { max_attempts: 8, base_delay_ms: 50, max_delay_ms: 400, jitter_seed: 7 };
    let delegated = w
        .myproxy_client
        .get_delegation_retrying(
            &pool_connector(&push),
            &w.portal_cred,
            &GetParams::new("alice", PASS),
            &policy,
            &mut rng,
            w.clock.now(),
        )
        .expect("retrying client must ride out the shed window");
    assert!(delegated.subject().to_string().starts_with("/O=Grid/CN=alice/CN="));
    assert!(stats.shed() >= 1, "at least the plain client was shed");

    let report = handle.shutdown();
    assert!(report.drained);
}

#[test]
fn power_cut_mid_burst_preserves_acked_credentials_on_restart() {
    let w = GridWorld::new();
    let vfs = Arc::new(CrashVfs::new());
    w.myproxy
        .enable_durability_with(
            std::path::Path::new("/store"),
            vfs.clone(),
            WalConfig { compact_every: 0, ..WalConfig::default() },
        )
        .unwrap();
    let mut rng = test_drbg("robust crash burst");

    let init_named = |name: &str, rng: &mut myproxy::crypto::HmacDrbg| {
        let mut params = InitParams::new("alice", PASS);
        params.cred_name = Some(name.into());
        w.myproxy_client.init(w.myproxy.connect_local(), &w.alice, &params, rng, w.clock.now())
    };

    // Two PUTs land durably, then the "disk" dies one mutation into the
    // third (its journal append survives unsynced, the fsync never
    // happens — so the server must NOT have acked it).
    init_named("cred-0", &mut rng).unwrap();
    init_named("cred-1", &mut rng).unwrap();
    vfs.set_cut_after(vfs.mutations() + 1);

    let mut acked = vec!["cred-0", "cred-1"];
    for name in ["cred-2", "cred-3"] {
        match init_named(name, &mut rng) {
            Ok(_) => acked.push(name),
            Err(_) => break,
        }
    }
    assert_eq!(acked, ["cred-0", "cred-1"], "no ack may follow the power cut");

    // "Restart": recover a fresh store from the pessimistic crash image
    // (only fsynced bytes survived). Every acked credential must open;
    // the torn in-flight PUT must not resurrect as a corrupt entry.
    let restarted = CredStore::new(ServerPolicy::permissive().pbkdf2_iterations);
    let report = restarted
        .attach_durable(
            std::path::Path::new("/store"),
            Arc::new(CrashVfs::from_image(vfs.image_synced())),
            WalConfig { compact_every: 0, ..WalConfig::default() },
            &myproxy::obs::Registry::new(),
        )
        .unwrap();
    assert!(report.corrupt.is_empty(), "recovery must be clean: {:?}", report.corrupt);
    for name in &acked {
        restarted.open("alice", name, PASS).unwrap_or_else(|e| {
            panic!("acked credential {name} lost after power cut: {e}");
        });
    }
    assert_eq!(restarted.len(), acked.len(), "unacked PUT must not reappear");
}

#[test]
fn metrics_scrape_during_grace_drain_is_coherent() {
    let w = GridWorld::new();
    let (push, acceptor) = accept_queue::<BoxedConn>();
    let mut cfg = tight_cfg();
    // Long enough that the half-open handler is still in flight while
    // we scrape, short enough that the drain finishes inside the grace.
    cfg.handshake_deadline = Some(Duration::from_millis(800));
    let handle = net::serve_scoped(
        acceptor,
        w.portal.plain_service(),
        cfg,
        w.portal.obs(),
        "portal.drain",
    )
    .unwrap();
    let stats = handle.stats();

    let _half_open = dial_faulty(&push, |f| f.stall_after_read_frames(0));
    wait_until("half-open admitted", || stats.active() == 1);

    // Graceful shutdown on another thread: stops accepting, then waits
    // out the in-flight handler.
    let drainer = std::thread::spawn(move || handle.shutdown());

    // While the pool drains, the scrape must answer without hanging and
    // its numbers must be a coherent point-in-time view.
    let mut browser = w.browser_plain("drain scraper");
    let body = expect_ok(browser.get("/metrics").unwrap()).unwrap();
    let snap = myproxy::obs::parse(&body.text()).expect("scrape parses mid-drain");
    let c = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    let accepted = c("net.portal.drain.accepted");
    assert!(accepted >= 1, "half-open connection was accepted");
    assert!(c("net.portal.drain.completed") <= accepted);
    assert!(c("net.portal.drain.shed") <= accepted);
    assert!(*snap.gauges.get("net.portal.drain.active").unwrap() <= 1);

    let report = drainer.join().unwrap();
    assert!(report.drained, "half-open peer evicted within the grace period");
}

// ---------------------------------------------------------------------
// Replication & failover: a primary shipping its journal to a warm
// standby, promotion (explicit and heartbeat-timeout), epoch fencing
// of a restarted stale primary, and client-side repository-list
// failover. See `mp_myproxy::repl`.
// ---------------------------------------------------------------------

const PRIMARY_DIR: &str = "/primary";
const STANDBY_DIR: &str = "/standby";

fn wal_cfg() -> WalConfig {
    WalConfig { compact_every: 0, ..WalConfig::default() }
}

/// A replicated pair: the GridWorld repository as primary (CrashVfs
/// durability + a replication ring) and a second repository sharing
/// its service identity as standby, joined by a shipper whose dial can
/// be cut (`standby_up = false` → `ConnectionRefused`).
struct ReplPair {
    w: GridWorld,
    primary_vfs: Arc<CrashVfs>,
    standby: MyProxyServer,
    standby_vfs: Arc<CrashVfs>,
    standby_up: Arc<std::sync::atomic::AtomicBool>,
    shipper: Shipper,
}

fn repl_pair(ring_capacity: usize, takeover_timeout_secs: u64) -> ReplPair {
    use std::sync::atomic::{AtomicBool, Ordering};
    let w = GridWorld::new();
    let primary_vfs = Arc::new(CrashVfs::new());
    w.myproxy
        .enable_durability_with(std::path::Path::new(PRIMARY_DIR), primary_vfs.clone(), wal_cfg())
        .unwrap();
    w.myproxy
        .enable_replication(&ReplConfig { ring_capacity, takeover_timeout_secs: 0 })
        .unwrap();

    let standby = w.standby_repository(b"robust standby rng");
    let standby_vfs = Arc::new(CrashVfs::new());
    standby
        .enable_durability_with(std::path::Path::new(STANDBY_DIR), standby_vfs.clone(), wal_cfg())
        .unwrap();
    standby.configure_standby(&ReplConfig { ring_capacity, takeover_timeout_secs });

    let standby_up = Arc::new(AtomicBool::new(true));
    let connector: Connector = {
        let standby = standby.clone();
        let up = standby_up.clone();
        Arc::new(move || {
            if up.load(Ordering::SeqCst) {
                Ok(Box::new(standby.connect_local()) as BoxedTransport)
            } else {
                Err(std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "standby down"))
            }
        })
    };
    let shipper = w.myproxy.shipper(connector);
    ReplPair { w, primary_vfs, standby, standby_vfs, standby_up, shipper }
}

/// PUT a named credential for alice against `server`.
fn init_named(
    p: &ReplPair,
    server: &MyProxyServer,
    name: &str,
    rng: &mut HmacDrbg,
) -> myproxy::myproxy::Result<u64> {
    let mut params = InitParams::new("alice", PASS);
    params.cred_name = Some(name.into());
    p.w.myproxy_client.init(server.connect_local(), &p.w.alice, &params, rng, p.w.clock.now())
}

fn sorted_entries(s: &MyProxyServer) -> Vec<StoredCredential> {
    let mut v = s.store().all_entries();
    v.sort_by(|a, b| (&a.username, &a.name).cmp(&(&b.username, &b.name)).then(std::cmp::Ordering::Equal));
    v
}

fn get_named(
    p: &ReplPair,
    server: &MyProxyServer,
    name: &str,
    rng: &mut HmacDrbg,
) -> myproxy::myproxy::Result<myproxy::gsi::Credential> {
    let mut g = GetParams::new("alice", PASS);
    g.cred_name = Some(name.into());
    p.w.myproxy_client.get_delegation(server.connect_local(), &p.w.portal_cred, &g, rng, p.w.clock.now())
}

#[test]
fn replication_ships_acked_puts_and_standby_serves_reads() {
    let p = repl_pair(64, 0);
    let mut rng = test_drbg("repl basic");
    let iters = ServerPolicy::permissive().pbkdf2_iterations;

    init_named(&p, &p.w.myproxy, "cred-0", &mut rng).unwrap();
    init_named(&p, &p.w.myproxy, "cred-1", &mut rng).unwrap();
    p.shipper.run_once().unwrap();

    // The standby converged to the primary's exact state, durably (its
    // own journal replays to the same thing it holds in memory).
    assert_eq!(sorted_entries(&p.w.myproxy), sorted_entries(&p.standby));
    assert_eq!(
        replay_divergence(p.standby.store(), &p.standby_vfs, std::path::Path::new(STANDBY_DIR), iters),
        None
    );

    // Reads are served by the standby; both sides report role + epoch
    // over INFO.
    get_named(&p, &p.standby, "cred-0", &mut rng).unwrap();
    let (infos, st) = p
        .w
        .myproxy_client
        .info_with_status(p.standby.connect_local(), &p.w.alice, "alice", PASS, &mut rng, p.w.clock.now())
        .unwrap();
    assert_eq!(infos.len(), 2);
    assert_eq!((st.role.as_str(), st.epoch), ("standby", 0));
    let (_, st) = p
        .w
        .myproxy_client
        .info_with_status(p.w.myproxy.connect_local(), &p.w.alice, "alice", PASS, &mut rng, p.w.clock.now())
        .unwrap();
    assert_eq!((st.role.as_str(), st.epoch), ("primary", 0));

    // The replication gauges ride the same registry the INFO METRICS=1
    // scrape serves, so an operator sees lag without a /metrics scrape.
    let (_, metrics) = p
        .w
        .myproxy_client
        .info_with_metrics(p.w.myproxy.connect_local(), &p.w.alice, "alice", PASS, &mut rng, p.w.clock.now())
        .unwrap();
    assert!(
        metrics.iter().any(|m| m.starts_with("store.repl.lag_records ")),
        "INFO METRICS=1 must carry the replication lag gauge: {metrics:?}"
    );

    // Mutations against the standby are refused with a role-bearing
    // message pointing the operator at the primary.
    let err = init_named(&p, &p.standby, "cred-2", &mut rng).unwrap_err();
    match err {
        MyProxyError::Refused(why) => assert!(why.contains("standby"), "got: {why}"),
        other => panic!("expected a role refusal, got {other:?}"),
    }
    assert_eq!(p.standby.store().len(), 2);
}

#[test]
fn shipper_outage_grows_lag_and_resync_converges_with_zero_divergence() {
    // A deliberately tiny ring so the outage overflows it and the
    // recovery pass exercises the full-shard snapshot resync.
    let p = repl_pair(2, 0);
    let mut rng = test_drbg("repl outage");
    let iters = ServerPolicy::permissive().pbkdf2_iterations;

    init_named(&p, &p.w.myproxy, "cred-0", &mut rng).unwrap();
    p.shipper.run_once().unwrap();
    let obs = p.w.myproxy.obs().clone();
    let lag = obs.gauge("store.repl.lag_records");
    assert_eq!(lag.get(), 0, "synced pair has zero lag");

    // Standby gone: the primary keeps acking — replication is async —
    // and the lag gauge exposes exactly how far behind the standby is.
    p.standby_up.store(false, std::sync::atomic::Ordering::SeqCst);
    for name in ["cred-1", "cred-2", "cred-3", "cred-4"] {
        init_named(&p, &p.w.myproxy, name, &mut rng).unwrap();
    }
    let errors_before = obs.counter("store.repl.ship_errors").get();
    assert!(p.shipper.run_once().is_err(), "shipping to a dead standby must fail");
    assert!(obs.counter("store.repl.ship_errors").get() > errors_before);
    // Each PUT journals two records (the credential upsert + the owner
    // stamp), all of them now waiting for the standby.
    assert_eq!(lag.get(), 8, "committed records await the standby");

    // Standby back: one pass converges through a snapshot resync, and
    // the standby's own journal agrees with what it now serves.
    p.standby_up.store(true, std::sync::atomic::Ordering::SeqCst);
    let resyncs_before = obs.counter("store.repl.resyncs").get();
    p.shipper.run_once().unwrap();
    assert!(obs.counter("store.repl.resyncs").get() > resyncs_before, "overflowed ring must resync");
    assert_eq!(lag.get(), 0, "lag drains after reconnect");
    assert_eq!(sorted_entries(&p.w.myproxy), sorted_entries(&p.standby));
    assert_eq!(
        replay_divergence(p.standby.store(), &p.standby_vfs, std::path::Path::new(STANDBY_DIR), iters),
        None
    );
}

#[test]
fn failover_promotes_standby_with_every_acked_put_and_fences_the_old_primary() {
    let p = repl_pair(64, 0);
    let mut rng = test_drbg("repl failover");

    // PUT burst, shipped after every ack; the primary's disk dies one
    // mutation into the fourth PUT — that PUT is never acked.
    let mut acked: Vec<&str> = Vec::new();
    for (i, name) in ["cred-0", "cred-1", "cred-2", "cred-3", "cred-4"].iter().enumerate() {
        if i == 3 {
            p.primary_vfs.set_cut_after(p.primary_vfs.mutations() + 1);
        }
        match init_named(&p, &p.w.myproxy, name, &mut rng) {
            Ok(_) => {
                acked.push(name);
                p.shipper.run_once().unwrap();
            }
            Err(_) => break,
        }
    }
    assert_eq!(acked, ["cred-0", "cred-1", "cred-2"], "the power cut must stop acks");

    // Explicit PROMOTE (the admin command, over the wire).
    let st = p
        .w
        .myproxy_client
        .promote(p.standby.connect_local(), &p.w.alice, &mut rng, p.w.clock.now())
        .unwrap();
    assert_eq!((st.role.as_str(), st.epoch), ("primary", 1));

    // 100% of acked PUTs are served by the promoted standby; the
    // un-acked one does not exist anywhere on it.
    for name in &acked {
        get_named(&p, &p.standby, name, &mut rng)
            .unwrap_or_else(|e| panic!("acked {name} not served after failover: {e}"));
    }
    assert_eq!(p.standby.store().len(), acked.len(), "no un-acked PUT may surface");

    // The promoted standby accepts mutations at the new epoch.
    init_named(&p, &p.standby, "cred-after-failover", &mut rng).unwrap();

    // Old-primary restart from its synced crash image: it still thinks
    // it is primary at epoch 0 and accepts a split-brain write...
    let old = p.w.standby_repository(b"robust old primary");
    old.enable_durability_with(
        std::path::Path::new(PRIMARY_DIR),
        Arc::new(CrashVfs::from_image(p.primary_vfs.image_synced())),
        wal_cfg(),
    )
    .unwrap();
    old.enable_replication(&ReplConfig::default()).unwrap();
    assert_eq!(old.replication_status(), (Role::Primary, 0));
    init_named(&p, &old, "cred-rogue", &mut rng).unwrap();

    // ...but its first shipping attempt is fenced by the standby's
    // newer epoch: the stale tail is rejected and the old primary
    // demotes itself durably instead of overwriting the new primary.
    let standby = p.standby.clone();
    let old_shipper =
        old.shipper(Arc::new(move || Ok(Box::new(standby.connect_local()) as BoxedTransport)));
    let report = old_shipper.run_once().unwrap();
    assert!(report.demoted, "stale shipper must come back demoted");
    assert_eq!(old.replication_status(), (Role::Standby, 1));
    assert!(
        !p.standby.store().all_entries().iter().any(|e| e.name == "cred-rogue"),
        "stale-epoch tail must never reach the promoted primary"
    );
    // And once demoted, the old primary refuses further mutations.
    assert!(init_named(&p, &old, "cred-rogue-2", &mut rng).is_err());
}

#[test]
fn standby_auto_promotes_on_shipper_heartbeat_timeout() {
    let p = repl_pair(16, 30);
    let mut rng = test_drbg("repl auto promote");

    init_named(&p, &p.w.myproxy, "cred-0", &mut rng).unwrap();
    p.shipper.run_once().unwrap(); // establishes shipper contact

    // Contact is fresh: no takeover.
    p.w.clock.advance(10);
    assert!(!p.standby.check_auto_promote());
    assert_eq!(p.standby.replication_status(), (Role::Standby, 0));

    // Primary silent past the timeout: the standby declares it lost
    // and takes over at a new epoch.
    p.w.clock.advance(31);
    assert!(p.standby.check_auto_promote());
    assert_eq!(p.standby.replication_status(), (Role::Primary, 1));
    init_named(&p, &p.standby, "cred-1", &mut rng).unwrap();
}

#[test]
fn client_fails_over_across_a_repository_list() {
    let p = repl_pair(64, 0);
    let mut rng = test_drbg("repl client failover");
    init_named(&p, &p.w.myproxy, "cred-0", &mut rng).unwrap();
    p.shipper.run_once().unwrap();

    let dead: Connector = Arc::new(|| {
        Err(std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "primary down"))
    });
    let standby_conn = GridWorld::myproxy_connector(&p.standby);
    let primary_conn = GridWorld::myproxy_connector(&p.w.myproxy);
    let quick = RetryPolicy { max_attempts: 4, base_delay_ms: 1, max_delay_ms: 2, jitter_seed: 7 };

    // GET and INFO are idempotent: they fail over freely past the dead
    // repository to the standby.
    let mut g = GetParams::new("alice", PASS);
    g.cred_name = Some("cred-0".into());
    p.w.myproxy_client
        .get_delegation_failover(
            &[dead.clone(), standby_conn.clone()],
            &p.w.portal_cred,
            &g,
            &quick,
            &mut rng,
            p.w.clock.now(),
        )
        .unwrap();
    let infos = p
        .w
        .myproxy_client
        .info_failover(
            &[dead.clone(), standby_conn.clone()],
            &p.w.alice,
            "alice",
            PASS,
            &quick,
            &mut rng,
            p.w.clock.now(),
        )
        .unwrap();
    assert_eq!(infos.len(), 1);

    // PUT fails over only on connect-refused (nothing was sent yet)...
    let mut params = InitParams::new("alice", PASS);
    params.cred_name = Some("cred-put".into());
    p.w.myproxy_client
        .init_failover(&[dead.clone(), primary_conn.clone()], &p.w.alice, &params, &mut rng, p.w.clock.now())
        .unwrap();
    assert!(p.w.myproxy.store().all_entries().iter().any(|e| e.name == "cred-put"));

    // ...never once a request is in flight: the standby accepts the
    // dial, refuses the PUT, and that error surfaces — no second PUT
    // is attempted against the next repository in the list.
    let mut params = InitParams::new("alice", PASS);
    params.cred_name = Some("cred-no-retry".into());
    let err = p
        .w
        .myproxy_client
        .init_failover(&[standby_conn, primary_conn], &p.w.alice, &params, &mut rng, p.w.clock.now())
        .unwrap_err();
    assert!(matches!(err, MyProxyError::Refused(_)), "got: {err:?}");
    assert!(
        !p.w.myproxy.store().all_entries().iter().any(|e| e.name == "cred-no-retry"),
        "an in-flight PUT must not be replayed against the next repository"
    );
}
