//! Revocation end-to-end (§2.1: a stolen credential is dangerous "until
//! the theft was discovered and the certificate revoked by the CA"):
//! the CA publishes a CRL, the repository installs it, and the revoked
//! user's credential stops working everywhere — even with the right
//! pass phrase.

use myproxy::myproxy::client::{GetParams, InitParams};
use myproxy::myproxy::MyProxyError;
use myproxy::testkit::GridWorld;
use myproxy::x509::test_util::{test_drbg, test_rsa_key};
use myproxy::x509::{CertRevocationList, Clock, Dn};

/// Rebuild the CA signing key used by the testkit world (key index 0)
/// to issue a CRL, mimicking the CA's out-of-band revocation act.
fn revoke(w: &GridWorld, serial: &mp_bignum::BigUint) -> CertRevocationList {
    CertRevocationList::create(
        &Dn::parse(myproxy::testkit::dn::CA).unwrap(),
        test_rsa_key(0),
        w.clock.now(),
        w.clock.now() + 1_000_000,
        &[serial.clone()],
        w.clock.now(),
    )
    .unwrap()
}

#[test]
fn revoked_user_cannot_authenticate_to_repository() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    // Alice's cert is reported stolen; the CA revokes it and the
    // repository operator installs the CRL.
    let crl = revoke(&w, w.alice.leaf().serial());
    w.myproxy.add_crl(crl);

    // The thief holds alice's full credential file AND her pass phrase —
    // but the channel handshake now rejects her certificate.
    let mut rng = test_drbg("revoked init");
    let err = w
        .myproxy_client
        .init(
            w.myproxy.connect_local(),
            &w.alice,
            &InitParams::new("alice2", "stolen pass phrase"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, MyProxyError::Gsi(_)));

    // Unrevoked users are unaffected.
    w.myproxy_client
        .init(
            w.myproxy.connect_local(),
            &w.bob,
            &InitParams::new("bob", "bobs own pass"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
}

#[test]
fn revoking_the_portal_cuts_off_retrievals() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("revoked portal");

    // Before revocation the portal retrieves fine.
    w.myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();

    // The portal host is compromised; its certificate is revoked.
    let crl = revoke(&w, w.portal_cred.leaf().serial());
    w.myproxy.add_crl(crl);

    let err = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, MyProxyError::Gsi(_)));
}

#[test]
fn forged_crl_is_ignored() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    // Mallory forges a CRL claiming the CA's DN but signing with her
    // own key; validators must ignore it.
    let forged = CertRevocationList::create(
        &Dn::parse(myproxy::testkit::dn::CA).unwrap(),
        test_rsa_key(9), // not the CA key
        w.clock.now(),
        w.clock.now() + 1_000_000,
        &[w.alice.leaf().serial().clone()],
        w.clock.now(),
    )
    .unwrap();
    w.myproxy.add_crl(forged);

    // Alice is unaffected.
    let mut rng = test_drbg("forged crl");
    w.myproxy_client
        .init(
            w.myproxy.connect_local(),
            &w.alice,
            &InitParams::new("alice-again", "another pass phrase"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
}
