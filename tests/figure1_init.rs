//! Experiment F1 — Figure 1: the `myproxy-init` flow.
//!
//! "A user would start by using the myproxy-init client program along
//! with their permanent credentials to contact the repository and
//! delegate a set of proxy credentials to the server along with
//! authentication information and retrieval restrictions."

use myproxy::myproxy::client::InitParams;
use myproxy::testkit::{dn, GridWorld};
use myproxy::x509::test_util::test_drbg;
use myproxy::x509::Clock;

#[test]
fn init_delegates_proxy_to_repository() {
    let w = GridWorld::new();
    let start = w.clock.now();
    let not_after = w.alice_init("correct horse battery").unwrap();

    // Default: one week (§4.1 "credentials delegated to the repository
    // normally have a lifetime of a week").
    assert_eq!(not_after, start + 7 * 24 * 3600);
    assert_eq!(w.myproxy.store().len(), 1);

    // What the repository holds is a *proxy* of alice, not her
    // long-term key — and it is sealed under her pass phrase.
    let (cred, entry) = w
        .myproxy
        .store()
        .open("alice", "default", "correct horse battery")
        .unwrap();
    assert!(cred.is_proxy());
    assert_eq!(entry.owner_identity, dn::ALICE);
    assert_ne!(
        cred.key().public_key(),
        w.alice.key().public_key(),
        "repository never receives the user's own private key"
    );
}

#[test]
fn init_with_custom_lifetime_and_restrictions() {
    let w = GridWorld::new();
    let mut rng = test_drbg("f1 custom");
    let mut params = InitParams::new("alice", "correct horse battery");
    params.lifetime_secs = 3600 * 24; // one day instead of a week
    params.retrieval_max_lifetime = Some(1800);
    let not_after = w
        .myproxy_client
        .init(w.myproxy.connect_local(), &w.alice, &params, &mut rng, w.clock.now())
        .unwrap();
    assert_eq!(not_after, w.clock.now() + 3600 * 24);
    let entry = w.myproxy.store().peek("alice", "default").unwrap();
    assert_eq!(entry.retrieval_max_lifetime, 1800);
}

#[test]
fn user_can_destroy_previously_delegated_credentials() {
    // §4.1: "The user can also, at any point, use the myproxy-destroy
    // client program to destroy any credentials they previously
    // delegated to the repository."
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("f1 destroy");
    w.myproxy_client
        .destroy(
            w.myproxy.connect_local(),
            &w.alice,
            "alice",
            "correct horse battery",
            None,
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    assert_eq!(w.myproxy.store().len(), 0);
}

#[test]
fn repeated_init_replaces_the_stored_credential() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    w.clock.advance(1000);
    let second = w.alice_init("correct horse battery").unwrap();
    assert_eq!(w.myproxy.store().len(), 1, "same (user, name) replaced, not duplicated");
    assert_eq!(second, w.clock.now() + 7 * 24 * 3600);
}
