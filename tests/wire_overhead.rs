//! Wire-cost accounting: how many bytes each MyProxy operation puts on
//! the network, measured with the tap transport. Documents the §6.4
//! admission that the protocol "was quickly designed as a prototype" —
//! and shows the cost is entirely certificates, not framing.

use myproxy::gsi::transport::Tap;
use myproxy::myproxy::client::{GetParams, InitParams};
use myproxy::testkit::GridWorld;
use myproxy::x509::test_util::test_drbg;
use myproxy::x509::Clock;

#[test]
fn operation_byte_costs_are_bounded_and_reported() {
    let w = GridWorld::new();
    let mut rng = test_drbg("wire overhead");

    // INIT.
    let (t, log) = Tap::new(w.myproxy.connect_local());
    w.myproxy_client
        .init(
            t,
            &w.alice,
            &InitParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    let (init_sent, init_recv) = {
        let l = log.lock();
        (l.sent.len(), l.received.len())
    };

    // GET.
    let (t, log) = Tap::new(w.myproxy.connect_local());
    w.myproxy_client
        .get_delegation(
            t,
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    let (get_sent, get_recv) = {
        let l = log.lock();
        (l.sent.len(), l.received.len())
    };

    // INFO (no delegation sub-protocol).
    let (t, log) = Tap::new(w.myproxy.connect_local());
    w.myproxy_client
        .info(t, &w.alice, "alice", "correct horse battery", &mut rng, w.clock.now())
        .unwrap();
    let (info_sent, info_recv) = {
        let l = log.lock();
        (l.sent.len(), l.received.len())
    };

    println!("wire bytes (client-sent / client-received):");
    println!("  INIT: {init_sent} / {init_recv}");
    println!("  GET:  {get_sent} / {get_recv}");
    println!("  INFO: {info_sent} / {info_recv}");

    // Sanity bounds: with 512-bit keys, one certificate is ~450 bytes
    // DER; a whole operation is a handful of certificates plus MACs.
    // These bounds catch accidental blowups (resends, uncompressed
    // chains growing unboundedly, framing bugs).
    for (label, v) in [
        ("init sent", init_sent),
        ("init recv", init_recv),
        ("get sent", get_sent),
        ("get recv", get_recv),
        ("info sent", info_sent),
        ("info recv", info_recv),
    ] {
        assert!(v > 100, "{label}: implausibly small ({v})");
        assert!(v < 16_384, "{label}: wire blowup ({v} bytes)");
    }

    // The delegation-bearing ops carry more server->client data (the
    // new chain comes back) than INFO does.
    assert!(get_recv > info_recv);
}
