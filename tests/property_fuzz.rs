//! Property-based fuzzing of every parser that faces hostile input:
//! the MyProxy protocol, the GRAM KV codec, HTTP, DER/certificates,
//! PEM, DNs, and the restriction grammar. The invariant under test is
//! always the same pair: (a) no panic on arbitrary input, (b) valid
//! values round-trip exactly.

use myproxy::myproxy::proto::{parse_tags, render_tags, Command, Request, Response};
use myproxy::portal::http::{HttpRequest, HttpResponse};
use myproxy::x509::validate::Restriction;
use myproxy::x509::{Certificate, CertRequest, Dn};
use proptest::prelude::*;

/// Field values legal in the line-oriented protocols (no newlines, no
/// '=' in keys; values may contain '=').
fn proto_value() -> impl Strategy<Value = String> {
    "[ -~&&[^\n]]{0,40}".prop_map(|s| s.replace('\n', " "))
}

fn proto_key() -> impl Strategy<Value = String> {
    "[A-Z_]{1,20}"
}

proptest! {
    #[test]
    fn request_from_text_never_panics(s in any::<String>()) {
        let _ = Request::from_text(&s);
    }

    #[test]
    fn response_from_text_never_panics(s in any::<String>()) {
        let _ = Response::from_text(&s);
    }

    #[test]
    fn request_roundtrip(
        fields in proptest::collection::btree_map(proto_key(), proto_value(), 0..8)
    ) {
        let mut req = Request::new(Command::Get);
        for (k, v) in &fields {
            if k == "COMMAND" || k == "VERSION" {
                continue;
            }
            req = req.field(k, v);
        }
        let back = Request::from_text(&req.to_text()).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn kv_from_text_never_panics(s in any::<String>()) {
        let _ = myproxy::gram::kv::Kv::from_text(&s);
    }

    #[test]
    fn http_request_from_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = HttpRequest::from_bytes(&data);
    }

    #[test]
    fn http_response_from_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = HttpResponse::from_bytes(&data);
    }

    #[test]
    fn http_form_roundtrip(
        pairs in proptest::collection::vec(("[a-z]{1,10}", "[ -~]{0,30}"), 0..6)
    ) {
        let borrowed: Vec<(&str, &str)> =
            pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let req = HttpRequest::post_form("/x", &borrowed);
        let back = HttpRequest::from_bytes(&req.to_bytes()).unwrap();
        // Forms may repeat keys; compare the full multiset in order.
        let got = back.form();
        prop_assert_eq!(got.len(), pairs.len());
        for ((gk, gv), (k, v)) in got.iter().zip(pairs.iter()) {
            prop_assert_eq!(gk, k);
            prop_assert_eq!(gv, v);
        }
    }

    #[test]
    fn certificate_from_der_never_panics(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Certificate::from_der(&data);
    }

    #[test]
    fn csr_from_der_never_panics(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = CertRequest::from_der(&data);
    }

    #[test]
    fn pem_decode_never_panics(s in any::<String>()) {
        let _ = myproxy::x509::pem::decode_all(&s);
    }

    #[test]
    fn pem_roundtrip(label in "[A-Z ]{1,20}", data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let label = label.trim();
        prop_assume!(!label.is_empty());
        let text = myproxy::x509::pem::encode(label, &data);
        let blocks = myproxy::x509::pem::decode_all(&text).unwrap();
        prop_assert_eq!(blocks.len(), 1);
        prop_assert_eq!(blocks[0].label.as_str(), label);
        prop_assert_eq!(&blocks[0].data, &data);
    }

    #[test]
    fn dn_parse_never_panics(s in any::<String>()) {
        let _ = Dn::parse(&s);
    }

    #[test]
    fn dn_display_parse_roundtrip(
        parts in proptest::collection::vec(("(CN|O|OU|C)", "[a-zA-Z0-9 .@-]{1,20}"), 1..5)
    ) {
        let rendered: String = parts
            .iter()
            .map(|(label, value)| format!("/{label}={}", value.trim()))
            .collect();
        prop_assume!(parts.iter().all(|(_, v)| !v.trim().is_empty()));
        let dn = Dn::parse(&rendered).unwrap();
        prop_assert_eq!(dn.to_string(), rendered);
        // And the DER round trip preserves it too.
        let der = dn.to_der();
        let mut dec = mp_asn1::Decoder::new(&der);
        let back = Dn::decode(&mut dec).unwrap();
        prop_assert_eq!(back, dn);
    }

    #[test]
    fn restriction_parse_never_panics_and_is_consistent(
        expr in "[ -~]{0,60}",
        key in "[a-z]{1,8}",
        value in "[a-z0-9.]{1,12}",
    ) {
        let r = Restriction::parse(&expr);
        // Calling allows twice gives the same answer (pure function).
        prop_assert_eq!(r.allows(&key, &value), r.allows(&key, &value));
    }

    #[test]
    fn restriction_explicit_allow_works(
        key in "[a-z]{1,8}",
        value in "[a-z0-9.]{1,12}",
        other in "[a-z0-9.]{1,12}",
    ) {
        prop_assume!(value != other);
        let r = Restriction::parse(&format!("{key}={value}"));
        prop_assert!(r.allows(&key, &value));
        prop_assert!(!r.allows(&key, &other));
    }

    #[test]
    fn tags_roundtrip(
        tags in proptest::collection::vec(("[a-z]{1,8}", "[a-zA-Z0-9._-]{1,12}"), 0..5)
    ) {
        let owned: Vec<(String, String)> =
            tags.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let rendered = render_tags(&owned);
        prop_assert_eq!(parse_tags(&rendered), owned);
    }

    #[test]
    fn gridmap_parse_never_panics(s in any::<String>()) {
        let _ = myproxy::gsi::Gridmap::parse(&s);
    }

    #[test]
    fn store_entry_parse_never_panics(s in any::<String>()) {
        let _ = myproxy::myproxy::persist::entry_from_text(&s);
    }

    #[test]
    fn url_codec_roundtrip(s in "[ -~]{0,50}") {
        use myproxy::portal::http::{url_decode, url_encode};
        prop_assert_eq!(url_decode(&url_encode(&s)), s);
    }
}
