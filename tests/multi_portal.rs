//! Experiment on the §3.3 scalability goals: "Multiple portals should
//! be able to use a single system … and a portal should be able to use
//! multiple systems in the case of a portal that supports users from
//! multiple domains."

use myproxy::crypto::HmacDrbg;
use myproxy::gsi::Credential;
use myproxy::myproxy::client::{GetParams, InitParams};
use myproxy::myproxy::{MyProxyClient, MyProxyServer, ServerPolicy};
use myproxy::testkit::GridWorld;
use myproxy::x509::test_util::{test_drbg, test_rsa_key};
use myproxy::x509::{CertificateAuthority, Clock, Dn};
use std::sync::Arc;

#[test]
fn many_portals_one_repository() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    // Five "portals", each a distinct host credential, all retrieving
    // concurrently from the single repository.
    let mut handles = Vec::new();
    for i in 0..5 {
        let server = w.myproxy.clone();
        let ca_cert = w.ca_cert.clone();
        let now = w.clock.now();
        // Give each portal its own credential (reuse test key pool).
        let portal_cred = {
            let mut ca = CertificateAuthority::new_root(
                Dn::parse(myproxy::testkit::dn::CA).unwrap(),
                test_rsa_key(0).clone(),
                0,
                now + 1_000_000,
            )
            .unwrap();
            let key = test_rsa_key(12 + i);
            let dn = Dn::parse(&format!("/O=Grid/OU=Site{i}/CN=portal{i}.example.org")).unwrap();
            let cert = ca.issue_end_entity(&dn, key.public_key(), 0, now + 500_000).unwrap();
            Credential::new(vec![cert], key.clone()).unwrap()
        };
        handles.push(std::thread::spawn(move || {
            let client = MyProxyClient::new(vec![ca_cert], None);
            let mut rng = test_drbg(&format!("portal {i}"));
            client
                .get_delegation(
                    server.connect_local(),
                    &portal_cred,
                    &GetParams::new("alice", "correct horse battery"),
                    &mut rng,
                    now,
                )
                .unwrap()
        }));
    }
    for h in handles {
        let proxy = h.join().unwrap();
        assert!(proxy.is_proxy());
    }
    // Counters bump in handler threads; poll briefly.
    let mut gets = 0;
    for _ in 0..100 {
        gets = w.myproxy.stats().gets.get();
        if gets == 5 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(gets, 5);
}

#[test]
fn one_portal_many_repositories() {
    // A portal serving users from two domains, each with its own
    // MyProxy server. (The §4.3 note: "The user might also specify a
    // MyProxy repository for the portal to use.")
    let w = GridWorld::new();
    let roots = vec![w.ca_cert.clone()];

    // A second repository in another OU, sharing the same CA.
    let now = w.clock.now();
    let mut ca = CertificateAuthority::new_root(
        Dn::parse(myproxy::testkit::dn::CA).unwrap(),
        test_rsa_key(0).clone(),
        0,
        now + 1_000_000,
    )
    .unwrap();
    let key = test_rsa_key(17);
    let dn2 = Dn::parse("/O=Grid/OU=NPACI/CN=myproxy.npaci.edu").unwrap();
    let cert = ca.issue_end_entity(&dn2, key.public_key(), 0, now + 500_000).unwrap();
    let second_repo = MyProxyServer::new(
        Credential::new(vec![cert], key.clone()).unwrap(),
        roots.clone(),
        ServerPolicy::permissive(),
        Arc::new(w.clock.clone()),
        HmacDrbg::new(b"second repo seed"),
    );

    // alice stores at NCSA, bob at NPACI.
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("bob at npaci");
    let npaci_client = MyProxyClient::new(roots.clone(), Some(dn2));
    npaci_client
        .init(
            second_repo.connect_local(),
            &w.bob,
            &InitParams::new("bob", "bobs-own-pass"),
            &mut rng,
            now,
        )
        .unwrap();

    // The portal retrieves alice from repo 1 and bob from repo 2.
    let p1 = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            now,
        )
        .unwrap();
    let p2 = npaci_client
        .get_delegation(
            second_repo.connect_local(),
            &w.portal_cred,
            &GetParams::new("bob", "bobs-own-pass"),
            &mut rng,
            now,
        )
        .unwrap();

    let v1 = myproxy::x509::validate_chain(p1.chain(), &roots, now, &Default::default()).unwrap();
    let v2 = myproxy::x509::validate_chain(p2.chain(), &roots, now, &Default::default()).unwrap();
    assert_eq!(v1.identity.to_string(), "/O=Grid/CN=alice");
    assert_eq!(v2.identity.to_string(), "/O=Grid/CN=bob");

    // Cross-repository: alice's entry does not exist at NPACI.
    assert!(npaci_client
        .get_delegation(
            second_repo.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            now,
        )
        .is_err());
}

#[test]
fn many_users_in_one_repository() {
    let w = GridWorld::new();
    // 20 synthetic users store credentials (all delegating alice's
    // actual key material under distinct usernames — the store treats
    // entries independently; identity is recorded from the channel).
    let mut rng = test_drbg("many users");
    for i in 0..20 {
        let mut params = InitParams::new(&format!("user{i}"), &format!("pass-for-user-{i}"));
        params.lifetime_secs = 3600;
        w.myproxy_client
            .init(w.myproxy.connect_local(), &w.alice, &params, &mut rng, w.clock.now())
            .unwrap();
    }
    assert_eq!(w.myproxy.store().len(), 20);

    // Retrieval only works per-user with the matching pass phrase.
    let ok = w.myproxy_client.get_delegation(
        w.myproxy.connect_local(),
        &w.portal_cred,
        &GetParams::new("user7", "pass-for-user-7"),
        &mut rng,
        w.clock.now(),
    );
    assert!(ok.is_ok());
    let cross = w.myproxy_client.get_delegation(
        w.myproxy.connect_local(),
        &w.portal_cred,
        &GetParams::new("user7", "pass-for-user-8"),
        &mut rng,
        w.clock.now(),
    );
    assert!(cross.is_err());
}
