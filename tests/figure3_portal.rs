//! Experiment F3 — Figure 3: the full portal flow.
//!
//! Step 1: browser sends authentication data to the portal (HTTPS).
//! Step 2: portal authenticates to the repository with its own
//!         credentials and presents the user's authentication data.
//! Step 3: repository delegates the user's proxy to the portal.
//! Then the user "directs the portal through the existing connection
//! with the web browser" — jobs, files — and logout deletes the
//! delegated credential (§4.3).

use myproxy::gram::JobState;
use myproxy::portal::browser::expect_ok;
use myproxy::testkit::{dn, GridWorld};
use myproxy::x509::test_util::test_drbg;
use myproxy::x509::Clock;

#[test]
fn full_portal_session() {
    let w = GridWorld::new();
    // Earlier, from her workstation: Figure 1.
    w.alice_init("correct horse battery").unwrap();

    // Later, from an airport kiosk (§3.1): any standard browser.
    let mut browser = w.browser("kiosk");
    let home = expect_ok(browser.get("/").unwrap()).unwrap();
    assert!(home.text().contains("Grid Portal"));

    // Step 1-3.
    expect_ok(browser.login("alice", "correct horse battery").unwrap()).unwrap();
    assert!(browser.session_cookie().is_some());
    assert_eq!(w.portal.sessions().len(), 1);

    let who = expect_ok(browser.get("/whoami").unwrap()).unwrap();
    assert!(who.text().contains("user=alice"));
    assert!(who.text().contains(dn::ALICE));

    // Direct the portal: submit a job that stores output, as alice.
    let resp = expect_ok(
        browser
            .post("/submit", &[("name", "climate"), ("ticks", "2"), ("output", "1")])
            .unwrap(),
    )
    .unwrap();
    let job_id: u64 = resp.text().strip_prefix("job=").unwrap().parse().unwrap();

    let mut rng = test_drbg("f3 ticks");
    w.jobmanager.tick(&mut rng);
    w.jobmanager.tick(&mut rng);
    assert_eq!(w.jobmanager.job(job_id).unwrap().state, JobState::Completed);
    // Output was written to mass storage under alice's account, via the
    // delegated (and re-delegated) credential chain.
    assert!(w.storage.peek("alice", "climate.out").is_some());

    let status = expect_ok(browser.get(&format!("/job?id={job_id}")).unwrap()).unwrap();
    assert!(status.text().contains("state=COMPLETED"));

    // Store a file straight from the browser.
    expect_ok(
        browser
            .post("/store", &[("filename", "notes.txt"), ("content", "from the kiosk")])
            .unwrap(),
    )
    .unwrap();
    let files = expect_ok(browser.get("/files").unwrap()).unwrap();
    assert!(files.text().contains("notes.txt"));
    assert!(files.text().contains("climate.out"));

    // Logout deletes the delegated credential on the portal (§4.3).
    expect_ok(browser.logout().unwrap()).unwrap();
    assert_eq!(w.portal.sessions().len(), 0);
    let resp = browser.get("/whoami").unwrap();
    assert_eq!(resp.status, 401);
}

#[test]
fn login_fails_with_bad_passphrase_or_before_init() {
    let w = GridWorld::new();
    let mut browser = w.browser("early bird");
    // Nothing stored yet.
    let resp = browser.login("alice", "correct horse battery").unwrap();
    assert_eq!(resp.status, 401);

    w.alice_init("correct horse battery").unwrap();
    let resp = browser.login("alice", "wrong").unwrap();
    assert_eq!(resp.status, 401);
    assert_eq!(w.portal.sessions().len(), 0);
}

#[test]
fn forgotten_logout_session_dies_with_proxy_expiry() {
    // §4.3: "If a user forgets to log off, the credential will expire
    // at the lifetime specified when requested from the MyProxy
    // service."
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut browser = w.browser("forgetful");
    expect_ok(browser.login("alice", "correct horse battery").unwrap()).unwrap();
    assert_eq!(expect_ok(browser.get("/whoami").unwrap()).unwrap().status, 200);

    // The portal's proxy lives 2h by default.
    w.clock.advance(2 * 3600 + 1);
    let resp = browser.get("/whoami").unwrap();
    assert_eq!(resp.status, 401, "session invalid once the proxy expired");
    assert_eq!(w.portal.sessions().len(), 0, "expired session reaped");
}

#[test]
fn two_users_get_independent_sessions() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("bob init");
    w.myproxy_client
        .init(
            w.myproxy.connect_local(),
            &w.bob,
            &myproxy::myproxy::client::InitParams::new("bob", "bobs-own-pass"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();

    let mut alice_browser = w.browser("alice browser");
    let mut bob_browser = w.browser("bob browser");
    expect_ok(alice_browser.login("alice", "correct horse battery").unwrap()).unwrap();
    expect_ok(bob_browser.login("bob", "bobs-own-pass").unwrap()).unwrap();
    assert_ne!(alice_browser.session_cookie(), bob_browser.session_cookie());

    // Bob stores a file; it lands in bob's area, invisible to alice.
    expect_ok(bob_browser.post("/store", &[("filename", "b.txt"), ("content", "b")]).unwrap())
        .unwrap();
    assert!(w.storage.peek("bob", "b.txt").is_some());
    assert!(w.storage.peek("alice", "b.txt").is_none());
    let alice_files = expect_ok(alice_browser.get("/files").unwrap()).unwrap();
    assert!(!alice_files.text().contains("b.txt"));
}

#[test]
fn stolen_cookie_after_logout_is_useless() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut browser = w.browser("victim");
    expect_ok(browser.login("alice", "correct horse battery").unwrap()).unwrap();
    let stolen = browser.session_cookie().unwrap().to_string();
    expect_ok(browser.logout().unwrap()).unwrap();

    // Attacker replays the cookie.
    let mut attacker = w.browser("attacker");
    let resp = attacker
        .request(
            myproxy::portal::http::HttpRequest::get("/whoami")
                .with_header("cookie", &format!("MPSESSION={stolen}")),
        )
        .unwrap();
    assert_eq!(resp.status, 401);
}
