//! The full Figure-3 stack over real TCP sockets: the browser dials the
//! portal's TCP port, the portal dials nothing else differently — same
//! code paths as the in-memory tests, real kernel networking.

use myproxy::crypto::HmacDrbg;
use myproxy::gsi::transport::{BoxedTransport, Connector};
use myproxy::portal::browser::{expect_ok, Browser, BrowserMode};
use myproxy::testkit::GridWorld;
use std::sync::Arc;

fn tcp_connector(addr: std::net::SocketAddr) -> Connector {
    Arc::new(move || {
        let sock = std::net::TcpStream::connect(addr)?;
        Ok(Box::new(sock) as BoxedTransport)
    })
}

#[test]
fn browser_to_portal_over_tcp() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    // Portal listens on real sockets: one TLS port, one plain port.
    let tls_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let tls_addr = tls_listener.local_addr().unwrap();
    let plain_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let plain_addr = plain_listener.local_addr().unwrap();
    let _tls_pool = w.portal.serve_tcp_tls(tls_listener).unwrap();
    let _plain_pool = w.portal.serve_tcp_plain(plain_listener).unwrap();

    // An HTTPS browser session over TCP.
    let mut browser = Browser::new(
        tcp_connector(tls_addr),
        BrowserMode::Tls { roots: vec![w.ca_cert.clone()], expected: None },
        HmacDrbg::new(b"tcp browser"),
        myproxy::x509::Clock::now(&w.clock),
    );
    expect_ok(browser.login("alice", "correct horse battery").unwrap()).unwrap();
    let who = expect_ok(browser.get("/whoami").unwrap()).unwrap();
    assert!(who.text().contains("user=alice"));
    expect_ok(browser.logout().unwrap()).unwrap();

    // The plain port serves the home page but refuses logins (§5.2).
    let mut plain_browser = Browser::new(
        tcp_connector(plain_addr),
        BrowserMode::Plain,
        HmacDrbg::new(b"tcp plain browser"),
        myproxy::x509::Clock::now(&w.clock),
    );
    let home = expect_ok(plain_browser.get("/").unwrap()).unwrap();
    assert!(home.text().contains("Grid Portal"));
    let refused = plain_browser.login("alice", "correct horse battery").unwrap();
    assert_eq!(refused.status, 403);
}
