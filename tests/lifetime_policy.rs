//! Experiment L — lifetime policy end-to-end (§2.3, §4.1, §4.3): every
//! credential in the system is bounded by the shortest-lived layer, and
//! the simulated clock proves each bound actually bites.

use myproxy::myproxy::client::{GetParams, InitParams};
use myproxy::myproxy::ServerPolicy;
use myproxy::testkit::GridWorld;
use myproxy::x509::test_util::test_drbg;
use myproxy::x509::Clock;

#[test]
fn server_policy_caps_stored_lifetime() {
    // §4.3: "The maximum lifetime of credentials delegated to the
    // repository is set by policy on the repository server, but
    // defaults to one week."
    let mut policy = ServerPolicy::permissive();
    policy.max_stored_lifetime_secs = 24 * 3600; // strict site: one day
    let w = GridWorld::with_policy(policy);
    let mut rng = test_drbg("cap stored");
    let mut params = InitParams::new("alice", "correct horse battery");
    params.lifetime_secs = 30 * 24 * 3600; // user asks for a month
    let not_after = w
        .myproxy_client
        .init(w.myproxy.connect_local(), &w.alice, &params, &mut rng, w.clock.now())
        .unwrap();
    assert_eq!(not_after, w.clock.now() + 24 * 3600, "server cap wins");
}

#[test]
fn server_policy_caps_delegated_lifetime() {
    let mut policy = ServerPolicy::permissive();
    policy.max_delegated_lifetime_secs = 600;
    let w = GridWorld::with_policy(policy);
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("cap delegated");
    let mut params = GetParams::new("alice", "correct horse battery");
    params.lifetime_secs = 999_999;
    let proxy = w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &params, &mut rng, w.clock.now())
        .unwrap();
    assert_eq!(proxy.remaining_lifetime(w.clock.now()), 600);
}

#[test]
fn delegated_proxy_never_outlives_stored_credential() {
    let w = GridWorld::new();
    let mut rng = test_drbg("nest");
    let mut params = InitParams::new("alice", "correct horse battery");
    params.lifetime_secs = 1000; // short-lived stored credential
    w.myproxy_client
        .init(w.myproxy.connect_local(), &w.alice, &params, &mut rng, w.clock.now())
        .unwrap();
    let mut get = GetParams::new("alice", "correct horse battery");
    get.lifetime_secs = 7200;
    let proxy = w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &get, &mut rng, w.clock.now())
        .unwrap();
    // The chain's effective expiry is min over certificates: the stored
    // credential's 1000s, not the requested 7200s.
    assert_eq!(proxy.remaining_lifetime(w.clock.now()), 1000);
}

#[test]
fn every_layer_expires_in_order() {
    // Build the full tower: user cert (1 year) > stored proxy (1 week)
    // > portal proxy (2h), and watch each die in turn.
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("tower");
    let portal_proxy = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();

    let roots = [w.ca_cert.clone()];

    // t + 1h: everything valid.
    w.clock.advance(3600);
    assert!(myproxy::x509::validate_chain(
        portal_proxy.chain(),
        &roots,
        w.clock.now(),
        &Default::default()
    )
    .is_ok());

    // t + 3h: portal proxy expired; stored credential still retrievable.
    w.clock.advance(2 * 3600);
    assert!(myproxy::x509::validate_chain(
        portal_proxy.chain(),
        &roots,
        w.clock.now(),
        &Default::default()
    )
    .is_err());
    let fresh = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    assert!(fresh.remaining_lifetime(w.clock.now()) > 0);

    // t + 8 days: stored credential expired; retrieval fails; alice
    // must rerun myproxy-init from her workstation (§4.3).
    w.clock.advance(8 * 24 * 3600);
    assert!(w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .is_err());
    w.alice_init("correct horse battery").unwrap();
    assert!(w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .is_ok());
}

#[test]
fn proxy_notbefore_tolerates_clock_skew() {
    // A proxy minted "now" must be immediately usable by a validator
    // whose clock runs slightly behind (the CLOCK_SKEW_SLACK backdate).
    let w = GridWorld::new();
    let mut rng = test_drbg("skew");
    let proxy = myproxy::gsi::grid_proxy_init(
        &w.alice,
        &myproxy::gsi::ProxyOptions::default(),
        &mut rng,
        w.clock.now(),
    )
    .unwrap();
    let roots = [w.ca_cert.clone()];
    let behind = w.clock.now() - 200;
    assert!(
        myproxy::x509::validate_chain(proxy.chain(), &roots, behind, &Default::default()).is_ok()
    );
}
