//! End-to-end coverage of the mp-obs layer: every service feeds one
//! registry scheme, the portal exposes `GET /metrics`, and the GSI
//! `INFO` command returns the repository's metrics when asked.
//!
//! Span histograms (`gsi.*`, `crypto.*`, `store.*`) land in the
//! process-global ambient registry which every scrape merges in, so
//! assertions on them are `>=` — other tests in this binary may run
//! concurrently and record into the same histograms.

use myproxy::obs;
use myproxy::portal::browser::expect_ok;
use myproxy::testkit::GridWorld;
use myproxy::x509::test_util::test_drbg;
use myproxy::x509::Clock;

#[test]
fn portal_metrics_scrape_reports_request_latency() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    let mut browser = w.browser("scraper");
    expect_ok(browser.login("alice", "correct horse battery").unwrap()).unwrap();
    expect_ok(browser.get("/whoami").unwrap()).unwrap();

    let body = expect_ok(browser.get("/metrics").unwrap()).unwrap();
    let snap = obs::parse(&body.text()).expect("scrape body parses");

    // The portal's own request counters: login + whoami + this scrape.
    assert!(*snap.counters.get("portal.requests").unwrap() >= 3);
    let req = snap.histograms.get("portal.request").expect("request histogram");
    // The scrape request itself is still in flight (its timer records
    // on drop, after the body renders), so only login + whoami count.
    assert!(req.count >= 2);
    assert!(req.max >= req.p99());
    assert!(req.p50() <= req.p99());

    // Login drove a GSI handshake against the repository, so the
    // ambient span histograms must be merged into the scrape.
    let hs = snap
        .histograms
        .get("gsi.handshake.client")
        .expect("handshake span histogram in scrape");
    assert!(hs.count >= 1);
    assert!(snap.histograms.contains_key("crypto.rsa.sign"));
}

#[test]
fn metrics_scrape_needs_no_session() {
    let w = GridWorld::new();
    let mut browser = w.browser("anon scraper");
    let body = expect_ok(browser.get("/metrics").unwrap()).unwrap();
    let snap = obs::parse(&body.text()).expect("anonymous scrape parses");
    // Exactly this one request so far.
    assert!(*snap.counters.get("portal.requests").unwrap() >= 1);
}

#[test]
fn info_command_returns_repository_metrics() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    let mut rng = test_drbg("info metrics");
    let (infos, metrics) = w
        .myproxy_client
        .info_with_metrics(
            w.myproxy.connect_local(),
            &w.alice,
            "alice",
            "correct horse battery",
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    assert_eq!(infos.len(), 1);
    assert!(!metrics.is_empty(), "METRICS=1 must return METRIC fields");

    // The init PUT and this INFO both went through serve_channel.
    let puts = metrics
        .iter()
        .find(|l| l.starts_with("myproxy.puts "))
        .expect("puts counter line");
    assert_eq!(puts.trim(), "myproxy.puts 1");
    let req = metrics
        .iter()
        .find(|l| l.starts_with("myproxy.request "))
        .expect("request histogram line");
    // Compact histogram form carries the percentiles.
    for key in ["count=", "sum=", "max=", "p50=", "p90=", "p99="] {
        assert!(req.contains(key), "{req:?} missing {key}");
    }
    // The PUT stored a credential, so the store.put span must be
    // visible through the repository's merged snapshot too.
    assert!(metrics.iter().any(|l| l.starts_with("store.put ")));
}

#[test]
fn durable_server_reports_wal_metrics_through_info() {
    let w = GridWorld::new();
    let vfs = std::sync::Arc::new(myproxy::myproxy::wal::CrashVfs::new());
    w.myproxy
        .enable_durability_with(
            std::path::Path::new("/store"),
            vfs,
            myproxy::myproxy::wal::WalConfig {
                compact_every: 1,
                ..myproxy::myproxy::wal::WalConfig::default()
            },
        )
        .unwrap();
    w.alice_init("correct horse battery").unwrap();

    let mut rng = test_drbg("wal metrics");
    let (_, metrics) = w
        .myproxy_client
        .info_with_metrics(
            w.myproxy.connect_local(),
            &w.alice,
            "alice",
            "correct horse battery",
            &mut rng,
            w.clock.now(),
        )
        .unwrap();

    // The PUT journals two records (the credential upsert, then the
    // owner-identity update), each fsynced; compact_every=1 folds the
    // journal into a snapshot after each commit.
    let counter = |name: &str| -> u64 {
        metrics
            .iter()
            .find(|l| l.starts_with(&format!("{name} ")))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing counter {name} in {metrics:?}"))
    };
    assert_eq!(counter("store.wal.appends"), 2);
    assert!(counter("store.wal.fsyncs") >= 2);
    assert_eq!(counter("store.wal.compactions"), 2);
    assert_eq!(counter("store.wal.replayed"), 0);
    assert_eq!(counter("store.wal.truncated_tail"), 0);
    assert_eq!(counter("store.load.corrupt"), 0);
}

#[test]
fn plain_info_omits_metrics() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("plain info");
    let infos = w
        .myproxy_client
        .info(
            w.myproxy.connect_local(),
            &w.alice,
            "alice",
            "correct horse battery",
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    assert_eq!(infos.len(), 1);
}

#[test]
fn delegation_round_trip_lands_in_span_histograms() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    // Figure 2: retrieve a delegated proxy from the repository.
    let mut rng = test_drbg("obs get");
    let cred = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &myproxy::myproxy::client::GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    assert!(!cred.chain().is_empty());

    let global = obs::global().snapshot();
    for name in ["gsi.delegate.issue", "gsi.delegate.accept", "store.open"] {
        let h = global.histograms.get(name).unwrap_or_else(|| panic!("{name} missing"));
        assert!(h.count >= 1, "{name} never recorded");
        assert!(h.p99() <= h.max, "{name}: p99 above max");
    }
}
