//! Experiment W — §6.2 "electronic wallet": several credentials per
//! user, task-driven selection, minimum-rights embedding.

use myproxy::myproxy::client::{GetParams, InitParams};
use myproxy::testkit::GridWorld;
use myproxy::x509::test_util::test_drbg;
use myproxy::x509::Clock;

fn init_named(w: &GridWorld, name: &str, tags: &[(&str, &str)]) {
    let mut rng = test_drbg("wallet init");
    let mut params = InitParams::new("alice", "correct horse battery");
    params.cred_name = Some(name.to_string());
    params.tags = tags.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    w.myproxy_client
        .init(w.myproxy.connect_local(), &w.alice, &params, &mut rng, w.clock.now())
        .unwrap();
}

#[test]
fn wallet_holds_multiple_credentials() {
    let w = GridWorld::new();
    init_named(&w, "default", &[]);
    init_named(&w, "doe-compute", &[("ca", "DOE"), ("purpose", "compute")]);
    init_named(&w, "nasa-storage", &[("ca", "NASA-IPG"), ("purpose", "storage")]);
    assert_eq!(w.myproxy.store().len(), 3);

    let mut rng = test_drbg("wallet info");
    let infos = w
        .myproxy_client
        .info(
            w.myproxy.connect_local(),
            &w.alice,
            "alice",
            "correct horse battery",
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    assert_eq!(infos.len(), 3);
    let names: Vec<_> = infos.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, vec!["default", "doe-compute", "nasa-storage"]);
}

#[test]
fn task_selects_the_right_credential() {
    let w = GridWorld::new();
    init_named(&w, "default", &[]);
    init_named(&w, "doe-compute", &[("ca", "DOE"), ("purpose", "compute")]);
    init_named(&w, "nasa-storage", &[("ca", "NASA-IPG"), ("purpose", "storage")]);

    let mut rng = test_drbg("wallet select");
    let mut get = GetParams::new("alice", "correct horse battery");
    get.task = vec![("purpose".into(), "storage".into())];
    let proxy = w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &get, &mut rng, w.clock.now())
        .unwrap();
    // The nasa-storage entry was minted later, so its leaf serial
    // differs; cheaper check: ask INFO which names exist, then verify by
    // explicit-name retrieval that the chain matches the task-selected
    // one.
    let mut explicit = GetParams::new("alice", "correct horse battery");
    explicit.cred_name = Some("nasa-storage".into());
    let expected = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &explicit,
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    // Same *stored* credential under both proxies: compare the parent
    // certificate (chain[1], the repository-held proxy).
    assert_eq!(proxy.chain()[1].to_der(), expected.chain()[1].to_der());
}

#[test]
fn task_target_embeds_minimum_rights() {
    // "embed the minimum needed rights in those credentials" — a task
    // naming a target produces a proxy restricted to that target, which
    // other services then refuse.
    let w = GridWorld::new();
    init_named(&w, "default", &[]);
    let mut rng = test_drbg("wallet rights");
    let mut get = GetParams::new("alice", "correct horse battery");
    get.task = vec![("target".into(), "storage.nersc.gov".into())];
    let proxy = w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &get, &mut rng, w.clock.now())
        .unwrap();

    let cfg = myproxy::gsi::ChannelConfig::new(vec![w.ca_cert.clone()]);
    // Allowed at the named storage service.
    myproxy::gram::storage::client::store(
        w.storage.connect_local(b"wallet ok"),
        &proxy,
        &cfg,
        "scoped.dat",
        b"ok",
        &mut rng,
        w.clock.now(),
    )
    .unwrap();
    // Refused at the job manager.
    let err = myproxy::gram::job::client::submit(
        w.jobmanager.connect_local(b"wallet denied"),
        &proxy,
        &cfg,
        "sneaky",
        1,
        false,
        false,
        0,
        &mut rng,
        w.clock.now(),
    )
    .unwrap_err();
    assert!(matches!(err, myproxy::gram::GramError::Denied(_)));
}

#[test]
fn per_credential_passphrases_are_independent() {
    let w = GridWorld::new();
    init_named(&w, "default", &[]);
    // A second entry under a different pass phrase.
    let mut rng = test_drbg("wallet second pass");
    let mut params = InitParams::new("alice", "another pass phrase");
    params.cred_name = Some("special".into());
    w.myproxy_client
        .init(w.myproxy.connect_local(), &w.alice, &params, &mut rng, w.clock.now())
        .unwrap();

    // Each opens only under its own pass phrase.
    let mut get = GetParams::new("alice", "correct horse battery");
    get.cred_name = Some("special".into());
    assert!(w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &get, &mut rng, w.clock.now())
        .is_err());
    let mut get = GetParams::new("alice", "another pass phrase");
    get.cred_name = Some("special".into());
    assert!(w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &get, &mut rng, w.clock.now())
        .is_ok());
}
