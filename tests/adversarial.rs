//! Adversarial and failure-injection tests: hostile bytes, truncated
//! protocols, forged structures. The repository must fail closed and
//! must never hang or panic on garbage.

use myproxy::gsi::record::{read_frame, write_frame};
use myproxy::gsi::{ChannelConfig, Credential, SecureChannel};
use myproxy::myproxy::client::GetParams;
use myproxy::testkit::GridWorld;
use myproxy::x509::test_util::{test_drbg, test_rsa_key};
use myproxy::x509::{CertBuilder, Certificate, Clock, Dn, ProxyPolicy};
use std::io::Write;

/// Raw garbage at the server port: handshake fails cleanly, no
/// delegation happens, connection is torn down.
#[test]
fn garbage_bytes_rejected_cleanly() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    for payload in [
        &b"GET / HTTP/1.0\r\n\r\n"[..],           // wrong protocol entirely
        &[0u8; 64][..],                            // zero frame storm
        &[0xff; 200][..],                          // huge bogus length prefix
        &b"\x00\x00\x00\x05hello"[..],             // valid frame, bogus handshake
    ] {
        let mut conn = w.myproxy.connect_local();
        let _ = conn.write_all(payload);
        // Drop our write side; read whatever comes back until EOF.
        let mut buf = Vec::new();
        let _ = std::io::Read::read_to_end(&mut conn, &mut buf);
    }
    // No successful operations were recorded beyond the initial PUT.
    assert_eq!(w.myproxy.stats().gets.get(), 0);
    assert_eq!(w.myproxy.stats().puts.get(), 1);
}

/// A client that completes the handshake but then speaks garbage inside
/// the channel gets an error, not a credential.
#[test]
fn valid_channel_bad_protocol_rejected() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let cfg = ChannelConfig::new(vec![w.ca_cert.clone()]).expecting(w.myproxy.identity());
    let mut rng = test_drbg("bad proto");
    let mut channel = SecureChannel::connect(
        w.myproxy.connect_local(),
        &w.portal_cred,
        &cfg,
        &mut rng,
        w.clock.now(),
    )
    .unwrap();
    channel.send(b"COMPLETELY WRONG").unwrap();
    let resp = channel.recv().unwrap();
    let text = String::from_utf8_lossy(&resp);
    assert!(text.contains("RESPONSE=1"), "server must answer with a protocol error: {text}");
}

/// Truncating the handshake mid-way (client vanishes after ClientHello)
/// must leave the server in a clean state.
#[test]
fn half_open_handshake_cleans_up() {
    let w = GridWorld::new();
    for _ in 0..5 {
        let mut conn = w.myproxy.connect_local();
        // A well-formed ClientHello frame...
        let mut hello = vec![1u8]; // MSG_CLIENT_HELLO
        hello.extend_from_slice(&(32u32).to_be_bytes());
        hello.extend_from_slice(&[7u8; 32]);
        write_frame(&mut conn, &hello).unwrap();
        // ...then hang up.
        drop(conn);
    }
    // Poll: all five handlers record channel failures.
    let mut failures = 0;
    for _ in 0..100 {
        failures = w
            .myproxy
            .stats()
            .channel_failures.get();
        if failures >= 5 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(failures >= 5);
}

/// A forged certificate chain where the proxy's subject CN claims a
/// different user must not validate — the delegation-era identity
/// confusion attack.
#[test]
fn cn_spoofing_in_proxy_chain_rejected() {
    let w = GridWorld::new();
    // Mallory (bob) signs a "proxy" whose subject claims to extend
    // alice's DN.
    let fake_proxy_key = test_rsa_key(20);
    let spoofed_subject = Dn::parse("/O=Grid/CN=alice/CN=proxy").unwrap();
    let forged = CertBuilder::new(spoofed_subject, 0, w.clock.now() + 1000)
        .proxy(ProxyPolicy::InheritAll, None)
        .sign(w.bob.subject(), w.bob.key(), fake_proxy_key.public_key())
        .unwrap();
    let chain = [forged, w.bob.leaf().clone()];
    let err = myproxy::x509::validate_chain(
        &chain,
        &[w.ca_cert.clone()],
        w.clock.now(),
        &Default::default(),
    )
    .unwrap_err();
    // The proxy-subject rule catches it: bob's subject + CN != the
    // claimed subject.
    assert!(matches!(err, myproxy::x509::ChainError::ProxySubjectMismatch { .. }));
}

/// A chain that smuggles a CA certificate *below* the end entity (to
/// try to mint siblings) is rejected.
#[test]
fn ee_cannot_tow_a_ca_below_itself() {
    let w = GridWorld::new();
    // bob self-signs a CA cert and presents [bob_ca, bob] — bob (EE,
    // not a CA) may not issue anything.
    let bob_ca_key = test_rsa_key(21);
    let bob_ca = CertBuilder::new(Dn::parse("/O=Grid/CN=bobca").unwrap(), 0, w.clock.now() + 1000)
        .ca(None)
        .sign(w.bob.subject(), w.bob.key(), bob_ca_key.public_key())
        .unwrap();
    let chain = [bob_ca, w.bob.leaf().clone()];
    let err = myproxy::x509::validate_chain(
        &chain,
        &[w.ca_cert.clone()],
        w.clock.now(),
        &Default::default(),
    )
    .unwrap_err();
    assert!(matches!(err, myproxy::x509::ChainError::NotCa { .. }));
}

/// Certificate parser must survive arbitrary mutations of a valid DER
/// certificate without panicking, and any mutation that still parses
/// must fail signature verification (or be byte-identical).
#[test]
fn certificate_mutation_fuzz() {
    let w = GridWorld::new();
    let der = w.alice.leaf().to_der().to_vec();
    let issuer_key = test_rsa_key(0).public_key(); // CA key signs alice

    let mut checked = 0;
    for pos in (0..der.len()).step_by(7) {
        for bit in [0x01u8, 0x80] {
            let mut mutated = der.clone();
            mutated[pos] ^= bit;
            match Certificate::from_der(&mutated) {
                Err(_) => {}
                Ok(cert) => {
                    // Parsed — must not verify (mutation touched TBS) or
                    // must have only touched the signature (fails too),
                    // unless the mutation somehow round-trips DER-equal.
                    if mutated == der {
                        continue;
                    }
                    assert!(
                        !cert.verify_signature(issuer_key),
                        "mutation at byte {pos} bit {bit:#x} still verifies"
                    );
                    checked += 1;
                }
            }
        }
    }
    // At least some mutations should have reached the "parsed but
    // rejected by signature" branch (e.g. flips inside validity).
    assert!(checked > 0, "fuzz never exercised the parsed-but-invalid branch");
}

/// The record layer must reject a frame claiming an enormous length
/// without allocating, and half frames must error at EOF.
#[test]
fn record_layer_hostile_lengths() {
    let (mut a, mut b) = myproxy::gsi::duplex();
    a.write_all(&u32::MAX.to_be_bytes()).unwrap();
    assert!(read_frame(&mut b).is_err());

    let (mut a, mut b) = myproxy::gsi::duplex();
    a.write_all(&10u32.to_be_bytes()).unwrap();
    a.write_all(b"only4").unwrap();
    drop(a);
    assert!(read_frame(&mut b).is_err());
}

/// Truncated and oversized wire-format messages must come back as
/// typed protocol errors from every reader entry point — never a
/// panic. This drives the exact paths the R1/R4 lint rules guard:
/// `WireReader::{u32,u64,bytes,byte_list}` bounds and the frame cap.
#[test]
fn truncated_and_oversized_wire_messages_error_not_panic() {
    use myproxy::gsi::wire::{WireReader, WireWriter, MAX_FIELD};

    // Every strict prefix of a well-formed message is a clean error.
    let mut w = WireWriter::new();
    w.u8(7).u32(0xdead_beef).u64(42).bytes(b"payload").string("text");
    let full = w.into_bytes();
    for cut in 0..full.len() {
        let truncated = &full[..cut];
        let mut r = WireReader::new(truncated);
        let outcome = r
            .u8()
            .and_then(|_| r.u32())
            .and_then(|_| r.u64())
            .and_then(|_| r.bytes().map(|_| ()))
            .and_then(|_| r.string().map(|_| ()));
        assert!(outcome.is_err(), "prefix of {cut} bytes must not parse");
    }

    // A length prefix larger than the remaining buffer.
    let mut lying = Vec::new();
    lying.extend_from_slice(&1000u32.to_be_bytes());
    lying.extend_from_slice(b"short");
    assert!(WireReader::new(&lying).bytes().is_err());

    // A length prefix past the per-field cap.
    let mut huge = Vec::new();
    huge.extend_from_slice(&((MAX_FIELD as u32) + 1).to_be_bytes());
    assert!(WireReader::new(&huge).bytes().is_err());

    // A list claiming more entries than the reader's cap.
    let mut flood = Vec::new();
    flood.extend_from_slice(&u32::MAX.to_be_bytes());
    assert!(WireReader::new(&flood).byte_list().is_err());

    // Trailing garbage is caught by finish().
    let mut w = WireWriter::new();
    w.u8(1);
    let mut msg = w.into_bytes();
    msg.push(0xEE);
    let mut r = WireReader::new(&msg);
    r.u8().unwrap();
    assert!(r.finish().is_err());
}

/// The same hostile shapes pushed through a full server round-trip:
/// a handshake frame whose inner wire message is truncated mid-field
/// draws a protocol error, and the server stays up for the next client.
#[test]
fn truncated_handshake_message_rejected_server_survives() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    // Frame a ClientHello whose random is cut short mid-bytes.
    let mut hello = Vec::new();
    hello.push(1u8); // MSG_CLIENT_HELLO
    hello.extend_from_slice(&32u32.to_be_bytes()); // claims 32 bytes...
    hello.extend_from_slice(&[0xAB; 7]); // ...delivers 7
    let mut conn = w.myproxy.connect_local();
    let mut framed = Vec::new();
    framed.extend_from_slice(&(hello.len() as u32).to_be_bytes());
    framed.extend_from_slice(&hello);
    let _ = conn.write_all(&framed);
    let mut buf = Vec::new();
    let _ = std::io::Read::read_to_end(&mut conn, &mut buf);
    drop(conn);

    // The server did not crash: a well-behaved client still succeeds.
    let mut rng = test_drbg("after truncation");
    let got = w.myproxy_client.get_delegation(
        w.myproxy.connect_local(),
        &w.portal_cred,
        &GetParams::new("alice", "correct horse battery"),
        &mut rng,
        w.clock.now(),
    );
    assert!(got.is_ok(), "server must survive a truncated handshake: {got:?}");
}

/// Oversized usernames / pass phrases / field floods must be refused
/// (or served) without memory blowups — the request is a single capped
/// record.
#[test]
fn oversized_fields_handled() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("oversize");
    let huge = "x".repeat(100_000);
    let err = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new(&huge, &huge),
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, myproxy::myproxy::MyProxyError::Refused(_)));
}

/// Expired *server* credential: clients must refuse the repository
/// itself once its certificate lapses (mutual auth cuts both ways).
#[test]
fn clients_reject_expired_server() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    // Jump past the server certificate's one-year validity.
    w.clock.advance(2 * 365 * 24 * 3600);
    let mut rng = test_drbg("expired server");
    let err = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, myproxy::myproxy::MyProxyError::Gsi(_)));
}

/// Credential forwarding confusion: a *different* client presenting a
/// stolen (public) certificate chain without the key cannot complete
/// the handshake. We simulate by building a Credential with bob's key
/// and alice's chain — construction itself refuses, and a hand-rolled
/// bypass dies at the transcript signature.
#[test]
fn stolen_chain_without_key_useless() {
    let w = GridWorld::new();
    assert!(Credential::new(w.alice.chain().to_vec(), w.bob.key().clone()).is_err());
}
