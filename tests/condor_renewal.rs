//! Experiment C — §6.6 Condor-G support: a job that outlives its proxy,
//! failed without renewal and saved by the renewal agent.

use myproxy::gram::JobState;
use myproxy::myproxy::client::{GetParams, InitParams};
use myproxy::myproxy::renewal::RenewalAgent;
use myproxy::testkit::GridWorld;
use myproxy::x509::test_util::test_drbg;
use myproxy::x509::Clock;

/// Submit a job as alice through the job manager, with a `lifetime`-
/// second delegated proxy; job runs `ticks` ticks with `tick_secs`
/// seconds between ticks.
fn run_job(w: &GridWorld, lifetime: u64, ticks: u64, tick_secs: u64, renew: bool) -> JobState {
    let mut rng = test_drbg("condor job");
    // The portal (or Condor-G) fetched a short-lived proxy for alice.
    let mut get = GetParams::new("alice", "correct horse battery");
    get.lifetime_secs = lifetime;
    let user_proxy = w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &get, &mut rng, w.clock.now())
        .unwrap();

    let cfg = myproxy::gsi::ChannelConfig::new(vec![w.ca_cert.clone()]);
    let id = myproxy::gram::job::client::submit(
        w.jobmanager.connect_local(b"condor submit"),
        &user_proxy,
        &cfg,
        "longrun",
        ticks,
        true, // stores output at the end — needs a live credential then
        true,
        lifetime,
        &mut rng,
        w.clock.now(),
    )
    .unwrap();

    let agent = RenewalAgent::new(tick_secs + 10);
    for _ in 0..ticks {
        w.clock.advance(tick_secs);
        if renew {
            for (job_id, old_proxy) in w.jobmanager.jobs_needing_renewal(agent.threshold_secs) {
                let fresh = agent
                    .maybe_renew(
                        &w.myproxy_client,
                        w.myproxy.connect_local(),
                        &w.bob, // stand-in: see renewers note below
                        &old_proxy,
                        "alice",
                        None,
                        &mut rng,
                        w.clock.now(),
                    )
                    .expect("renewal protocol failed")
                    .expect("agent decided renewal was needed");
                w.jobmanager.replace_proxy(job_id, fresh).unwrap();
            }
        }
        w.jobmanager.tick(&mut rng);
    }
    w.jobmanager.job(id).unwrap().state
}

fn init_renewable(w: &GridWorld, renewer: &str) {
    let mut rng = test_drbg("condor init");
    let mut params = InitParams::new("alice", "correct horse battery");
    params.renewer = Some(renewer.to_string());
    w.myproxy_client
        .init(w.myproxy.connect_local(), &w.alice, &params, &mut rng, w.clock.now())
        .unwrap();
}

#[test]
fn job_outliving_proxy_fails_without_renewal() {
    let w = GridWorld::new();
    init_renewable(&w, "/O=Grid/CN=bob");
    // 5 ticks × 300s = 1500s of work; proxy lives 800s.
    let state = run_job(&w, 800, 5, 300, false);
    assert!(
        matches!(&state, JobState::Failed(why) if why.contains("expired")),
        "without renewal the job must fail on output store: {state:?}"
    );
}

#[test]
fn renewal_agent_keeps_job_alive() {
    let w = GridWorld::new();
    // bob's identity plays the Condor-G renewal service here.
    init_renewable(&w, "/O=Grid/CN=bob");
    let state = run_job(&w, 800, 5, 300, true);
    assert_eq!(state, JobState::Completed, "renewed proxies carry the job to completion");
    assert!(w.storage.peek("alice", "longrun.out").is_some());
}

#[test]
fn renewal_respects_renewer_acl() {
    let w = GridWorld::new();
    // Renewable only by some *other* service — bob's renewals must fail,
    // and therefore the job must die.
    init_renewable(&w, "/O=Grid/CN=someone-else");
    let mut rng = test_drbg("acl renew");
    let mut get = GetParams::new("alice", "correct horse battery");
    get.lifetime_secs = 500;
    let user_proxy = w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &get, &mut rng, w.clock.now())
        .unwrap();
    let err = w
        .myproxy_client
        .renew(
            w.myproxy.connect_local(),
            &w.bob,
            &user_proxy,
            "alice",
            None,
            512,
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, myproxy::myproxy::MyProxyError::Refused(_)));
}

#[test]
fn renewed_chain_still_validates_as_alice() {
    let w = GridWorld::new();
    init_renewable(&w, "/O=Grid/CN=bob");
    let mut rng = test_drbg("renew identity");
    let mut get = GetParams::new("alice", "correct horse battery");
    get.lifetime_secs = 500;
    let old = w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &get, &mut rng, w.clock.now())
        .unwrap();
    let fresh = w
        .myproxy_client
        .renew(w.myproxy.connect_local(), &w.bob, &old, "alice", None, 512, &mut rng, w.clock.now())
        .unwrap();
    let v = myproxy::x509::validate_chain(
        fresh.chain(),
        &[w.ca_cert.clone()],
        w.clock.now(),
        &Default::default(),
    )
    .unwrap();
    assert_eq!(v.identity.to_string(), "/O=Grid/CN=alice");
    assert!(fresh.remaining_lifetime(w.clock.now()) > old.remaining_lifetime(w.clock.now()));
}
