//! Experiments S5.* — the security claims of paper §5, machine-checked.

use myproxy::crypto::HmacDrbg;
use myproxy::gsi::transport::Tap;
use myproxy::gsi::{Credential, SecureChannel};
use myproxy::myproxy::client::{GetParams, InitParams};
use myproxy::myproxy::{MyProxyError, ServerPolicy};
use myproxy::portal::browser::{expect_ok, Browser, BrowserMode};
use myproxy::testkit::{dn, GridWorld};
use myproxy::x509::test_util::{test_drbg, test_rsa_key};
use myproxy::x509::{CertificateAuthority, Clock, Dn};
use std::sync::Arc;

/// S5.1a — "the repository encrypts the credentials that it holds with
/// the pass phrase provided by the user. … even if the repository host
/// is compromised, an intruder would still need to decrypt the keys
/// individually."
#[test]
fn store_encrypted_at_rest() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    // The intruder dumps the repository host's storage.
    let dump = w.myproxy.store().raw_dump();
    assert_eq!(dump.len(), 1);
    let blob = &dump[0];

    // No key material, PEM armor, or DN strings in the clear.
    for needle in [
        b"BEGIN RSA PRIVATE KEY".as_slice(),
        b"BEGIN CERTIFICATE".as_slice(),
        dn::ALICE.as_bytes(),
    ] {
        assert!(
            !blob.windows(needle.len()).any(|win| win == needle),
            "plaintext {:?} found in at-rest blob",
            String::from_utf8_lossy(needle)
        );
    }

    // And the blob only opens with the right pass phrase.
    assert!(w.myproxy.store().open("alice", "default", "wrong").is_err());
    assert!(w.myproxy.store().open("alice", "default", "correct horse battery").is_ok());
}

/// S5.1b — the two ACLs: even with the correct pass phrase, a client
/// not on the retrievers list gets nothing (tested in depth in the core
/// crate; here the deny + allow pair at world level).
#[test]
fn acl_blocks_clients_not_on_list() {
    let mut policy = ServerPolicy::permissive();
    policy.authorized_retrievers =
        myproxy::gsi::AccessControlList::from_patterns([dn::PORTAL]);
    let w = GridWorld::with_policy(policy);
    w.alice_init("correct horse battery").unwrap();

    // The portal (on the list) retrieves fine.
    let mut rng = test_drbg("acl ok");
    assert!(w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .is_ok());

    // Bob has the stolen pass phrase but is not an authorized retriever.
    let err = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.bob,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, MyProxyError::Refused(_)));
}

/// S5.1c — "MyProxy clients also require mutual authentication of the
/// repository … This prevents an attacker from impersonating the
/// repository in order to steal credentials or authentication
/// information."
#[test]
fn client_rejects_fake_repository() {
    let w = GridWorld::new();

    // An attacker stands up a fake repository with a cert from a CA the
    // client does not trust.
    let evil_ca = CertificateAuthority::new_root(
        Dn::parse("/O=Evil/CN=CA").unwrap(),
        test_rsa_key(10).clone(),
        0,
        u32::MAX as u64,
    )
    .unwrap();
    let mut evil_ca = evil_ca;
    let evil_key = test_rsa_key(11);
    let evil_cert = evil_ca
        .issue_end_entity(
            &Dn::parse(dn::MYPROXY).unwrap(), // claims the real DN!
            evil_key.public_key(),
            0,
            u32::MAX as u64,
        )
        .unwrap();
    let evil_cred = Credential::new(vec![evil_cert], evil_key.clone()).unwrap();

    let (ct, st) = myproxy::gsi::duplex();
    let cfg_server = myproxy::gsi::ChannelConfig::new(vec![evil_ca.certificate().clone()]);
    std::thread::spawn(move || {
        let mut rng = test_drbg("evil server");
        let _ = SecureChannel::accept(st, &evil_cred, &cfg_server, &mut rng, 0);
    });
    let mut rng = test_drbg("honest client");
    let err = w
        .myproxy_client
        .init(
            ct,
            &w.alice,
            &InitParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, MyProxyError::Gsi(_)), "handshake must fail: untrusted issuer");
}

/// S5.1d — a captured (username, pass phrase) pair can be replayed via
/// an authorized client in the base scheme; with OTP the same capture
/// is single-use. (Replay *within* a channel is separately blocked by
/// record sequence numbers — see `mp_gsi::record` tests.)
#[test]
fn otp_blocks_credential_replay() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("otp replay");

    // Base scheme: the capture works as often as the attacker likes
    // (this is exactly the §5.1 worry).
    for _ in 0..2 {
        w.myproxy_client
            .get_delegation(
                w.myproxy.connect_local(),
                &w.portal_cred,
                &GetParams::new("alice", "correct horse battery"),
                &mut rng,
                w.clock.now(),
            )
            .expect("pass-phrase scheme is replayable");
    }

    // Alice registers an OTP chain.
    let gen = myproxy::myproxy::otp::OtpGenerator::new(b"alice secret", b"seed-1", 3);
    w.myproxy_client
        .otp_setup(
            w.myproxy.connect_local(),
            &w.alice,
            "alice",
            "correct horse battery",
            &gen.anchor_hex(),
            gen.chain_len,
            &mut rng,
            w.clock.now(),
        )
        .unwrap();

    // Captured pass phrase alone no longer works.
    let err = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, MyProxyError::Refused(_)));

    // One login with OTP; replaying the same OTP fails.
    let mut params = GetParams::new("alice", "correct horse battery");
    params.otp = Some(gen.password_hex(1));
    w.myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &params, &mut rng, w.clock.now())
        .unwrap();
    let mut replay = GetParams::new("alice", "correct horse battery");
    replay.otp = Some(gen.password_hex(1));
    assert!(w
        .myproxy_client
        .get_delegation(w.myproxy.connect_local(), &w.portal_cred, &replay, &mut rng, w.clock.now())
        .is_err());
}

/// S5.1e — "all data passing to and from the server is encrypted":
/// a wire tap on a full myproxy-init + get-delegation sees neither the
/// pass phrase nor any private key bits.
#[test]
fn wire_never_carries_passphrase_or_keys() {
    let w = GridWorld::new();
    let mut rng = test_drbg("wiretap");

    // Tap the init connection.
    let (inner, log_init) = Tap::new(w.myproxy.connect_local());
    w.myproxy_client
        .init(
            inner,
            &w.alice,
            &InitParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();

    // Tap the retrieval connection.
    let (inner, log_get) = Tap::new(w.myproxy.connect_local());
    let proxy = w
        .myproxy_client
        .get_delegation(
            inner,
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();

    for log in [log_init, log_get] {
        let log = log.lock();
        assert!(!log.contains(b"correct horse battery"), "pass phrase on the wire");
        assert!(!log.contains(b"PASSPHRASE"), "protocol fields visible");
        assert!(!log.contains(&w.alice.key().d().to_be_bytes()), "user private key bits");
        assert!(!log.contains(&proxy.key().d().to_be_bytes()), "delegated key bits");
    }
}

/// S5.2 — "transmitting the name and pass phrase over unencrypted HTTP
/// would allow any intruder to snoop the pass phrase": demonstrated
/// with the plain transport, and prevented by both the HTTPS-sim
/// transport and the portal's HTTPS-only login policy.
#[test]
fn http_snoop_versus_https() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    // (a) Plain HTTP with the tap: the pass phrase is right there.
    // (We build a raw login request; the portal will refuse it, but by
    // then the secret has already crossed the wire — which is the
    // point.)
    let portal_plain = w.portal_plain_connector();
    let transport = portal_plain().unwrap();
    let (mut tapped, log) = Tap::new(transport);
    let req = myproxy::portal::http::HttpRequest::post_form(
        "/login",
        &[("username", "alice"), ("passphrase", "correct horse battery")],
    );
    std::io::Write::write_all(&mut tapped, &req.to_bytes()).unwrap();
    let mut buf = Vec::new();
    std::io::Read::read_to_end(&mut tapped, &mut buf).unwrap();
    let resp = myproxy::portal::http::HttpResponse::from_bytes(&buf).unwrap();
    // Form bodies are urlencoded, so the snooper sees '+' for spaces.
    assert!(
        log.lock().contains(b"correct+horse+battery"),
        "plain HTTP leaks the secret"
    );
    assert_eq!(resp.status, 403, "and the portal refuses the login anyway");
    assert_eq!(w.portal.sessions().len(), 0);

    // (b) HTTPS-sim with the tap: login succeeds, secret invisible.
    let portal_tls = w.portal_tls_connector();
    let clock_now = w.clock.now();
    let roots = vec![w.ca_cert.clone()];
    let log_handle = {
        let (transport, log) = Tap::new(portal_tls().unwrap());
        let connector: myproxy::gsi::transport::Connector = {
            let cell = std::sync::Mutex::new(Some(transport));
            Arc::new(move || {
                cell.lock()
                    .unwrap()
                    .take()
                    .map(|t| Box::new(t) as myproxy::gsi::transport::BoxedTransport)
                    .ok_or_else(|| std::io::Error::other("one-shot connector exhausted"))
            })
        };
        let mut browser = Browser::new(
            connector,
            BrowserMode::Tls { roots, expected: None },
            HmacDrbg::new(b"snoop browser"),
            clock_now,
        );
        expect_ok(browser.login("alice", "correct horse battery").unwrap()).unwrap();
        log
    };
    let tls_log = log_handle.lock();
    assert!(!tls_log.contains(b"correct+horse+battery"), "HTTPS hides the secret");
    assert!(!tls_log.contains(b"correct horse battery"));
    drop(tls_log);
    assert_eq!(w.portal.sessions().len(), 1);
}

/// S5.1f — compromise of an authorized portal alone is not enough: the
/// attacker must still wait for users to type pass phrases ("the
/// required delay allows credentials to expire or for the intrusion to
/// be detected").
#[test]
fn compromised_portal_cannot_mint_arbitrary_users() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();
    let mut rng = test_drbg("compromised portal");

    // The attacker fully controls the portal credential — but has no
    // pass phrases. Guessing fails, uniformly.
    for guess in ["password", "alice", "letmein123"] {
        let err = w
            .myproxy_client
            .get_delegation(
                w.myproxy.connect_local(),
                &w.portal_cred,
                &GetParams::new("alice", guess),
                &mut rng,
                w.clock.now(),
            )
            .unwrap_err();
        assert!(matches!(err, MyProxyError::Refused(_)));
    }

    // And once alice's stored credential expires, even the right pass
    // phrase is useless — the delay defense.
    w.clock.advance(8 * 24 * 3600);
    let err = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, MyProxyError::Refused(_) | MyProxyError::Gsi(_)));
}

/// The §2.3 trade-off, verified from the other side: the proxy file
/// format is unencrypted (filesystem-protected), while the repository
/// copy is pass-phrase-sealed.
#[test]
fn proxy_file_unencrypted_repository_sealed() {
    let w = GridWorld::new();
    let mut rng = test_drbg("pem check");
    let proxy = myproxy::gsi::grid_proxy_init(
        &w.alice,
        &myproxy::gsi::ProxyOptions::default(),
        &mut rng,
        w.clock.now(),
    )
    .unwrap();
    let pem = proxy.to_pem();
    assert!(pem.contains("BEGIN RSA PRIVATE KEY"), "local proxy file is plaintext PEM");

    w.alice_init("correct horse battery").unwrap();
    let blob = &w.myproxy.store().raw_dump()[0];
    assert!(!blob.windows(21).any(|win| win == b"BEGIN RSA PRIVATE KEY"));
}

/// Channel-level replay: a recorded request cannot be replayed against
/// the server because every channel run derives fresh keys from fresh
/// randoms (and in-channel records carry sequence numbers).
#[test]
fn recorded_session_cannot_be_replayed() {
    let w = GridWorld::new();
    w.alice_init("correct horse battery").unwrap();

    // Record a full successful retrieval.
    let mut rng = test_drbg("recorder");
    let (tapped, log) = Tap::new(w.myproxy.connect_local());
    w.myproxy_client
        .get_delegation(
            tapped,
            &w.portal_cred,
            &GetParams::new("alice", "correct horse battery"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap();
    let recording = log.lock().sent.clone();

    // Replay the recorded client bytes verbatim at a fresh connection.
    let mut replay_conn = w.myproxy.connect_local();
    std::io::Write::write_all(&mut replay_conn, &recording).unwrap();
    let mut response = Vec::new();
    let _ = std::io::Read::read_to_end(&mut replay_conn, &mut response);
    // Both counters are bumped by the handler thread just before it
    // drops the transport, which can land after the client returns —
    // poll briefly rather than racing it.
    let mut counted = false;
    for _ in 0..100 {
        counted = w.myproxy.stats().channel_failures.get() >= 1
            && w.myproxy.stats().gets.get() >= 1;
        if counted {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(counted, "replayed handshake recorded as failure");
    // The server's fresh random makes the recorded KeyExchange signature
    // and Finished MAC invalid: no delegation response can appear.
    assert_eq!(w.myproxy.stats().gets.get(), 1, "replay must not produce a second delegation");
}

/// Sanity for the whole threat model: a user who never ran myproxy-init
/// is simply absent — the repository cannot be used to conjure
/// credentials it was never given.
#[test]
fn repository_cannot_mint_credentials_it_never_held() {
    let w = GridWorld::new();
    let mut rng = test_drbg("absent user");
    let err = w
        .myproxy_client
        .get_delegation(
            w.myproxy.connect_local(),
            &w.portal_cred,
            &GetParams::new("charlie", "whatever-pass"),
            &mut rng,
            w.clock.now(),
        )
        .unwrap_err();
    assert!(matches!(err, MyProxyError::Refused(_)));
}
