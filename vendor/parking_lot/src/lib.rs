//! Offline stand-in for the `parking_lot` crate.
//!
//! The real crate is unavailable in this build environment (no network
//! registry), so this vendored shim exposes the subset of the API the
//! workspace uses — `Mutex`, `RwLock`, `Condvar` — with parking_lot's
//! no-poisoning semantics, implemented on top of `std::sync`. A poisoned
//! std lock (a panic while held) is recovered via `into_inner`, which is
//! exactly what parking_lot's poison-free locks would observe.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// parking_lot-style wait: takes `&mut MutexGuard` instead of consuming it.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// parking_lot-style timed wait. Returns a [`WaitTimeoutResult`]
    /// telling the caller whether the wait hit the timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notify() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
        // Guard is usable again after the timed wait.
        drop(g);
        let _ = m.lock();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
