//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 call shape
//! (`scope(|s| { s.spawn(|_| ...); })` returning `thread::Result<T>`),
//! implemented over `std::thread::scope`, which has been stable since
//! Rust 1.63 and offers the same structured-concurrency guarantee.

pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`, wrapping a std scope.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Stand-in for the `&Scope` argument crossbeam passes back into spawned
    /// closures. Call sites in this workspace all ignore it (`|_| ...`);
    /// nested spawning through it is not supported by this shim.
    pub struct NestedScope;

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.0.spawn(move || f(NestedScope)),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope handle; all threads spawned through the scope are
    /// joined before `scope` returns. Panics in spawned threads propagate out
    /// of `std::thread::scope` directly — a strictly more eager failure mode
    /// than crossbeam's captured error, and what call sites here (which
    /// `.unwrap()` the result) want anyway.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
