//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench *authoring* API this workspace uses (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `iter`, `iter_batched`, `Throughput`, `BatchSize`, `black_box`) so the
//! bench suite compiles and runs offline. Measurement is deliberately
//! simple: each benchmark runs a short warm-up then a fixed wall-clock
//! budget, and the mean per-iteration time is printed. No statistics,
//! no HTML reports, no comparison to baselines.
//!
//! `cargo test` also executes bench binaries (the targets set
//! `harness = false`); in that mode (`--test` flag passed by cargo) every
//! benchmark body runs exactly once, as a smoke test, matching real
//! criterion's behavior.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// True unless cargo invoked this bench binary for real measurement:
/// `cargo bench` passes `--bench`; `cargo test --benches` does not, and in
/// that case (like real criterion) each body runs once as a smoke test.
fn test_mode() -> bool {
    !std::env::args().any(|a| a == "--bench")
}

pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: test_mode(),
            sample_size: 100,
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group<S: std::fmt::Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            test_mode,
        }
    }

    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        run_one("", &name.to_string(), self.test_mode, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    test_mode: bool,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &name.to_string(), self.test_mode, &mut f);
        self
    }

    pub fn bench_with_input<S: std::fmt::Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        name: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut adapted = |b: &mut Bencher| f(b, input);
        run_one(&self.name, &name.to_string(), self.test_mode, &mut adapted);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, test_mode: bool, f: &mut F) {
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let mut b = Bencher {
        test_mode,
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok (smoke)");
    } else if b.iters_done > 0 {
        let per_iter = b.elapsed / (b.iters_done as u32).max(1);
        println!("{label:<50} {per_iter:>12.2?}/iter ({} iters)", b.iters_done);
    } else {
        println!("{label:<50} (no measurement)");
    }
}

pub struct Bencher {
    test_mode: bool,
    iters_done: u64,
    elapsed: Duration,
}

/// Wall-clock budget per benchmark in measurement mode; short by design —
/// this shim exists to keep benches runnable, not to publish numbers.
const BUDGET: Duration = Duration::from_millis(300);
const WARMUP_ITERS: u64 = 2;

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters_done = 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < BUDGET {
            black_box(routine());
            iters += 1;
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, T, S: FnMut() -> I, F: FnMut(I) -> T>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            self.iters_done = 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let loop_start = Instant::now();
        while loop_start.elapsed() < BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.iters_done = iters;
        self.elapsed = measured;
    }

    pub fn iter_batched_ref<I, T, S: FnMut() -> I, F: FnMut(&mut I) -> T>(
        &mut self,
        setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut adapted_setup = setup;
        if self.test_mode {
            let mut input = adapted_setup();
            black_box(routine(&mut input));
            self.iters_done = 1;
            return;
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let loop_start = Instant::now();
        while loop_start.elapsed() < BUDGET {
            let mut input = adapted_setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            measured += t.elapsed();
            iters += 1;
        }
        self.iters_done = iters;
        self.elapsed = measured;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
        };
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5).throughput(Throughput::Bytes(1));
            group.bench_function("f", |b| b.iter(|| ran += 1));
            group.bench_function("batched", |b| {
                b.iter_batched(|| 1u32, |x| black_box(x + 1), BatchSize::PerIteration)
            });
            group.finish();
        }
        assert!(ran >= 1);
    }
}
