//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses, on std plus
//! the vendored `rand` shim:
//!
//! * the [`proptest!`] macro wrapping `fn name(arg in strategy, ..) { body }`
//!   items into deterministic randomized `#[test]`s (seeded per test name,
//!   case count overridable via `PROPTEST_CASES`);
//! * [`strategy::Strategy`] with `prop_map`, plus strategies for `any::<T>()`,
//!   integer ranges, `&str` regex patterns (a generation-oriented subset:
//!   char classes with ranges/escapes/`&&[^..]` subtraction, `(a|b)` literal
//!   alternation, `{m,n}`/`{n}`/`*`/`+`/`?` quantifiers), tuples, and
//!   [`collection::vec`] / [`collection::btree_map`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! assertion message and the seed-derived case index only.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject,
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Drive one property: generate-and-check until `cases` accepted runs,
    /// tolerating `prop_assume` rejections up to a global attempt budget.
    pub fn run<F>(name: &str, mut property: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let cases = case_count();
        let mut rng = StdRng::seed_from_u64(fnv1a(name));
        let mut accepted = 0usize;
        let mut attempts = 0usize;
        let max_attempts = cases.saturating_mul(20).max(100);
        while accepted < cases {
            if attempts >= max_attempts {
                panic!(
                    "proptest '{name}': too many prop_assume rejections \
                     ({accepted}/{cases} cases accepted after {attempts} attempts)"
                );
            }
            attempts += 1;
            match property(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed on case {accepted} (attempt {attempts}): {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy yielding one fixed value, like `proptest::strategy::Just`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Values with a canonical "any" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    // Bias toward edge values a little, as real proptest does.
                    match rng.gen_range(0..16) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => 1 as $t,
                        _ => rng.gen::<$t>(),
                    }
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Mostly ASCII, some multi-byte scalars, never surrogates.
            match rng.gen_range(0..8) {
                0 => char::from_u32(rng.gen_range(0x80..0xD800) as u32).unwrap_or('\u{FFFD}'),
                1 => '\u{1F600}',
                2 => '\0',
                _ => (rng.gen_range(0x20..0x7F) as u8) as char,
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let len = rng.gen_range(0..48) as usize;
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let mut out = [0u8; N];
            rng.fill(&mut out);
            out
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.gen_range(self.start as u64..self.end as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    if hi == u64::MAX {
                        rng.gen::<u64>() as $t
                    } else {
                        rng.gen_range(lo..hi + 1) as $t
                    }
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            crate::pattern::generate(self, rng)
        }
    }
}

/// Generation-oriented interpreter for the regex subset proptest accepts as
/// string strategies. Supports literals, `[..]` char classes (ranges,
/// escapes, leading `^` negation over printable ASCII, `&&[^..]`
/// subtraction), `(lit|lit|..)` alternation over literal branches, and the
/// quantifiers `{n}`, `{m,n}`, `*`, `+`, `?` (unbounded forms capped at 8).
pub mod pattern {
    use rand::rngs::StdRng;
    use rand::Rng;

    enum Atom {
        Class(Vec<char>),
        Alt(Vec<String>),
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    /// Parse the interior of `[...]` starting after `[`; returns (chars, idx
    /// past `]`). Handles negation, ranges, escapes, and `&&[^...]`.
    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let negated = chars.get(i) == Some(&'^');
        if negated {
            i += 1;
        }
        let mut set: Vec<char> = Vec::new();
        let mut subtract: Vec<char> = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if chars[i] == '&' && chars.get(i + 1) == Some(&'&') && chars.get(i + 2) == Some(&'[') {
                let inner_neg = chars.get(i + 3) == Some(&'^');
                let (inner, ni) = parse_class(chars, i + 3 + usize::from(inner_neg));
                if inner_neg {
                    // [a&&[^b]] — intersect with complement: subtract b.
                    subtract.extend(inner);
                } else {
                    // [a&&[b]] — plain intersection.
                    set.retain(|c| inner.contains(c));
                }
                i = ni;
                continue;
            }
            let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            i += 1;
            if chars.get(i) == Some(&'-') && i + 1 < chars.len() && chars[i + 1] != ']' {
                let hi = if chars[i + 1] == '\\' && i + 2 < chars.len() {
                    i += 1;
                    unescape(chars[i + 1])
                } else {
                    chars[i + 1]
                };
                i += 2;
                let (lo, hi) = (lo as u32, hi as u32);
                for cp in lo..=hi {
                    if let Some(c) = char::from_u32(cp) {
                        set.push(c);
                    }
                }
            } else {
                set.push(lo);
            }
        }
        i += 1; // past ']'
        if negated {
            let complement: Vec<char> = (0x20u8..0x7F)
                .map(|b| b as char)
                .filter(|c| !set.contains(c))
                .collect();
            set = complement;
        }
        set.retain(|c| !subtract.contains(c));
        (set, i)
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let (set, ni) = parse_class(&chars, i + 1);
                    i = ni;
                    assert!(
                        !set.is_empty(),
                        "pattern shim: empty character class in {pattern:?}"
                    );
                    Atom::Class(set)
                }
                '(' => {
                    let mut alts = vec![String::new()];
                    i += 1;
                    while i < chars.len() && chars[i] != ')' {
                        match chars[i] {
                            '|' => alts.push(String::new()),
                            '\\' if i + 1 < chars.len() => {
                                i += 1;
                                let c = unescape(chars[i]);
                                alts.last_mut().expect("alts never empty").push(c);
                            }
                            c => alts.last_mut().expect("alts never empty").push(c),
                        }
                        i += 1;
                    }
                    i += 1; // past ')'
                    Atom::Alt(alts)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 1;
                    let c = unescape(chars[i]);
                    i += 1;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("pattern shim: unclosed {{ in {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((m, n)) = body.split_once(',') {
                        let m: usize = m.trim().parse().unwrap_or(0);
                        let n: usize = n.trim().parse().unwrap_or(m + 8);
                        (m, n)
                    } else {
                        let n: usize = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let reps = if piece.min == piece.max {
                piece.min
            } else {
                rng.gen_range(piece.min as u64..piece.max as u64 + 1) as usize
            };
            for _ in 0..reps {
                match &piece.atom {
                    Atom::Class(set) => {
                        out.push(set[rng.gen_range(0..set.len() as u64) as usize]);
                    }
                    Atom::Alt(alts) => {
                        out.push_str(&alts[rng.gen_range(0..alts.len() as u64) as usize]);
                    }
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.start as u64..self.size.end.max(self.size.start + 1) as u64)
                as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.start as u64..self.size.end.max(self.size.start + 1) as u64)
                as usize;
            // Duplicate keys collapse, as in real proptest's btree_map.
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} at {}:{}", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                            stringify!($left), stringify!($right), __l, __r, file!(), line!()
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                            stringify!($left), stringify!($right), __l, file!(), line!()
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_subset_generates_matching_strings() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::pattern::generate("[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = crate::pattern::generate("(CN|O|OU|C)", &mut rng);
            assert!(["CN", "O", "OU", "C"].contains(&s.as_str()));

            let s = crate::pattern::generate("[ -~&&[^\n]]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));

            let s = crate::pattern::generate("[a-zA-Z0-9 .@-]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " .@-".contains(c)));
        }
    }

    proptest! {
        #[test]
        fn macro_and_strategies_work(
            n in 3u64..10,
            bytes in crate::collection::vec(any::<u8>(), 0..5),
            (k, v) in ("[a-z]{1,4}", any::<u64>()),
            s in any::<String>(),
        ) {
            prop_assume!(n != 5);
            prop_assert!(n >= 3 && n < 10 && n != 5);
            prop_assert!(bytes.len() < 5);
            prop_assert!((1..=4).contains(&k.len()));
            prop_assert_eq!(v, v);
            prop_assert_ne!(n, 5);
            let _ = s.len();
        }
    }
}
