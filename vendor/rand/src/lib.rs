//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The workspace's cryptographic entropy comes from its own HMAC-DRBG
//! (`mp-crypto::drbg`), which only needs the `RngCore`/`CryptoRng` trait
//! shapes from `rand`; deterministic test RNGs need `SeedableRng` and
//! `StdRng`. This shim provides exactly that API surface on std alone:
//!
//! * [`RngCore`], [`CryptoRng`], [`Rng`] (blanket impl), [`SeedableRng`]
//! * [`rngs::StdRng`] — xoshiro256** seeded via SplitMix64, deterministic
//!   for a given seed (NOT the real StdRng's ChaCha12 stream, but all
//!   in-repo uses treat seeded output as arbitrary, not as a fixture)
//! * [`rngs::OsRng`] — reads `/dev/urandom`
//! * [`Error`] and `Fill` for `rng.fill(&mut bytes)`

use std::fmt;

/// Error type matching `rand::Error`'s role. The std shim's sources are
/// infallible except for `/dev/urandom` I/O failures.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand shim error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Marker trait: the generator is cryptographically strong.
pub trait CryptoRng {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// Types producible by `Rng::gen` under the standard distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Destination buffers accepted by `Rng::fill`.
pub trait Fill {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Result<(), Error>;
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Result<(), Error> {
        rng.try_fill_bytes(self)
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Result<(), Error> {
        rng.try_fill_bytes(self)
    }
}

impl Fill for [u64] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Result<(), Error> {
        for w in self.iter_mut() {
            *w = rng.next_u64();
        }
        Ok(())
    }
}

/// Convenience extension trait, blanket-implemented for every `RngCore`,
/// mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self).expect("Rng::fill failed")
    }

    /// Uniform value in `[low, high)` — rejection-sampled, matching
    /// `rand::Rng::gen_range(low..high)` for unsigned ranges.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + v % span;
            }
        }
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 stream expanded into the seed bytes, as real rand does.
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        let mut seed = Self::Seed::default();
        rngs::OsRng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{CryptoRng, Error, RngCore, SeedableRng};
    use std::io::Read;

    /// Deterministic generator: xoshiro256** (Blackman & Vigna). Passes
    /// BigCrush; NOT a drop-in for real StdRng's ChaCha12 output stream, but
    /// every in-repo use treats seeded output as arbitrary test data.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E3779B97F4A7C15, 0xD1B54A32D192ED03, 0x8BB84B93962EACC9, 1];
            }
            StdRng { s }
        }
    }

    impl CryptoRng for StdRng {}

    /// Operating-system entropy source backed by `/dev/urandom`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            let mut b = [0u8; 4];
            self.fill_bytes(&mut b);
            u32::from_le_bytes(b)
        }

        fn next_u64(&mut self) -> u64 {
            let mut b = [0u8; 8];
            self.fill_bytes(&mut b);
            u64::from_le_bytes(b)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.try_fill_bytes(dest)
                .expect("failed to read from /dev/urandom")
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            let mut f = std::fs::File::open("/dev/urandom").map_err(|_| Error {
                msg: "open /dev/urandom",
            })?;
            f.read_exact(dest).map_err(|_| Error {
                msg: "read /dev/urandom",
            })
        }
    }

    impl CryptoRng for OsRng {}
}

#[cfg(test)]
mod tests {
    use super::rngs::{OsRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_and_gen_cover_used_shapes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 48];
        rng.fill(&mut buf[..32]);
        rng.fill(&mut buf);
        let _: u8 = rng.gen();
        let _: u64 = rng.gen();
        let x = rng.gen::<usize>() % 700;
        assert!(x < 700);
        for _ in 0..64 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn os_rng_produces_bytes() {
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        OsRng.fill_bytes(&mut a);
        OsRng.fill_bytes(&mut b);
        assert_ne!(a, b, "32 bytes of urandom collided — astronomically unlikely");
    }
}
